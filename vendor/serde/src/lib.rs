//! Minimal API-compatible stub of [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no network access, so the
//! real `serde` crate cannot be fetched. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations on plain-old-data types —
//! no code serializes anything yet — so this stub provides just the two
//! marker traits and derive macros that implement them. Replacing this with
//! the real crate requires no source changes, only a `Cargo.toml` edit.

/// Marker trait mirroring `serde::Serialize`.
///
/// The stub derive produces an empty implementation; the trait carries no
/// methods so that it can be derived for any type without knowing how to
/// walk its fields.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
