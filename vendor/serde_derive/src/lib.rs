//! Derive macros for the vendored serde stub.
//!
//! The stub's `Serialize` / `Deserialize` traits are pure markers, and no
//! code in the workspace takes them as bounds yet, so the derives simply
//! parse the item name and emit a marker impl. Generic items are handled by
//! scanning the (already-validated) item header token stream for its name
//! and generic parameter identifiers — enough for the plain-old-data types
//! this workspace derives on, without pulling in `syn`/`quote`.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, generic_params)` from a struct/enum/union definition.
///
/// `generic_params` is the comma-joined list of parameter *names* (lifetimes
/// included), suitable for both the `impl<...>` binder and the `Type<...>`
/// argument position, with defaults and bounds stripped.
fn parse_item_header(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility / keywords until we hit the
    // item keyword, then take the following identifier as the name.
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name?;

    // If the next token is `<`, collect top-level generic parameter names.
    let mut params = Vec::new();
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        let mut pending_lifetime = false;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => expect_param = true,
                    '\'' if depth == 1 && expect_param => pending_lifetime = true,
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let ident = id.to_string();
                    if ident == "const" {
                        // `const N: usize` — the next ident is the name.
                        continue;
                    }
                    if pending_lifetime {
                        params.push(format!("'{ident}"));
                        pending_lifetime = false;
                    } else {
                        params.push(ident);
                    }
                    expect_param = false;
                }
                _ => {}
            }
        }
    }
    Some((name, params))
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let Some((name, params)) = parse_item_header(input) else {
        return TokenStream::new();
    };
    let mut binder: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        binder.push(lt.to_string());
    }
    binder.extend(params.iter().cloned());
    let binder = if binder.is_empty() {
        String::new()
    } else {
        format!("<{}>", binder.join(", "))
    };
    let args = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let trait_args = match extra_lifetime {
        Some(lt) => format!("<{lt}>"),
        None => String::new(),
    };
    format!("impl{binder} {trait_path}{trait_args} for {name}{args} {{}}")
        .parse()
        .unwrap_or_default()
}

/// Derive a marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", None)
}

/// Derive a marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize", Some("'de"))
}
