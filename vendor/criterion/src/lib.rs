//! Minimal API-compatible stub of [criterion](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub implements the subset of the criterion API the `bench`
//! crate uses — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock-timed runner: each benchmark body is warmed up once and then
//! timed over a fixed iteration count, reporting mean ns/iter on stdout.
//! Statistical analysis, plots, and CLI filtering are not implemented.
//! Swapping in the real crate requires no source changes in the benches.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; times the routine under `iter`.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Run and time `routine` for the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up pass keeps lazy-initialised state out of the timing.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: core::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count (the stub uses it directly as
    /// the number of timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id, b.mean_ns);
        self
    }

    /// Benchmark a closure with an explicit input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id, b.mean_ns);
        self
    }

    /// Finish the group (a no-op in the stub, kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            _criterion: core::marker::PhantomData,
        }
    }

    /// Benchmark a closure outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
