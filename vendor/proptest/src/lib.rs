//! Minimal API-compatible stub of [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stub implements the subset of the proptest API used by the
//! workspace's property suites: the `proptest!` macro, `Strategy` with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! `Just`, `prop_oneof!`, `any::<T>()`, `proptest::collection::{vec,
//! btree_set}`, `prop::sample::Index`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * Generation is driven by a deterministic splitmix64 PRNG seeded per test
//!   case, so failures are reproducible run-to-run but there is **no
//!   shrinking** — a failing case reports the panic from the assertion macros
//!   (which degrade to `assert!`/`assert_eq!`) at full size.
//! * No persistence of failing cases, forking, or timeout support.
//!
//! Swapping in the real crate requires no source changes in the test suites,
//! only a `Cargo.toml` edit.

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Configuration for a `proptest!` block.
    ///
    /// Only `cases` is honoured; it mirrors `ProptestConfig::with_cases`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the offline suites
            // fast while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[lo, hi)` using 128-bit arithmetic so that the
        /// full signed/unsigned 64-bit domain is representable.
        pub fn gen_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo < hi, "empty range passed to strategy");
            let width = (hi - lo) as u128;
            let sample = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % width;
            lo + sample as i128
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.gen_range_i128(lo as i128, hi as i128) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike the real crate there is no `ValueTree`/shrinking layer; a
    /// strategy simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Retry generation until `f` accepts the value (up to a bound).
        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: String,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// Uniform choice among boxed alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range_usize(0, self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_i128(self.start as i128, self.end as i128) as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // next_f64 is in [0, 1); scale by the closed width so the upper
            // endpoint is approachable. Exact inclusion of the endpoint is
            // irrelevant for the properties exercised here.
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for ::core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
        (A, B, C, D, E, F, G, H, I);
        (A, B, C, D, E, F, G, H, I, J);
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(core::marker::PhantomData)
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(core::marker::PhantomData)
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any(core::marker::PhantomData)
        }
    }

    impl Strategy for Any<crate::sample::Index> {
        type Value = crate::sample::Index;
        fn generate(&self, rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
    impl Arbitrary for crate::sample::Index {
        type Strategy = Any<crate::sample::Index>;
        fn arbitrary() -> Any<crate::sample::Index> {
            Any(core::marker::PhantomData)
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a concrete collection length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A size (range) for generated collections, half-open.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate ordered sets of values from `element` with size in `size`.
    ///
    /// If the element domain is too small to reach the drawn size, the set is
    /// returned at the largest size reached after a bounded number of draws
    /// (matching the real crate's behaviour of not looping forever).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range_usize(self.size.lo, self.size.hi);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to strategy modules (`prop::sample::Index`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert a boolean condition inside a property (degrades to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (degrades to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (degrades to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case if the assumption fails.
///
/// The property body is expanded directly inside the per-case `for` loop of
/// [`proptest!`], so `continue` moves on to the next generated case — the
/// real crate's discard semantics. Caveat: inside a loop written in the
/// property body itself, `continue` binds to that inner loop instead; hoist
/// the assumption out of inner loops.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests.
///
/// Mirrors the real macro's surface: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($param:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                // Per-case deterministic seed; fold in the test name so
                // different properties see different streams.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).as_bytes() {
                    __seed = (__seed ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $param = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static ASSUME_CASES_RUN: AtomicU64 = AtomicU64::new(0);

    // No `#[test]` attribute: expanded as a plain fn and driven by the
    // harness test below so the counter isn't raced by a parallel run.
    proptest! {
        fn assume_body(v in 0u64..10) {
            prop_assume!(v != 3);
            ASSUME_CASES_RUN.fetch_add(1, Ordering::Relaxed);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    fn prop_assume_discards_only_the_current_case() {
        ASSUME_CASES_RUN.store(0, Ordering::Relaxed);
        assume_body();
        let ran = ASSUME_CASES_RUN.load(Ordering::Relaxed);
        // 64 default cases over 0..10: roughly 1 in 10 is discarded. If
        // prop_assume! aborted the whole fn (the bug this guards against),
        // far fewer than half the cases would run.
        assert!(
            (32..=64).contains(&ran),
            "expected most of 64 cases to run, got {ran}"
        );
    }

    proptest! {
        #[test]
        fn ranges_and_collections_respect_bounds(
            v in 5u64..10,
            xs in crate::collection::vec(0u32..4, 2..6),
            s in crate::collection::btree_set(0u32..100, 3..8),
            f in -2.0f64..2.0,
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!((5..10).contains(&v));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
            prop_assert!(s.len() >= 3 && s.len() < 8);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pick.index(7) < 7);
        }

        #[test]
        fn combinators_compose(n in 1u64..5) {
            let doubled = (0u64..10).prop_map(move |x| x * n);
            let mut rng = crate::test_runner::TestRng::new(n);
            let v = doubled.generate(&mut rng);
            prop_assert_eq!(v % n, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..1000, 10..20);
        let a = strat.generate(&mut crate::test_runner::TestRng::new(42));
        let b = strat.generate(&mut crate::test_runner::TestRng::new(42));
        assert_eq!(a, b);
    }
}
