//! The predictable Clockwork worker (§4.4, §5.2 of the paper).
//!
//! A worker owns one or more GPUs, keeps every registered model's weights in
//! host memory, and executes exactly three kinds of actions on behalf of the
//! central controller:
//!
//! * `LOAD` — copy a model's weights from host memory into the paged device
//!   weights cache,
//! * `UNLOAD` — release the pages again (metadata only, always succeeds),
//! * `INFER` — copy inputs to the device, execute the kernel for a specific
//!   batch size, copy outputs back.
//!
//! Workers never make performance-relevant choices of their own: every action
//! carries an `[earliest, latest]` window set by the controller, actions that
//! cannot start inside their window are rejected rather than executed late,
//! and only one `EXEC` runs on a GPU at a time. Those three rules are what
//! makes the worker's timing predictable enough for the controller to plan
//! around.
//!
//! Module map:
//!
//! * [`action`] — the action/result vocabulary shared with the controller.
//! * [`page_cache`] — the 16 MiB-paged device weights cache.
//! * [`io_cache`] — the bounded input/output staging area.
//! * [`executor`] — per-action-type queues with window enforcement.
//! * [`worker`] — the worker state machine itself.
//! * [`telemetry`] — per-worker utilization and counter reporting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod executor;
pub mod io_cache;
pub mod page_cache;
pub mod telemetry;
pub mod worker;

pub use action::{
    Action, ActionError, ActionId, ActionKind, ActionOutcome, ActionResult, ActionTiming, GpuId,
    TimeWindow, WorkerId,
};
pub use page_cache::PageCache;
pub use worker::{ExecMode, Worker, WorkerConfig};
