//! The input/output staging cache (§5.2 "IOCache").
//!
//! Although Clockwork executes models one at a time, it copies inputs to the
//! GPU *before* execution and outputs back *after* execution asynchronously,
//! overlapping them with the current EXEC. The worker reserves a fixed
//! 512 MB region for that staging. The cache is deliberately dumb: fixed
//! capacity, byte accounting, explicit acquire/release, and a high-water mark
//! so tests can confirm the reservation is actually sufficient for the
//! workloads we replay.

use serde::{Deserialize, Serialize};

/// Default IO cache capacity: 512 MB (§5.2).
pub const DEFAULT_IO_CACHE_BYTES: u64 = 512 * 1024 * 1024;

/// Error returned when the staging area cannot hold another tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCacheFull {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes available.
    pub available: u64,
}

impl std::fmt::Display for IoCacheFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IO cache full: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for IoCacheFull {}

/// A bounded staging area for inference inputs and outputs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCache {
    capacity: u64,
    used: u64,
    peak: u64,
    acquires: u64,
    rejections: u64,
}

impl Default for IoCache {
    fn default() -> Self {
        IoCache::new(DEFAULT_IO_CACHE_BYTES)
    }
}

impl IoCache {
    /// Creates an IO cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        IoCache {
            capacity,
            used: 0,
            peak: 0,
            acquires: 0,
            rejections: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently staged.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of staged bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of successful acquisitions.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Number of rejected acquisitions.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Acquires staging space for `bytes` bytes.
    pub fn acquire(&mut self, bytes: u64) -> Result<(), IoCacheFull> {
        if bytes > self.available() {
            self.rejections += 1;
            return Err(IoCacheFull {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        self.acquires += 1;
        if self.used > self.peak {
            self.peak = self.used;
        }
        Ok(())
    }

    /// Releases previously acquired staging space. Clamps at zero.
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_512mb() {
        let c = IoCache::default();
        assert_eq!(c.capacity(), 512 * 1024 * 1024);
    }

    #[test]
    fn acquire_release_cycle() {
        let mut c = IoCache::new(1000);
        c.acquire(400).unwrap();
        c.acquire(600).unwrap();
        assert_eq!(c.available(), 0);
        assert_eq!(c.peak(), 1000);
        assert_eq!(c.acquires(), 2);
        let err = c.acquire(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(c.rejections(), 1);
        c.release(500);
        assert_eq!(c.used(), 500);
        c.release(10_000);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn typical_inference_io_fits_easily() {
        // Largest Appendix A IO: ~1 MB input at batch 16 ≈ 17 MB staged.
        let mut c = IoCache::default();
        for _ in 0..16 {
            c.acquire(1_073 * 1024).unwrap();
        }
        assert!(c.peak() < c.capacity() / 10);
    }

    #[test]
    fn error_display() {
        let e = IoCacheFull {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("requested 10"));
    }
}
