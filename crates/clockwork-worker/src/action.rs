//! The action vocabulary between controller and workers.
//!
//! §4.2: Clockwork replaces traditional RPC with an *action* abstraction.
//! Each action either communicates a change in worker state (`LOAD`,
//! `UNLOAD`) or a task to execute (`INFER`), and carries two timestamps,
//! `earliest` and `latest`, bounding when the worker may begin executing it.
//! Actions that cannot start within their window are cancelled, never
//! executed late — that is how a worker gets back on schedule after a
//! mis-prediction instead of cascading the delay.
//!
//! Every action produces exactly one [`ActionResult`] carrying either the
//! measured timings (which the controller feeds back into its profiles) or an
//! error code.

use serde::{Deserialize, Serialize};

use clockwork_model::ModelId;
use clockwork_sim::time::{Nanos, Timestamp};

/// Identifier of a worker machine.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a GPU within a worker.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GpuId(pub u32);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of an action, unique per controller.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ActionId(pub u64);

impl std::fmt::Display for ActionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The `[earliest, latest]` execution window of an action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// The action may not start before this time.
    pub earliest: Timestamp,
    /// The action is rejected if it has not started by this time.
    pub latest: Timestamp,
}

impl TimeWindow {
    /// A window that is always open (used by best-effort baselines).
    pub fn always() -> Self {
        TimeWindow {
            earliest: Timestamp::ZERO,
            latest: Timestamp::MAX,
        }
    }

    /// A window starting at `earliest` and staying open for `width`.
    pub fn starting_at(earliest: Timestamp, width: Nanos) -> Self {
        TimeWindow {
            earliest,
            latest: earliest + width,
        }
    }

    /// Whether an action may start at time `t`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.earliest && t <= self.latest
    }

    /// Whether the window has closed by time `t`.
    pub fn expired(&self, t: Timestamp) -> bool {
        t > self.latest
    }

    /// The width of the window.
    pub fn width(&self) -> Nanos {
        self.latest - self.earliest
    }
}

/// What the worker is being asked to do.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Copy a model's weights from host memory into the device weights cache.
    Load {
        /// The model to load.
        model: ModelId,
    },
    /// Release a model's pages from the device weights cache.
    Unload {
        /// The model to unload.
        model: ModelId,
    },
    /// Execute one inference batch for a model.
    Infer {
        /// The model to execute.
        model: ModelId,
        /// The compiled batch size to use.
        batch: u32,
        /// The client requests bundled into this batch.
        request_ids: Vec<u64>,
    },
}

impl ActionKind {
    /// The model this action concerns.
    pub fn model(&self) -> ModelId {
        match self {
            ActionKind::Load { model }
            | ActionKind::Unload { model }
            | ActionKind::Infer { model, .. } => *model,
        }
    }

    /// A short label for the action type, used in telemetry.
    pub fn type_name(&self) -> &'static str {
        match self {
            ActionKind::Load { .. } => "LOAD",
            ActionKind::Unload { .. } => "UNLOAD",
            ActionKind::Infer { .. } => "INFER",
        }
    }

    /// Whether this is an `INFER` action.
    pub fn is_infer(&self) -> bool {
        matches!(self, ActionKind::Infer { .. })
    }
}

/// An action issued by the controller to a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Unique action id.
    pub id: ActionId,
    /// The GPU this action targets.
    pub gpu: GpuId,
    /// What to do.
    pub kind: ActionKind,
    /// When the worker may begin.
    pub window: TimeWindow,
    /// The controller's prediction of how long the action will take; echoed
    /// back in telemetry so prediction error (Fig. 9) can be computed.
    pub expected_duration: Nanos,
}

/// Why an action failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionError {
    /// The action could not start before its `latest` timestamp.
    WindowElapsed,
    /// An `INFER` arrived for a model whose weights are not in device memory.
    ModelNotLoaded,
    /// A `LOAD` could not acquire enough free pages.
    InsufficientPages {
        /// Pages the model needs.
        needed: u64,
        /// Pages that were free.
        available: u64,
    },
    /// The model id has never been registered with this worker.
    UnknownModel,
    /// The model has no kernel compiled for the requested batch size.
    UnsupportedBatch {
        /// The requested batch size.
        batch: u32,
    },
    /// A `LOAD` arrived for a model that is already resident.
    AlreadyLoaded,
    /// The input/output staging area is exhausted.
    IoCacheFull,
}

impl std::fmt::Display for ActionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionError::WindowElapsed => write!(f, "execution window elapsed"),
            ActionError::ModelNotLoaded => write!(f, "model weights not in device memory"),
            ActionError::InsufficientPages { needed, available } => {
                write!(f, "insufficient pages: need {needed}, have {available}")
            }
            ActionError::UnknownModel => write!(f, "unknown model"),
            ActionError::UnsupportedBatch { batch } => {
                write!(f, "no kernel compiled for batch size {batch}")
            }
            ActionError::AlreadyLoaded => write!(f, "model already loaded"),
            ActionError::IoCacheFull => write!(f, "IO cache exhausted"),
        }
    }
}

impl std::error::Error for ActionError {}

/// Measured timings of a successful action (§4.4 "Results").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionTiming {
    /// When the action was received by the worker.
    pub received: Timestamp,
    /// When execution actually began.
    pub start: Timestamp,
    /// When the action finished (outputs available / weights resident).
    pub end: Timestamp,
    /// Duration of the asynchronous on-device work (EXEC or DMA), excluding
    /// queueing.
    pub device_duration: Nanos,
}

impl ActionTiming {
    /// Total latency from start to completion.
    pub fn total(&self) -> Nanos {
        self.end - self.start
    }
}

/// The outcome of an action.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// The action executed; timings attached.
    Success(ActionTiming),
    /// The action was rejected or failed.
    Error {
        /// Why it failed.
        error: ActionError,
        /// When the worker decided it had failed.
        at: Timestamp,
    },
}

impl ActionOutcome {
    /// Whether the action succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, ActionOutcome::Success(_))
    }

    /// The timing of a successful action, if any.
    pub fn timing(&self) -> Option<&ActionTiming> {
        match self {
            ActionOutcome::Success(t) => Some(t),
            ActionOutcome::Error { .. } => None,
        }
    }
}

/// The result message a worker sends back to the controller for every action.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActionResult {
    /// The action this result answers.
    pub action_id: ActionId,
    /// The worker that executed (or rejected) it.
    pub worker: WorkerId,
    /// The GPU involved.
    pub gpu: GpuId,
    /// The model involved.
    pub model: ModelId,
    /// The action type label ("LOAD"/"UNLOAD"/"INFER").
    pub action_type: &'static str,
    /// Batch size for INFER actions (1 otherwise).
    pub batch: u32,
    /// The request ids carried by an INFER action.
    pub request_ids: Vec<u64>,
    /// The controller's predicted duration, echoed back.
    pub expected_duration: Nanos,
    /// What happened.
    pub outcome: ActionOutcome,
}

impl ActionResult {
    /// Whether the underlying action succeeded.
    pub fn is_success(&self) -> bool {
        self.outcome.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_and_expiry() {
        let w = TimeWindow::starting_at(Timestamp::from_millis(10), Nanos::from_millis(5));
        assert!(!w.contains(Timestamp::from_millis(9)));
        assert!(w.contains(Timestamp::from_millis(10)));
        assert!(w.contains(Timestamp::from_millis(15)));
        assert!(!w.contains(Timestamp::from_millis(16)));
        assert!(w.expired(Timestamp::from_millis(16)));
        assert!(!w.expired(Timestamp::from_millis(15)));
        assert_eq!(w.width(), Nanos::from_millis(5));
    }

    #[test]
    fn always_window_never_expires() {
        let w = TimeWindow::always();
        assert!(w.contains(Timestamp::ZERO));
        assert!(w.contains(Timestamp::from_secs(1_000_000)));
        assert!(!w.expired(Timestamp::MAX));
    }

    #[test]
    fn action_kind_accessors() {
        let load = ActionKind::Load { model: ModelId(3) };
        let infer = ActionKind::Infer {
            model: ModelId(4),
            batch: 8,
            request_ids: vec![1, 2, 3],
        };
        assert_eq!(load.model(), ModelId(3));
        assert_eq!(infer.model(), ModelId(4));
        assert_eq!(load.type_name(), "LOAD");
        assert_eq!(infer.type_name(), "INFER");
        assert!(infer.is_infer());
        assert!(!load.is_infer());
    }

    #[test]
    fn timing_total() {
        let t = ActionTiming {
            received: Timestamp::from_millis(1),
            start: Timestamp::from_millis(2),
            end: Timestamp::from_millis(10),
            device_duration: Nanos::from_millis(7),
        };
        assert_eq!(t.total(), Nanos::from_millis(8));
    }

    #[test]
    fn outcome_accessors() {
        let ok = ActionOutcome::Success(ActionTiming {
            received: Timestamp::ZERO,
            start: Timestamp::ZERO,
            end: Timestamp::from_millis(1),
            device_duration: Nanos::from_millis(1),
        });
        let err = ActionOutcome::Error {
            error: ActionError::ModelNotLoaded,
            at: Timestamp::ZERO,
        };
        assert!(ok.is_success());
        assert!(ok.timing().is_some());
        assert!(!err.is_success());
        assert!(err.timing().is_none());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ActionError::InsufficientPages {
            needed: 7,
            available: 2,
        };
        assert!(e.to_string().contains("need 7"));
        assert!(ActionError::WindowElapsed.to_string().contains("window"));
        assert!(ActionError::UnsupportedBatch { batch: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn ids_display() {
        assert_eq!(WorkerId(1).to_string(), "w1");
        assert_eq!(GpuId(0).to_string(), "g0");
        assert_eq!(ActionId(9).to_string(), "a9");
    }
}
