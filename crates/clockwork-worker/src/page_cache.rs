//! The paged device weights cache (§5.2 "Managing model weights in memory").
//!
//! Clockwork pre-allocates all GPU memory and carves the bulk of it into
//! fixed 16 MiB pages used exclusively for model weights. Paging has two
//! properties the paper leans on:
//!
//! * it eliminates external fragmentation, so the *only* piece of memory
//!   state the controller has to track per worker is the number of free
//!   pages; and
//! * allocation/free become trivially predictable metadata operations,
//!   removing the variable-latency allocator from the critical path (C1).
//!
//! Admission and eviction decisions belong to the controller; the cache
//! nevertheless maintains a least-recently-used order so best-effort
//! baselines (and the controller's own LRU policy for UNLOAD) can query a
//! victim.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use clockwork_model::ModelId;
use clockwork_sim::time::Timestamp;

/// Default page size: 16 MiB (§5.2).
pub const DEFAULT_PAGE_SIZE: u64 = 16 * 1024 * 1024;

/// Error returned when a page allocation cannot be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsufficientPages {
    /// Pages requested.
    pub needed: u64,
    /// Pages currently free.
    pub available: u64,
}

impl std::fmt::Display for InsufficientPages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient pages: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientPages {}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Residency {
    pages: u64,
    last_used: Timestamp,
    loaded_at: Timestamp,
    /// In-flight references (executing INFERs holding the weights). A model
    /// cannot be unloaded while its reference count is above zero.
    refs: u32,
}

/// A fixed-size paged cache for model weights on one GPU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PageCache {
    page_size: u64,
    total_pages: u64,
    free_pages: u64,
    resident: HashMap<ModelId, Residency>,
}

impl PageCache {
    /// Creates a cache with the given total capacity in bytes and page size.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(capacity_bytes: u64, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let total_pages = capacity_bytes / page_size;
        PageCache {
            page_size,
            total_pages,
            free_pages: total_pages,
            resident: HashMap::new(),
        }
    }

    /// Creates a cache with the default 16 MiB page size.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        PageCache::new(capacity_bytes, DEFAULT_PAGE_SIZE)
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Total number of pages.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Number of free pages.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Number of allocated pages.
    pub fn used_pages(&self) -> u64 {
        self.total_pages - self.free_pages
    }

    /// Number of pages a weights blob of `bytes` bytes occupies.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size)
    }

    /// Whether a model's weights are resident.
    pub fn contains(&self, model: ModelId) -> bool {
        self.resident.contains_key(&model)
    }

    /// Number of models currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// The resident models (unordered).
    pub fn resident_models(&self) -> Vec<ModelId> {
        self.resident.keys().copied().collect()
    }

    /// Allocates pages for a model's weights.
    ///
    /// Fails without side effects if the model is already resident or there
    /// are not enough free pages; the caller (controller) is responsible for
    /// evicting first — the cache itself never makes that choice.
    pub fn allocate(
        &mut self,
        model: ModelId,
        weights_bytes: u64,
        now: Timestamp,
    ) -> Result<u64, InsufficientPages> {
        if self.resident.contains_key(&model) {
            // Re-loading a resident model costs nothing; treat as touch.
            self.touch(model, now);
            return Ok(0);
        }
        let needed = self.pages_for(weights_bytes).max(1);
        if needed > self.free_pages {
            return Err(InsufficientPages {
                needed,
                available: self.free_pages,
            });
        }
        self.free_pages -= needed;
        self.resident.insert(
            model,
            Residency {
                pages: needed,
                last_used: now,
                loaded_at: now,
                refs: 0,
            },
        );
        Ok(needed)
    }

    /// Releases a model's pages. Returns the number of pages freed: 0 if the
    /// model was not resident, or if it is pinned by an in-flight reference —
    /// a referenced model's pages stay mapped and accounted, so an UNLOAD
    /// racing an executing INFER can never free weights out from under the
    /// kernel (and can never double-count the pages when the INFER finishes).
    pub fn release(&mut self, model: ModelId) -> u64 {
        if self.resident.get(&model).is_some_and(|r| r.refs > 0) {
            return 0;
        }
        match self.resident.remove(&model) {
            Some(r) => {
                self.free_pages += r.pages;
                r.pages
            }
            None => 0,
        }
    }

    /// Takes a reference on a resident model's weights (an INFER starting
    /// execution). Returns `false` (and takes nothing) if the model is not
    /// resident. While the reference is held, [`PageCache::release`] refuses
    /// to free the pages and the LRU queries skip the model.
    pub fn pin(&mut self, model: ModelId) -> bool {
        match self.resident.get_mut(&model) {
            Some(r) => {
                r.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Drops a reference taken by [`PageCache::pin`]. Unknown or unpinned
    /// models are a no-op: a crash resets the whole cache (dropping every
    /// reference with it), so a completion drained after recovery may
    /// legitimately unpin a model the fresh cache has never seen.
    pub fn unpin(&mut self, model: ModelId) {
        if let Some(r) = self.resident.get_mut(&model) {
            r.refs = r.refs.saturating_sub(1);
        }
    }

    /// The number of in-flight references currently pinning a model
    /// (0 if not resident).
    pub fn ref_count(&self, model: ModelId) -> u32 {
        self.resident.get(&model).map_or(0, |r| r.refs)
    }

    /// Pages held by resident models, recomputed from the residency table
    /// rather than derived from the free counter — so the conservation
    /// invariant `free_pages + held_pages == total_pages` actually
    /// cross-checks the two accountings instead of restating one of them.
    pub fn held_pages(&self) -> u64 {
        self.resident.values().map(|r| r.pages).sum()
    }

    /// Marks a model as used at `now` (INFER touches its weights).
    pub fn touch(&mut self, model: ModelId, now: Timestamp) {
        if let Some(r) = self.resident.get_mut(&model) {
            if now > r.last_used {
                r.last_used = now;
            }
        }
    }

    /// The least recently used resident model, if any. Pinned models are
    /// skipped — their UNLOAD would refuse anyway. Ties break by model id
    /// for determinism.
    pub fn lru_victim(&self) -> Option<ModelId> {
        self.resident
            .iter()
            .filter(|(_, r)| r.refs == 0)
            .min_by_key(|(id, r)| (r.last_used, **id))
            .map(|(id, _)| *id)
    }

    /// The least recently used resident models, excluding `protect` and any
    /// pinned model, in eviction order, whose combined pages are at least
    /// `pages_needed`. Returns `None` if even evicting everything else would
    /// not free enough.
    pub fn lru_victims_for(&self, pages_needed: u64, protect: &[ModelId]) -> Option<Vec<ModelId>> {
        let mut candidates: Vec<(&ModelId, &Residency)> = self
            .resident
            .iter()
            .filter(|(id, r)| !protect.contains(id) && r.refs == 0)
            .collect();
        candidates.sort_by_key(|(id, r)| (r.last_used, **id));
        let mut freed = self.free_pages;
        let mut victims = Vec::new();
        for (id, r) in candidates {
            if freed >= pages_needed {
                break;
            }
            freed += r.pages;
            victims.push(*id);
        }
        if freed >= pages_needed {
            Some(victims)
        } else {
            None
        }
    }

    /// Fraction of pages in use, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.total_pages == 0 {
            return 1.0;
        }
        self.used_pages() as f64 / self.total_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with_pages(pages: u64) -> PageCache {
        PageCache::new(pages * DEFAULT_PAGE_SIZE, DEFAULT_PAGE_SIZE)
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_panics() {
        let _ = PageCache::new(1024, 0);
    }

    #[test]
    fn v100_page_count_matches_paper_capacity() {
        // A 32 GB V100 minus the 1 GB of workspace + IO cache leaves room for
        // roughly 2000 16 MiB pages; the paper observes GPU capacity is
        // reached at ~201 resident ResNet50s (7 pages each) plus headroom.
        let capacity = 31 * 1024 * MB;
        let cache = PageCache::with_capacity(capacity);
        assert_eq!(cache.total_pages(), 1984);
        assert_eq!(cache.page_size(), DEFAULT_PAGE_SIZE);
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut c = cache_with_pages(10);
        let t = Timestamp::from_millis(1);
        let pages = c.allocate(ModelId(1), 100 * MB, t).unwrap();
        assert_eq!(pages, 7);
        assert!(c.contains(ModelId(1)));
        assert_eq!(c.free_pages(), 3);
        assert_eq!(c.used_pages(), 7);
        assert_eq!(c.resident_count(), 1);
        assert_eq!(c.release(ModelId(1)), 7);
        assert_eq!(c.free_pages(), 10);
        assert_eq!(c.release(ModelId(1)), 0, "double release is a no-op");
    }

    #[test]
    fn allocation_failure_has_no_side_effects() {
        let mut c = cache_with_pages(5);
        c.allocate(ModelId(1), 64 * MB, Timestamp::ZERO).unwrap(); // 4 pages
        let err = c
            .allocate(ModelId(2), 48 * MB, Timestamp::ZERO)
            .unwrap_err(); // needs 3
        assert_eq!(err.needed, 3);
        assert_eq!(err.available, 1);
        assert!(!c.contains(ModelId(2)));
        assert_eq!(c.free_pages(), 1);
    }

    #[test]
    fn reloading_a_resident_model_is_free() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(1), 32 * MB, Timestamp::ZERO).unwrap();
        let again = c
            .allocate(ModelId(1), 32 * MB, Timestamp::from_millis(5))
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(c.used_pages(), 2);
    }

    #[test]
    fn tiny_models_still_use_one_page() {
        let mut c = cache_with_pages(4);
        assert_eq!(c.allocate(ModelId(1), 100, Timestamp::ZERO).unwrap(), 1);
        assert_eq!(c.pages_for(0), 0);
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(DEFAULT_PAGE_SIZE), 1);
        assert_eq!(c.pages_for(DEFAULT_PAGE_SIZE + 1), 2);
    }

    #[test]
    fn lru_victim_follows_usage_order() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(1), 16 * MB, Timestamp::from_millis(1))
            .unwrap();
        c.allocate(ModelId(2), 16 * MB, Timestamp::from_millis(2))
            .unwrap();
        c.allocate(ModelId(3), 16 * MB, Timestamp::from_millis(3))
            .unwrap();
        assert_eq!(c.lru_victim(), Some(ModelId(1)));
        c.touch(ModelId(1), Timestamp::from_millis(10));
        assert_eq!(c.lru_victim(), Some(ModelId(2)));
        // Touching with an older timestamp does not move a model backwards.
        c.touch(ModelId(3), Timestamp::from_millis(1));
        assert_eq!(c.lru_victim(), Some(ModelId(2)));
        // Touching an absent model is a no-op.
        c.touch(ModelId(99), Timestamp::from_millis(99));
    }

    #[test]
    fn lru_victims_for_frees_just_enough() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(1), 48 * MB, Timestamp::from_millis(1))
            .unwrap(); // 3 pages
        c.allocate(ModelId(2), 48 * MB, Timestamp::from_millis(2))
            .unwrap(); // 3 pages
        c.allocate(ModelId(3), 48 * MB, Timestamp::from_millis(3))
            .unwrap(); // 3 pages
                       // 1 page free; need 4 -> evict the single LRU model (3 pages).
        let victims = c.lru_victims_for(4, &[]).unwrap();
        assert_eq!(victims, vec![ModelId(1)]);
        // Need 7 -> evict two models.
        let victims = c.lru_victims_for(7, &[]).unwrap();
        assert_eq!(victims, vec![ModelId(1), ModelId(2)]);
        // Protecting a model skips it.
        let victims = c.lru_victims_for(4, &[ModelId(1)]).unwrap();
        assert_eq!(victims, vec![ModelId(2)]);
        // Impossible requests return None.
        assert!(c.lru_victims_for(100, &[]).is_none());
        // Already-satisfiable requests need no victims.
        assert_eq!(c.lru_victims_for(1, &[]).unwrap(), Vec::<ModelId>::new());
    }

    #[test]
    fn pinned_models_cannot_be_released_and_pages_conserve() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(1), 48 * MB, Timestamp::ZERO).unwrap(); // 3 pages
        c.allocate(ModelId(2), 32 * MB, Timestamp::ZERO).unwrap(); // 2 pages
        assert!(c.pin(ModelId(1)));
        assert!(c.pin(ModelId(1)), "references stack");
        assert_eq!(c.ref_count(ModelId(1)), 2);

        // Release refuses while pinned; nothing leaks, nothing frees.
        assert_eq!(c.release(ModelId(1)), 0);
        assert!(c.contains(ModelId(1)));
        assert_eq!(c.free_pages() + c.held_pages(), c.total_pages());

        // Dropping one reference still protects; dropping the last releases.
        c.unpin(ModelId(1));
        assert_eq!(c.release(ModelId(1)), 0);
        c.unpin(ModelId(1));
        assert_eq!(c.ref_count(ModelId(1)), 0);
        assert_eq!(c.release(ModelId(1)), 3);
        assert_eq!(c.free_pages() + c.held_pages(), c.total_pages());

        // Unpinned model 2 releases normally throughout.
        assert_eq!(c.release(ModelId(2)), 2);
        assert_eq!(c.free_pages(), 10);
        assert_eq!(c.held_pages(), 0);
    }

    #[test]
    fn pin_unpin_edge_cases_are_safe() {
        let mut c = cache_with_pages(4);
        assert!(!c.pin(ModelId(9)), "absent model cannot be pinned");
        c.unpin(ModelId(9)); // no-op
        c.allocate(ModelId(1), 16 * MB, Timestamp::ZERO).unwrap();
        c.unpin(ModelId(1)); // unpin below zero saturates
        assert_eq!(c.ref_count(ModelId(1)), 0);
        assert_eq!(c.release(ModelId(1)), 1);
    }

    #[test]
    fn lru_queries_skip_pinned_models() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(1), 48 * MB, Timestamp::from_millis(1))
            .unwrap(); // 3 pages, oldest
        c.allocate(ModelId(2), 48 * MB, Timestamp::from_millis(2))
            .unwrap(); // 3 pages
        c.pin(ModelId(1));
        assert_eq!(c.lru_victim(), Some(ModelId(2)));
        // 4 free pages + 3 from evicting model 2 covers 7; model 1's pages
        // are unreachable while pinned, so 8 is impossible.
        assert_eq!(c.lru_victims_for(7, &[]).unwrap(), vec![ModelId(2)]);
        assert!(c.lru_victims_for(8, &[]).is_none());
        c.unpin(ModelId(1));
        assert_eq!(c.lru_victim(), Some(ModelId(1)));
    }

    #[test]
    fn held_pages_cross_checks_free_counter_under_churn() {
        let mut c = cache_with_pages(16);
        for round in 0..50u64 {
            let id = ModelId((round % 7) as u32);
            let t = Timestamp::from_millis(round);
            if c.contains(id) && round % 3 == 0 {
                c.release(id);
            } else {
                let _ = c.allocate(id, (round % 5 + 1) * 16 * MB, t);
            }
            assert_eq!(
                c.free_pages() + c.held_pages(),
                c.total_pages(),
                "page accounting drifted at round {round}"
            );
        }
    }

    #[test]
    fn occupancy_tracks_usage() {
        let mut c = cache_with_pages(4);
        assert_eq!(c.occupancy(), 0.0);
        c.allocate(ModelId(1), 32 * MB, Timestamp::ZERO).unwrap();
        assert!((c.occupancy() - 0.5).abs() < 1e-12);
        let empty = PageCache::new(0, DEFAULT_PAGE_SIZE);
        assert_eq!(empty.occupancy(), 1.0);
    }

    #[test]
    fn resident_models_lists_everything() {
        let mut c = cache_with_pages(10);
        c.allocate(ModelId(5), 16 * MB, Timestamp::ZERO).unwrap();
        c.allocate(ModelId(7), 16 * MB, Timestamp::ZERO).unwrap();
        let mut models = c.resident_models();
        models.sort();
        assert_eq!(models, vec![ModelId(5), ModelId(7)]);
    }
}
