//! Worker-side telemetry.
//!
//! Workers report the measured duration of every action back to the
//! controller (that is part of the action protocol, handled in
//! [`crate::action::ActionResult`]); in addition they keep local aggregate
//! statistics — GPU and PCIe utilization over time, action counts, rejection
//! counts — which the evaluation harness reads to produce Fig. 6 (d)/(e) and
//! the summary tables.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use clockwork_metrics::{LatencyHistogram, Summary, UtilizationTracker};
use clockwork_model::ModelId;
use clockwork_sim::time::{Nanos, Timestamp};

/// Aggregate counters for one worker.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerCounters {
    /// LOAD actions completed successfully.
    pub loads_completed: u64,
    /// UNLOAD actions completed.
    pub unloads_completed: u64,
    /// INFER actions completed successfully.
    pub infers_completed: u64,
    /// Successful INFER actions that carried two or more requests.
    pub batched_infers: u64,
    /// Individual requests served (sum of members of successful INFERs).
    /// Always the sum of [`MemberCompletion`]s recorded — exactly-once
    /// accounting stays per-request even when the action was batched.
    pub requests_served: u64,
    /// Actions rejected because their window elapsed.
    pub window_rejections: u64,
    /// Actions that failed for any other reason.
    pub failures: u64,
    /// Worker process crashes injected by a fault plan.
    pub crashes: u64,
    /// Single-GPU failures injected by a fault plan.
    pub gpu_failures: u64,
    /// Actions dropped because they arrived while the worker (or the target
    /// GPU) was down.
    pub dropped_actions: u64,
}

impl WorkerCounters {
    /// Total successful actions.
    pub fn successes(&self) -> u64 {
        self.loads_completed + self.unloads_completed + self.infers_completed
    }
}

/// One request's completion inside a (possibly batched) INFER action.
///
/// Batched execution must not blur per-request accounting: every member of
/// every successful INFER produces one of these, carrying the identity the
/// controller's exactly-once bookkeeping and the response digest key off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberCompletion {
    /// The request served.
    pub request_id: u64,
    /// The model the batch executed.
    pub model: ModelId,
    /// Size of the batch this member rode in.
    pub batch: u32,
    /// When the action's outputs finished copying back to the host.
    pub completed: Timestamp,
}

/// How many recent [`MemberCompletion`]s each worker retains. A bounded
/// ring, not a full log: the lifetime sums live in [`WorkerCounters`], the
/// ring exists so tests and post-mortems can inspect exactly which
/// requests the latest batches carried.
pub const MEMBER_LOG_CAP: usize = 1024;

/// Utilization and latency telemetry for one worker.
#[derive(Clone, Debug)]
pub struct WorkerTelemetry {
    /// Counter block.
    pub counters: WorkerCounters,
    /// GPU busy-time per second, per GPU.
    pub gpu_utilization: Vec<UtilizationTracker>,
    /// PCIe (weights transfer) busy-time per second, per GPU.
    pub pcie_utilization: Vec<UtilizationTracker>,
    /// Measured EXEC durations.
    pub exec_durations: LatencyHistogram,
    /// Measured LOAD durations.
    pub load_durations: LatencyHistogram,
    /// Batch size of every successful INFER (count/mean/min/max).
    pub batch_occupancy: Summary,
    /// The most recent [`MEMBER_LOG_CAP`] per-member completion records.
    member_log: VecDeque<MemberCompletion>,
    /// Lifetime count of member completions ever recorded (including those
    /// the bounded ring has since evicted).
    members_total: u64,
}

impl WorkerTelemetry {
    /// Creates telemetry for a worker with `num_gpus` GPUs.
    pub fn new(num_gpus: usize) -> Self {
        WorkerTelemetry {
            counters: WorkerCounters::default(),
            gpu_utilization: (0..num_gpus)
                .map(|_| UtilizationTracker::per_second())
                .collect(),
            pcie_utilization: (0..num_gpus)
                .map(|_| UtilizationTracker::per_second())
                .collect(),
            exec_durations: LatencyHistogram::new(),
            load_durations: LatencyHistogram::new(),
            batch_occupancy: Summary::new(),
            member_log: VecDeque::new(),
            members_total: 0,
        }
    }

    /// Records the completion of a successful INFER: one
    /// [`MemberCompletion`] per request in the batch, the batch-occupancy
    /// sample, and the per-request counters. `request_ids` is the action's
    /// member list in submission order; an empty list (a probe INFER with
    /// no attached requests) still counts as one served request, matching
    /// the controller's accounting.
    pub fn record_infer_completion(
        &mut self,
        model: ModelId,
        batch: u32,
        request_ids: &[u64],
        completed: Timestamp,
    ) {
        self.counters.infers_completed += 1;
        self.counters.requests_served += request_ids.len().max(1) as u64;
        if request_ids.len() >= 2 {
            self.counters.batched_infers += 1;
        }
        self.batch_occupancy.record(batch as f64);
        for &request_id in request_ids {
            if self.member_log.len() == MEMBER_LOG_CAP {
                self.member_log.pop_front();
            }
            self.member_log.push_back(MemberCompletion {
                request_id,
                model,
                batch,
                completed,
            });
            self.members_total += 1;
        }
    }

    /// The retained per-member completion records, oldest first.
    pub fn member_log(&self) -> impl Iterator<Item = &MemberCompletion> {
        self.member_log.iter()
    }

    /// Lifetime member completions recorded, including records the bounded
    /// ring has evicted. A cursor over this count lets a consumer detect how
    /// many records it lost between polls.
    pub fn members_recorded(&self) -> u64 {
        self.members_total
    }

    /// The most recent `n` member completions, oldest first. Callers polling
    /// with a [`WorkerTelemetry::members_recorded`] cursor read exactly the
    /// records added since their last poll (clamped to what the ring still
    /// holds).
    pub fn member_log_tail(&self, n: usize) -> impl Iterator<Item = &MemberCompletion> {
        let start = self.member_log.len().saturating_sub(n);
        self.member_log.iter().skip(start)
    }

    /// Records a completed EXEC on `gpu` busy over `[start, end)`.
    pub fn record_exec(&mut self, gpu: usize, start: Timestamp, end: Timestamp, duration: Nanos) {
        if let Some(u) = self.gpu_utilization.get_mut(gpu) {
            u.record_busy(start, end);
        }
        self.exec_durations.record(duration);
    }

    /// Records a completed weights transfer on `gpu` busy over `[start, end)`.
    pub fn record_load(&mut self, gpu: usize, start: Timestamp, end: Timestamp, duration: Nanos) {
        if let Some(u) = self.pcie_utilization.get_mut(gpu) {
            u.record_busy(start, end);
        }
        self.load_durations.record(duration);
    }

    /// Mean GPU utilization across all GPUs over `[0, horizon]`.
    pub fn mean_gpu_utilization(&self, horizon: Timestamp) -> f64 {
        mean_utilization(&self.gpu_utilization, horizon)
    }

    /// Mean PCIe utilization across all GPUs over `[0, horizon]`.
    pub fn mean_pcie_utilization(&self, horizon: Timestamp) -> f64 {
        mean_utilization(&self.pcie_utilization, horizon)
    }
}

fn mean_utilization(trackers: &[UtilizationTracker], horizon: Timestamp) -> f64 {
    if trackers.is_empty() {
        return 0.0;
    }
    trackers
        .iter()
        .map(|t| t.mean_utilization(horizon))
        .sum::<f64>()
        / trackers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_successes() {
        let c = WorkerCounters {
            loads_completed: 2,
            unloads_completed: 1,
            infers_completed: 7,
            requests_served: 20,
            window_rejections: 3,
            failures: 1,
            ..Default::default()
        };
        assert_eq!(c.successes(), 10);
    }

    #[test]
    fn exec_and_load_recordings_update_utilization() {
        let mut t = WorkerTelemetry::new(2);
        t.record_exec(
            0,
            Timestamp::ZERO,
            Timestamp::from_millis(500),
            Nanos::from_millis(500),
        );
        t.record_load(
            1,
            Timestamp::ZERO,
            Timestamp::from_millis(250),
            Nanos::from_millis(250),
        );
        let horizon = Timestamp::from_secs(1);
        assert!((t.mean_gpu_utilization(horizon) - 0.25).abs() < 1e-9);
        assert!((t.mean_pcie_utilization(horizon) - 0.125).abs() < 1e-9);
        assert_eq!(t.exec_durations.count(), 1);
        assert_eq!(t.load_durations.count(), 1);
    }

    #[test]
    fn out_of_range_gpu_indices_are_ignored() {
        let mut t = WorkerTelemetry::new(1);
        t.record_exec(
            5,
            Timestamp::ZERO,
            Timestamp::from_millis(100),
            Nanos::from_millis(100),
        );
        assert_eq!(t.mean_gpu_utilization(Timestamp::from_secs(1)), 0.0);
        assert_eq!(t.exec_durations.count(), 1, "histogram still records");
    }

    #[test]
    fn empty_telemetry_reports_zero_utilization() {
        let t = WorkerTelemetry::new(0);
        assert_eq!(t.mean_gpu_utilization(Timestamp::from_secs(1)), 0.0);
    }

    #[test]
    fn member_cursor_survives_ring_eviction() {
        let mut t = WorkerTelemetry::new(1);
        let ids: Vec<u64> = (0..MEMBER_LOG_CAP as u64 + 10).collect();
        t.record_infer_completion(ModelId(1), 4, &ids, Timestamp::from_millis(1));
        assert_eq!(t.members_recorded(), ids.len() as u64);
        assert_eq!(t.member_log().count(), MEMBER_LOG_CAP, "ring stays bounded");
        // A consumer whose cursor lags by 3 reads exactly the last 3 records.
        let tail: Vec<u64> = t.member_log_tail(3).map(|m| m.request_id).collect();
        assert_eq!(
            tail,
            vec![
                ids.len() as u64 - 3,
                ids.len() as u64 - 2,
                ids.len() as u64 - 1
            ]
        );
        // A consumer who fell further behind than the ring holds can tell:
        // members_recorded - cursor exceeds the ring length.
        let lost = t.members_recorded() - t.member_log().count() as u64;
        assert_eq!(lost, 10);
    }
}
