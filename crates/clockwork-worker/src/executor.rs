//! Per-action-type executors (§5.2 "Actions").
//!
//! Each worker runs a dedicated executor per action type and per GPU. An
//! executor dequeues actions chronologically by their `earliest` timestamp,
//! waits until `earliest` before starting one, and rejects actions whose
//! `latest` has already passed when their turn comes. Executors never
//! reorder work to "help" — that would be a choice, and choices belong to the
//! controller.
//!
//! [`Executor`] models exactly that discipline as a priority queue plus a
//! busy-until horizon; the [`crate::worker::Worker`] drives it in virtual
//! time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use clockwork_sim::time::Timestamp;

use crate::action::Action;

/// An action queued on an executor, tagged with its arrival time.
#[derive(Clone, Debug, PartialEq)]
pub struct QueuedAction {
    /// The action itself.
    pub action: Action,
    /// When the worker received it.
    pub received: Timestamp,
    seq: u64,
}

impl Eq for QueuedAction {}

impl PartialOrd for QueuedAction {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedAction {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest `earliest` first, FIFO tie-break.
        other
            .action
            .window
            .earliest
            .cmp(&self.action.window.earliest)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single-threaded executor for one action type on one GPU.
#[derive(Clone, Debug, Default)]
pub struct Executor {
    queue: BinaryHeap<QueuedAction>,
    busy_until: Timestamp,
    next_seq: u64,
    started: u64,
}

impl Executor {
    /// Creates an idle executor.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Enqueues an action received at `received`.
    pub fn push(&mut self, action: Action, received: Timestamp) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedAction {
            action,
            received,
            seq,
        });
    }

    /// Number of queued (not yet started) actions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The time until which the executor is occupied by the action it most
    /// recently started.
    pub fn busy_until(&self) -> Timestamp {
        self.busy_until
    }

    /// Marks the executor busy until `t` (monotonically increasing).
    pub fn occupy_until(&mut self, t: Timestamp) {
        if t > self.busy_until {
            self.busy_until = t;
        }
    }

    /// The earliest virtual time at which the next queued action could start:
    /// the latest of the executor becoming free, the head action's
    /// `earliest`, and the head action's arrival at the worker. `None` if
    /// nothing is queued.
    pub fn next_start_time(&self) -> Option<Timestamp> {
        self.queue.peek().map(|qa| {
            self.busy_until
                .max(qa.action.window.earliest)
                .max(qa.received)
        })
    }

    /// Pops the head action if it could start at or before `now`.
    ///
    /// The caller is responsible for checking the action's `latest` bound and
    /// rejecting it if the window has closed — the executor only guarantees
    /// chronological dequeue order.
    pub fn pop_ready(&mut self, now: Timestamp) -> Option<QueuedAction> {
        match self.next_start_time() {
            Some(t) if t <= now => {
                self.started += 1;
                self.queue.pop()
            }
            _ => None,
        }
    }

    /// Total number of actions popped for execution so far.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Drains every queued action regardless of timing (used on shutdown and
    /// by tests).
    pub fn drain(&mut self) -> Vec<QueuedAction> {
        let mut all: Vec<QueuedAction> = std::mem::take(&mut self.queue).into_vec();
        all.sort_by_key(|qa| (qa.action.window.earliest, qa.seq));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionKind, GpuId, TimeWindow};
    use clockwork_model::ModelId;
    use clockwork_sim::time::Nanos;

    fn action(id: u64, earliest_ms: u64, width_ms: u64) -> Action {
        Action {
            id: ActionId(id),
            gpu: GpuId(0),
            kind: ActionKind::Load { model: ModelId(1) },
            window: TimeWindow::starting_at(
                Timestamp::from_millis(earliest_ms),
                Nanos::from_millis(width_ms),
            ),
            expected_duration: Nanos::from_millis(8),
        }
    }

    #[test]
    fn dequeues_in_earliest_order() {
        let mut ex = Executor::new();
        ex.push(action(1, 30, 10), Timestamp::ZERO);
        ex.push(action(2, 10, 10), Timestamp::ZERO);
        ex.push(action(3, 20, 10), Timestamp::ZERO);
        assert_eq!(ex.queue_len(), 3);
        let a = ex.pop_ready(Timestamp::from_millis(100)).unwrap();
        assert_eq!(a.action.id, ActionId(2));
        let b = ex.pop_ready(Timestamp::from_millis(100)).unwrap();
        assert_eq!(b.action.id, ActionId(3));
        assert_eq!(ex.started(), 2);
    }

    #[test]
    fn ties_dequeue_fifo() {
        let mut ex = Executor::new();
        for id in 0..10 {
            ex.push(action(id, 5, 10), Timestamp::ZERO);
        }
        for id in 0..10 {
            let a = ex.pop_ready(Timestamp::from_millis(50)).unwrap();
            assert_eq!(a.action.id, ActionId(id));
        }
    }

    #[test]
    fn does_not_start_before_earliest() {
        let mut ex = Executor::new();
        ex.push(action(1, 10, 5), Timestamp::ZERO);
        assert!(ex.pop_ready(Timestamp::from_millis(9)).is_none());
        assert_eq!(ex.next_start_time(), Some(Timestamp::from_millis(10)));
        assert!(ex.pop_ready(Timestamp::from_millis(10)).is_some());
        assert!(ex.is_empty());
    }

    #[test]
    fn waits_for_busy_executor() {
        let mut ex = Executor::new();
        ex.push(action(1, 0, 100), Timestamp::ZERO);
        ex.occupy_until(Timestamp::from_millis(50));
        assert_eq!(ex.busy_until(), Timestamp::from_millis(50));
        assert!(ex.pop_ready(Timestamp::from_millis(40)).is_none());
        assert_eq!(ex.next_start_time(), Some(Timestamp::from_millis(50)));
        assert!(ex.pop_ready(Timestamp::from_millis(50)).is_some());
        // occupy_until never moves backwards.
        ex.occupy_until(Timestamp::from_millis(10));
        assert_eq!(ex.busy_until(), Timestamp::from_millis(50));
    }

    #[test]
    fn empty_executor_has_no_start_time() {
        let ex = Executor::new();
        assert_eq!(ex.next_start_time(), None);
        assert!(ex.is_empty());
    }

    #[test]
    fn drain_returns_everything_in_earliest_order() {
        let mut ex = Executor::new();
        ex.push(action(1, 30, 10), Timestamp::ZERO);
        ex.push(action(2, 10, 10), Timestamp::ZERO);
        let drained = ex.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].action.id, ActionId(2));
        assert!(ex.is_empty());
    }
}
