//! The worker state machine (§4.4, §5.2).
//!
//! A [`Worker`] holds every registered model's weights in host memory,
//! maintains a paged weights cache, an IO staging cache and timing models per
//! GPU, and executes [`Action`]s submitted by the controller. It is written
//! as a pure state machine over virtual time: `submit` enqueues work,
//! [`Worker::poll`] advances everything whose virtual time has come and
//! returns the [`ActionResult`]s produced, and [`Worker::next_wakeup`] tells
//! the surrounding event loop when something will next happen.
//!
//! Faithfulness notes:
//!
//! * Only one EXEC runs per GPU at a time in [`ExecMode::Exclusive`] (the
//!   Clockwork configuration); [`ExecMode::Concurrent`] exists for the
//!   best-effort baselines and for the Fig. 2b experiment, and exhibits the
//!   throughput-vs-variance trade-off of the paper.
//! * INFER is internally split into INPUT → EXEC → OUTPUT. Inputs and outputs
//!   move on their own PCIe streams and overlap with execution; the action
//!   completes when outputs land in host memory, while the executor frees as
//!   soon as EXEC finishes (so back-to-back INFERs of the same model are
//!   possible, §5.2).
//! * Actions that cannot *start* inside their `[earliest, latest]` window are
//!   rejected with [`ActionError::WindowElapsed`] and never executed.
//! * LOAD aborts if the page cache has insufficient free pages; UNLOAD only
//!   updates metadata and always succeeds.
//! * Fleet churn is modelled explicitly: [`Worker::crash`] loses every queued
//!   and in-flight action and flushes the device caches (a restarted worker
//!   is cold), [`Worker::fail_gpu`] does the same for a single GPU, and a
//!   dead worker or GPU silently drops submissions — the controller, which
//!   observes the same fault event, is responsible for resolving the actions
//!   it will now never hear back about.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use clockwork_model::ModelId;
use clockwork_model::ModelSpec;
use clockwork_sim::engine::EventQueue;
use clockwork_sim::gpu::{GpuSpec, GpuTimingModel};
use clockwork_sim::memory::MemoryPool;
use clockwork_sim::pcie::{LinkScheduler, PcieLink};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_sim::variance::{ExternalVariance, VarianceConfig};

use crate::action::{
    Action, ActionError, ActionKind, ActionOutcome, ActionResult, ActionTiming, GpuId, TimeWindow,
    WorkerId,
};
use crate::executor::Executor;
use crate::io_cache::{IoCache, DEFAULT_IO_CACHE_BYTES};
use crate::page_cache::{PageCache, DEFAULT_PAGE_SIZE};
use crate::telemetry::WorkerTelemetry;

/// How INFER executions share the GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One EXEC at a time per GPU — the Clockwork discipline.
    Exclusive,
    /// Up to `max_concurrent` EXECs share the GPU — the best-effort
    /// discipline of conventional serving systems (and of Fig. 2b).
    Concurrent {
        /// Maximum kernels in flight per GPU.
        max_concurrent: u32,
    },
}

/// Static configuration of a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// This worker's id.
    pub id: WorkerId,
    /// Number of GPUs this worker controls.
    pub num_gpus: u32,
    /// The GPU device model.
    pub gpu: GpuSpec,
    /// The host↔device link.
    pub pcie: PcieLink,
    /// Weights cache page size (16 MiB by default).
    pub page_size: u64,
    /// Bytes of device memory dedicated to the weights page cache, per GPU.
    pub weights_cache_bytes: u64,
    /// Bytes of device memory dedicated to IO staging, per GPU.
    pub io_cache_bytes: u64,
    /// Host memory available for registered model weights.
    pub host_memory_bytes: u64,
    /// EXEC sharing discipline.
    pub exec_mode: ExecMode,
    /// External interference profile (C3).
    pub variance: VarianceConfig,
    /// RNG seed for this worker's timing noise.
    pub seed: u64,
}

impl WorkerConfig {
    /// The paper's worker: one V100 GPU (32 GB), 768 GB host memory, 16 MiB
    /// pages, 512 MB workspace and 512 MB IO cache carved out of device
    /// memory, exclusive execution, near-quiet external variance.
    pub fn new(id: WorkerId) -> Self {
        let gpu = GpuSpec::tesla_v100();
        // 512 MB workspace + 512 MB IO cache reserved out of device memory.
        let weights_cache_bytes = gpu.device_memory - 1024 * 1024 * 1024;
        WorkerConfig {
            id,
            num_gpus: 1,
            gpu,
            pcie: PcieLink::v100_pcie3(),
            page_size: DEFAULT_PAGE_SIZE,
            weights_cache_bytes,
            io_cache_bytes: DEFAULT_IO_CACHE_BYTES,
            host_memory_bytes: 768 * 1024 * 1024 * 1024,
            exec_mode: ExecMode::Exclusive,
            variance: VarianceConfig::none(),
            seed: 0x5eed,
        }
    }

    /// Sets the number of GPUs.
    pub fn with_gpus(mut self, num_gpus: u32) -> Self {
        self.num_gpus = num_gpus;
        self
    }

    /// Sets the execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Sets the external variance profile.
    pub fn with_variance(mut self, variance: VarianceConfig) -> Self {
        self.variance = variance;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the weights cache capacity per GPU (useful for small tests).
    pub fn with_weights_cache(mut self, bytes: u64) -> Self {
        self.weights_cache_bytes = bytes;
        self
    }

    /// Total weight pages per GPU under this configuration.
    pub fn pages_per_gpu(&self) -> u64 {
        self.weights_cache_bytes / self.page_size
    }
}

/// Errors from worker management operations (not action execution).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerError {
    /// A model with this id is already registered.
    DuplicateModel(ModelId),
    /// Host memory cannot hold another model's weights.
    HostMemoryExhausted {
        /// Bytes the model needs.
        requested: u64,
        /// Bytes left in host memory.
        available: u64,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::DuplicateModel(m) => write!(f, "model {m} already registered"),
            WorkerError::HostMemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "host memory exhausted: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Per-GPU state.
struct GpuState {
    page_cache: PageCache,
    io_cache: IoCache,
    timing: GpuTimingModel,
    load_link: LinkScheduler,
    input_link: LinkScheduler,
    output_link: LinkScheduler,
    load_executor: Executor,
    infer_executor: Executor,
    in_flight_execs: u32,
    /// Whether the GPU is currently failed (unusable until recovery).
    failed: bool,
}

/// A completion scheduled inside the worker.
struct Completion {
    gpu_index: usize,
    result: ActionResult,
    io_release: u64,
    exec_finished: bool,
    /// Weights reference to drop when the completion fires (successful
    /// INFERs pin their model's pages for the duration of execution).
    unpin: Option<ModelId>,
}

/// A Clockwork worker.
pub struct Worker {
    config: WorkerConfig,
    models: HashMap<ModelId, Arc<ModelSpec>>,
    host_memory: MemoryPool,
    gpus: Vec<GpuState>,
    completions: EventQueue<Completion>,
    variance: ExternalVariance,
    telemetry: WorkerTelemetry,
    /// Whether the worker process is up (false between crash and restart).
    alive: bool,
    /// GPUs with at least one queued action. The poll loop and wake-up
    /// computation scan only this ready-set instead of every executor on
    /// every GPU per wake; a GPU drops out once both its executor queues
    /// drain.
    active_gpus: BTreeSet<u32>,
}

impl Worker {
    /// Creates a worker from its configuration.
    pub fn new(config: WorkerConfig) -> Self {
        let root = SimRng::seeded(config.seed ^ u64::from(config.id.0));
        let gpus = (0..config.num_gpus)
            .map(|g| GpuState {
                page_cache: PageCache::new(config.weights_cache_bytes, config.page_size),
                io_cache: IoCache::new(config.io_cache_bytes),
                timing: GpuTimingModel::new(config.gpu.clone(), root.derive(1000 + u64::from(g))),
                load_link: LinkScheduler::new(),
                input_link: LinkScheduler::new(),
                output_link: LinkScheduler::new(),
                load_executor: Executor::new(),
                infer_executor: Executor::new(),
                in_flight_execs: 0,
                failed: false,
            })
            .collect();
        let telemetry = WorkerTelemetry::new(config.num_gpus as usize);
        let variance = ExternalVariance::new(config.variance, root.derive(7));
        Worker {
            host_memory: MemoryPool::new(config.host_memory_bytes),
            models: HashMap::new(),
            gpus,
            completions: EventQueue::new(),
            variance,
            telemetry,
            alive: true,
            active_gpus: BTreeSet::new(),
            config,
        }
    }

    /// The worker's id.
    pub fn id(&self) -> WorkerId {
        self.config.id
    }

    /// The worker's configuration.
    pub fn config(&self) -> &WorkerConfig {
        &self.config
    }

    /// Worker telemetry (utilization, counters, measured durations).
    pub fn telemetry(&self) -> &WorkerTelemetry {
        &self.telemetry
    }

    /// Registers a model's weights in host memory (worker startup pre-loads
    /// every model from disk, §5.1).
    pub fn register_model(&mut self, id: ModelId, spec: Arc<ModelSpec>) -> Result<(), WorkerError> {
        if self.models.contains_key(&id) {
            return Err(WorkerError::DuplicateModel(id));
        }
        let bytes = spec.weights_bytes();
        self.host_memory
            .allocate(bytes)
            .map_err(|e| WorkerError::HostMemoryExhausted {
                requested: e.requested,
                available: e.available,
            })?;
        self.models.insert(id, spec);
        Ok(())
    }

    /// Whether a model is registered (present in host memory).
    pub fn has_model(&self, id: ModelId) -> bool {
        self.models.contains_key(&id)
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The spec of a registered model.
    pub fn model_spec(&self, id: ModelId) -> Option<&Arc<ModelSpec>> {
        self.models.get(&id)
    }

    /// Host memory still available for model registration.
    pub fn host_memory_available(&self) -> u64 {
        self.host_memory.available()
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> u32 {
        self.config.num_gpus
    }

    /// Free pages in a GPU's weights cache.
    ///
    /// Panics on an unknown GPU id: capacity queries for a GPU this worker
    /// does not have are controller routing bugs, and a silent `0` would let
    /// them masquerade as a full cache.
    pub fn free_pages(&self, gpu: GpuId) -> u64 {
        self.gpu(gpu)
            .unwrap_or_else(|| panic!("free_pages for unknown {gpu:?} on worker {:?}", self.id()))
            .page_cache
            .free_pages()
    }

    /// Total pages in a GPU's weights cache.
    ///
    /// Panics on an unknown GPU id, like [`Worker::free_pages`]: a `0` total
    /// would silently convince the scheduler this executor can hold nothing.
    pub fn total_pages(&self, gpu: GpuId) -> u64 {
        self.gpu(gpu)
            .unwrap_or_else(|| panic!("total_pages for unknown {gpu:?} on worker {:?}", self.id()))
            .page_cache
            .total_pages()
    }

    /// Pages held by resident models in a GPU's weights cache, recomputed
    /// from the residency table (see [`PageCache::held_pages`]) — together
    /// with [`Worker::free_pages`] this exposes the conservation invariant
    /// `free_pages + held_pages == total_pages` for cross-checking.
    ///
    /// Panics on an unknown GPU id, like [`Worker::free_pages`].
    pub fn held_pages(&self, gpu: GpuId) -> u64 {
        self.gpu(gpu)
            .unwrap_or_else(|| panic!("held_pages for unknown {gpu:?} on worker {:?}", self.id()))
            .page_cache
            .held_pages()
    }

    /// In-flight weight references pinning a model on a GPU (0 when absent).
    pub fn weights_refs(&self, gpu: GpuId, model: ModelId) -> u32 {
        self.gpu(gpu)
            .map(|g| g.page_cache.ref_count(model))
            .unwrap_or(0)
    }

    /// Whether a model's weights are resident on a GPU.
    pub fn is_loaded(&self, gpu: GpuId, model: ModelId) -> bool {
        self.gpu(gpu)
            .map(|g| g.page_cache.contains(model))
            .unwrap_or(false)
    }

    /// The models resident on a GPU.
    pub fn resident_models(&self, gpu: GpuId) -> Vec<ModelId> {
        self.gpu(gpu)
            .map(|g| g.page_cache.resident_models())
            .unwrap_or_default()
    }

    /// GPU utilization of a GPU so far (fraction of `[0, now]` busy).
    pub fn gpu_utilization(&self, gpu: GpuId, now: Timestamp) -> f64 {
        self.gpu(gpu)
            .map(|g| g.timing.utilization(now))
            .unwrap_or(0.0)
    }

    /// PCIe (weights link) utilization of a GPU so far.
    pub fn pcie_utilization(&self, gpu: GpuId, now: Timestamp) -> f64 {
        self.gpu(gpu)
            .map(|g| g.load_link.utilization(now))
            .unwrap_or(0.0)
    }

    fn gpu(&self, gpu: GpuId) -> Option<&GpuState> {
        self.gpus.get(gpu.0 as usize)
    }

    /// Whether the worker process is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Whether a GPU is currently failed.
    pub fn gpu_failed(&self, gpu: GpuId) -> bool {
        self.gpu(gpu).map(|g| g.failed).unwrap_or(true)
    }

    /// Number of usable GPUs right now (0 while the worker is down).
    pub fn alive_gpus(&self) -> u32 {
        if !self.alive {
            return 0;
        }
        self.gpus.iter().filter(|g| !g.failed).count() as u32
    }

    /// Resets one GPU to its power-on state: empty caches, idle executors,
    /// fresh link schedules. The timing model (and its RNG stream) is kept so
    /// a fault does not replay past execution noise.
    fn reset_gpu(config: &WorkerConfig, gpu: &mut GpuState) {
        gpu.page_cache = PageCache::new(config.weights_cache_bytes, config.page_size);
        gpu.io_cache = IoCache::new(config.io_cache_bytes);
        gpu.load_link = LinkScheduler::new();
        gpu.input_link = LinkScheduler::new();
        gpu.output_link = LinkScheduler::new();
        gpu.load_executor = Executor::new();
        gpu.infer_executor = Executor::new();
        gpu.in_flight_execs = 0;
    }

    /// Simulates a worker process crash at `now`: every queued and in-flight
    /// action is lost without a result, and every GPU's caches are flushed,
    /// so the worker is cold when it [`Worker::restart`]s. Registered models
    /// stay in host memory — workers pre-load weights from disk at startup
    /// (§5.1), and the restart models that reload as complete by the time the
    /// worker rejoins the fleet. The controller observes the same fault event
    /// and must resolve the actions it will now never hear back about.
    pub fn crash(&mut self, now: Timestamp) {
        self.alive = false;
        self.telemetry.counters.crashes += 1;
        self.completions = EventQueue::new();
        self.active_gpus.clear();
        for gpu in &mut self.gpus {
            Self::reset_gpu(&self.config, gpu);
        }
        let _ = now;
    }

    /// Brings a crashed worker back up with cold caches. A restart replaces
    /// the whole machine, so it supersedes any per-GPU failure whose window
    /// overlaps the downtime: every GPU comes back usable (and cold) — the
    /// same view the controller takes when it re-admits the worker.
    pub fn restart(&mut self, now: Timestamp) {
        self.alive = true;
        for gpu in &mut self.gpus {
            gpu.failed = false;
        }
        let _ = now;
    }

    /// Fails one GPU: its queued and in-flight actions are lost and its
    /// caches flushed. The GPU drops all work until [`Worker::recover_gpu`].
    pub fn fail_gpu(&mut self, gpu: GpuId) {
        let gi = gpu.0 as usize;
        let Some(state) = self.gpus.get_mut(gi) else {
            return;
        };
        state.failed = true;
        Self::reset_gpu(&self.config, state);
        self.telemetry.counters.gpu_failures += 1;
        self.active_gpus.remove(&gpu.0);
        // Drop the failed GPU's pending completions; the relative order of
        // the survivors is preserved (they re-enter in pop order, and the
        // queue tie-breaks by insertion).
        let mut kept = Vec::new();
        while let Some((t, completion)) = self.completions.pop() {
            if completion.gpu_index != gi {
                kept.push((t, completion));
            }
        }
        for (t, completion) in kept {
            self.completions.push(t, completion);
        }
    }

    /// Recovers a failed GPU with an empty (cold) weights cache.
    pub fn recover_gpu(&mut self, gpu: GpuId) {
        if let Some(state) = self.gpus.get_mut(gpu.0 as usize) {
            state.failed = false;
        }
    }

    /// Submits an action, received at `now`. A dead worker (or a failed GPU)
    /// drops the action silently — it cannot acknowledge anything, and the
    /// controller resolves the action when it processes the fault.
    pub fn submit(&mut self, now: Timestamp, action: Action) {
        let gpu_index = (action.gpu.0 as usize).min(self.gpus.len().saturating_sub(1));
        if !self.alive || self.gpus[gpu_index].failed {
            self.telemetry.counters.dropped_actions += 1;
            return;
        }
        let gpu = &mut self.gpus[gpu_index];
        match &action.kind {
            ActionKind::Load { .. } | ActionKind::Unload { .. } => {
                gpu.load_executor.push(action, now);
            }
            ActionKind::Infer { .. } => {
                gpu.infer_executor.push(action, now);
            }
        }
        self.active_gpus.insert(gpu_index as u32);
    }

    /// The next virtual time at which this worker has something to do.
    ///
    /// This must agree with [`Worker::poll`] about when progress is possible:
    /// an INFER executor whose GPU is already at its concurrency limit cannot
    /// start anything until a completion fires, so its queued work does not
    /// contribute a wake-up time (the pending completion does). Reporting it
    /// anyway would make the driving event loop spin at the current instant
    /// without ever advancing virtual time.
    ///
    /// The driving event loop schedules exactly one wake per worker at this
    /// time (superseding any previously queued wake), so the answer must be
    /// tight: failed GPUs and GPUs whose executor queues have drained are
    /// pruned from the ready-set here rather than waiting for the next poll,
    /// and contribute no wake at all.
    pub fn next_wakeup(&mut self) -> Option<Timestamp> {
        if !self.alive {
            return None;
        }
        let mut best = self.completions.peek_time();
        let gpus = &self.gpus;
        self.active_gpus.retain(|&gi| {
            let gpu = &gpus[gi as usize];
            !(gpu.failed || gpu.load_executor.is_empty() && gpu.infer_executor.is_empty())
        });
        for &gi in &self.active_gpus {
            let gpu = &self.gpus[gi as usize];
            let infer_blocked = match self.config.exec_mode {
                ExecMode::Exclusive => false,
                ExecMode::Concurrent { max_concurrent } => gpu.in_flight_execs >= max_concurrent,
            };
            let mut consider = |t: Option<Timestamp>| {
                if let Some(t) = t {
                    best = Some(match best {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            };
            consider(gpu.load_executor.next_start_time());
            if !infer_blocked {
                consider(gpu.infer_executor.next_start_time());
            }
        }
        best
    }

    /// Advances the worker through all internal events up to and including
    /// `now`, returning the action results produced.
    pub fn poll(&mut self, now: Timestamp) -> Vec<ActionResult> {
        let mut results = Vec::new();
        self.poll_into(now, &mut results);
        results
    }

    /// Like [`Worker::poll`], but appends the results to a caller-provided
    /// buffer. The driving event loop wakes workers once per simulation
    /// event at fleet scale; reusing one buffer across wakes keeps the
    /// steady-state poll allocation-free, and the ready-set of GPUs with
    /// queued work keeps each scan proportional to the GPUs that can actually
    /// make progress rather than to every executor on the worker.
    ///
    /// Returns the number of progress steps taken (actions started plus
    /// completions finished). A zero return means the poll found nothing
    /// actionable — the event loop counts such wakes to keep the no-op-wake
    /// ratio visible in telemetry.
    pub fn poll_into(&mut self, now: Timestamp, results: &mut Vec<ActionResult>) -> u64 {
        if !self.alive {
            return 0;
        }
        let mut steps = 0u64;
        loop {
            // Completions due?
            let completion_time = self.completions.peek_time().filter(|&t| t <= now);
            // Action starts due? Only GPUs in the ready-set can have any;
            // ascending index order preserves the strict-minimum tie-break
            // the full scan had (lowest GPU index wins, LOAD before INFER).
            let mut start: Option<(Timestamp, usize, bool)> = None; // (time, gpu, is_load_executor)
            let mut drained = false;
            for &gi_u in &self.active_gpus {
                let gi = gi_u as usize;
                let gpu = &self.gpus[gi];
                if gpu.load_executor.is_empty() && gpu.infer_executor.is_empty() {
                    drained = true;
                    continue;
                }
                if let Some(t) = gpu.load_executor.next_start_time() {
                    if t <= now && start.map(|(bt, _, _)| t < bt).unwrap_or(true) {
                        start = Some((t, gi, true));
                    }
                }
                let infer_blocked = match self.config.exec_mode {
                    ExecMode::Exclusive => false,
                    ExecMode::Concurrent { max_concurrent } => {
                        gpu.in_flight_execs >= max_concurrent
                    }
                };
                if !infer_blocked {
                    if let Some(t) = gpu.infer_executor.next_start_time() {
                        if t <= now && start.map(|(bt, _, _)| t < bt).unwrap_or(true) {
                            start = Some((t, gi, false));
                        }
                    }
                }
            }
            if drained {
                let gpus = &self.gpus;
                self.active_gpus.retain(|&gi| {
                    let gpu = &gpus[gi as usize];
                    !(gpu.load_executor.is_empty() && gpu.infer_executor.is_empty())
                });
            }

            match (completion_time, start) {
                (None, None) => break,
                (Some(ct), Some((st, _, _))) if ct <= st => self.finish_completion(results),
                (Some(_), None) => self.finish_completion(results),
                (_, Some((st, gi, is_load))) => self.start_next_action(st, gi, is_load),
            }
            steps += 1;
        }
        steps
    }

    fn finish_completion(&mut self, results: &mut Vec<ActionResult>) {
        let Some((_, completion)) = self.completions.pop() else {
            return;
        };
        let gpu = &mut self.gpus[completion.gpu_index];
        if completion.io_release > 0 {
            gpu.io_cache.release(completion.io_release);
        }
        if completion.exec_finished && gpu.in_flight_execs > 0 {
            gpu.in_flight_execs -= 1;
        }
        if let Some(model) = completion.unpin {
            gpu.page_cache.unpin(model);
        }
        results.push(completion.result);
    }

    fn start_next_action(&mut self, start: Timestamp, gpu_index: usize, is_load_executor: bool) {
        let queued = {
            let gpu = &mut self.gpus[gpu_index];
            let ex = if is_load_executor {
                &mut gpu.load_executor
            } else {
                &mut gpu.infer_executor
            };
            ex.pop_ready(start)
        };
        let Some(queued) = queued else { return };
        let action = queued.action;
        let received = queued.received;
        match action.kind.clone() {
            ActionKind::Load { model } => self.run_load(gpu_index, action, received, start, model),
            ActionKind::Unload { model } => {
                self.run_unload(gpu_index, action, received, start, model)
            }
            ActionKind::Infer {
                model,
                batch,
                request_ids,
            } => self.run_infer(
                gpu_index,
                action,
                received,
                start,
                model,
                batch,
                request_ids,
            ),
        }
    }

    fn make_result(
        &self,
        action: &Action,
        model: ModelId,
        batch: u32,
        request_ids: Vec<u64>,
        outcome: ActionOutcome,
    ) -> ActionResult {
        ActionResult {
            action_id: action.id,
            worker: self.config.id,
            gpu: action.gpu,
            model,
            action_type: action.kind.type_name(),
            batch,
            request_ids,
            expected_duration: action.expected_duration,
            outcome,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        gpu_index: usize,
        action: &Action,
        model: ModelId,
        batch: u32,
        request_ids: Vec<u64>,
        at: Timestamp,
        error: ActionError,
    ) {
        if error == ActionError::WindowElapsed {
            self.telemetry.counters.window_rejections += 1;
        } else {
            self.telemetry.counters.failures += 1;
        }
        let result = self.make_result(
            action,
            model,
            batch,
            request_ids,
            ActionOutcome::Error { error, at },
        );
        self.completions.push(
            at,
            Completion {
                gpu_index,
                result,
                io_release: 0,
                exec_finished: false,
                unpin: None,
            },
        );
    }

    fn run_load(
        &mut self,
        gpu_index: usize,
        action: Action,
        received: Timestamp,
        start: Timestamp,
        model: ModelId,
    ) {
        if action.window.expired(start) {
            return self.fail(
                gpu_index,
                &action,
                model,
                1,
                vec![],
                start,
                ActionError::WindowElapsed,
            );
        }
        let Some(spec) = self.models.get(&model).cloned() else {
            return self.fail(
                gpu_index,
                &action,
                model,
                1,
                vec![],
                start,
                ActionError::UnknownModel,
            );
        };
        let weights_bytes = spec.weights_bytes();
        let already_loaded = self.gpus[gpu_index].page_cache.contains(model);
        if !already_loaded {
            let alloc = self.gpus[gpu_index]
                .page_cache
                .allocate(model, weights_bytes, start);
            if let Err(e) = alloc {
                return self.fail(
                    gpu_index,
                    &action,
                    model,
                    1,
                    vec![],
                    start,
                    ActionError::InsufficientPages {
                        needed: e.needed,
                        available: e.available,
                    },
                );
            }
        }
        // Copy weights over PCIe (a no-op copy if already resident).
        let base = if already_loaded {
            Nanos::from_micros(10)
        } else {
            self.config.pcie.transfer_duration(weights_bytes)
        };
        let duration = self.variance.perturb(start, base);
        let gpu = &mut self.gpus[gpu_index];
        let (t_start, t_end) = gpu.load_link.schedule(start, duration, weights_bytes);
        gpu.load_executor.occupy_until(t_end);
        self.telemetry
            .record_load(gpu_index, t_start, t_end, duration);
        self.telemetry.counters.loads_completed += 1;
        let timing = ActionTiming {
            received,
            start: t_start,
            end: t_end,
            device_duration: duration,
        };
        let result = self.make_result(&action, model, 1, vec![], ActionOutcome::Success(timing));
        self.completions.push(
            t_end,
            Completion {
                gpu_index,
                result,
                io_release: 0,
                exec_finished: false,
                unpin: None,
            },
        );
    }

    fn run_unload(
        &mut self,
        gpu_index: usize,
        action: Action,
        received: Timestamp,
        start: Timestamp,
        model: ModelId,
    ) {
        // UNLOAD only updates metadata and always succeeds (§5.2).
        let gpu = &mut self.gpus[gpu_index];
        let _freed = gpu.page_cache.release(model);
        let duration = Nanos::from_micros(5);
        let end = start + duration;
        gpu.load_executor.occupy_until(end);
        self.telemetry.counters.unloads_completed += 1;
        let timing = ActionTiming {
            received,
            start,
            end,
            device_duration: duration,
        };
        let result = self.make_result(&action, model, 1, vec![], ActionOutcome::Success(timing));
        self.completions.push(
            end,
            Completion {
                gpu_index,
                result,
                io_release: 0,
                exec_finished: false,
                unpin: None,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn run_infer(
        &mut self,
        gpu_index: usize,
        action: Action,
        received: Timestamp,
        start: Timestamp,
        model: ModelId,
        batch: u32,
        request_ids: Vec<u64>,
    ) {
        if action.window.expired(start) {
            return self.fail(
                gpu_index,
                &action,
                model,
                batch,
                request_ids,
                start,
                ActionError::WindowElapsed,
            );
        }
        let Some(spec) = self.models.get(&model).cloned() else {
            return self.fail(
                gpu_index,
                &action,
                model,
                batch,
                request_ids,
                start,
                ActionError::UnknownModel,
            );
        };
        let Some(base_exec) = spec.exec_latency(batch) else {
            return self.fail(
                gpu_index,
                &action,
                model,
                batch,
                request_ids,
                start,
                ActionError::UnsupportedBatch { batch },
            );
        };
        if !self.gpus[gpu_index].page_cache.contains(model) {
            return self.fail(
                gpu_index,
                &action,
                model,
                batch,
                request_ids,
                start,
                ActionError::ModelNotLoaded,
            );
        }
        let io_bytes = (spec.input_bytes() + spec.output_bytes()) * u64::from(batch);
        if self.gpus[gpu_index].io_cache.acquire(io_bytes).is_err() {
            return self.fail(
                gpu_index,
                &action,
                model,
                batch,
                request_ids,
                start,
                ActionError::IoCacheFull,
            );
        }

        // INPUT: copy inputs host -> device on the input stream.
        let input_bytes = spec.input_bytes() * u64::from(batch);
        let input_duration = self.config.pcie.transfer_duration(input_bytes);
        let (_, input_done) =
            self.gpus[gpu_index]
                .input_link
                .schedule(start, input_duration, input_bytes);

        // EXEC: run the kernel, one at a time (or concurrently for baselines).
        let concurrency = self.gpus[gpu_index].in_flight_execs + 1;
        let exec_base = match self.config.exec_mode {
            ExecMode::Exclusive => self.gpus[gpu_index].timing.exec_duration(base_exec),
            ExecMode::Concurrent { .. } => self.gpus[gpu_index]
                .timing
                .exec_duration_concurrent(base_exec, concurrency),
        };
        let exec_duration = self.variance.perturb(start, exec_base);
        let exec_start = input_done;
        let exec_end = exec_start + exec_duration;
        {
            let gpu = &mut self.gpus[gpu_index];
            gpu.timing.occupy(exec_start, exec_duration);
            gpu.in_flight_execs += 1;
            if matches!(self.config.exec_mode, ExecMode::Exclusive) {
                gpu.infer_executor.occupy_until(exec_end);
            }
            gpu.page_cache.touch(model, exec_end);
            // Hold the weights for the in-flight execution: an UNLOAD
            // arriving before the completion fires must not free (or
            // double-account) the pages under the running kernel.
            gpu.page_cache.pin(model);
        }
        self.telemetry
            .record_exec(gpu_index, exec_start, exec_end, exec_duration);

        // OUTPUT: copy outputs device -> host on the output stream.
        let output_bytes = spec.output_bytes() * u64::from(batch);
        let output_duration = self.config.pcie.transfer_duration(output_bytes);
        let (_, output_done) =
            self.gpus[gpu_index]
                .output_link
                .schedule(exec_end, output_duration, output_bytes);

        self.telemetry
            .record_infer_completion(model, batch, &request_ids, output_done);

        let timing = ActionTiming {
            received,
            start,
            end: output_done,
            device_duration: exec_duration,
        };
        let result = self.make_result(
            &action,
            model,
            batch,
            request_ids,
            ActionOutcome::Success(timing),
        );
        self.completions.push(
            output_done,
            Completion {
                gpu_index,
                result,
                io_release: io_bytes,
                exec_finished: true,
                unpin: Some(model),
            },
        );
    }
}

/// Convenience constructor for actions, used by the controller and tests.
pub fn make_action(
    id: u64,
    gpu: GpuId,
    kind: ActionKind,
    window: TimeWindow,
    expected_duration: Nanos,
) -> Action {
    Action {
        id: crate::action::ActionId(id),
        gpu,
        kind,
        window,
        expected_duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_sim::gpu::ExecNoise;

    fn quiet_config() -> WorkerConfig {
        let mut cfg = WorkerConfig::new(WorkerId(0));
        cfg.gpu.exec_noise = ExecNoise::none();
        cfg
    }

    fn resnet() -> Arc<ModelSpec> {
        Arc::new(ModelZoo::new().resnet50().clone())
    }

    fn load_action(id: u64, model: ModelId) -> Action {
        make_action(
            id,
            GpuId(0),
            ActionKind::Load { model },
            TimeWindow::always(),
            Nanos::from_millis(8),
        )
    }

    fn infer_action(id: u64, model: ModelId, batch: u32, reqs: Vec<u64>) -> Action {
        make_action(
            id,
            GpuId(0),
            ActionKind::Infer {
                model,
                batch,
                request_ids: reqs,
            },
            TimeWindow::always(),
            Nanos::from_millis(3),
        )
    }

    fn unload_action(id: u64, model: ModelId) -> Action {
        make_action(
            id,
            GpuId(0),
            ActionKind::Unload { model },
            TimeWindow::always(),
            Nanos::from_micros(5),
        )
    }

    fn drain(worker: &mut Worker, until: Timestamp) -> Vec<ActionResult> {
        worker.poll(until)
    }

    fn assert_pages_conserve(w: &Worker, context: &str) {
        assert_eq!(
            w.free_pages(GpuId(0)) + w.held_pages(GpuId(0)),
            w.total_pages(GpuId(0)),
            "page accounting drifted: {context}"
        );
    }

    #[test]
    fn unload_cannot_free_weights_under_an_executing_infer() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(15));
        assert!(w.is_loaded(GpuId(0), ModelId(1)));
        assert_pages_conserve(&w, "after load");

        // The INFER starts executing at t=20 ms (pinning the weights); the
        // UNLOAD lands on the load executor at t=21 ms, mid-execution.
        w.submit(
            Timestamp::from_millis(20),
            infer_action(2, ModelId(1), 1, vec![7]),
        );
        w.submit(Timestamp::from_millis(21), unload_action(3, ModelId(1)));
        let mid = drain(&mut w, Timestamp::from_millis(21));
        assert!(mid.iter().all(|r| r.is_success()));
        assert_eq!(w.weights_refs(GpuId(0), ModelId(1)), 1, "INFER holds a ref");
        assert!(
            w.is_loaded(GpuId(0), ModelId(1)),
            "pinned weights survive the UNLOAD"
        );
        assert_pages_conserve(&w, "after refused unload");

        // Once the INFER completes the reference drops; pages stay accounted
        // exactly once throughout.
        let done = drain(&mut w, Timestamp::from_millis(100));
        assert!(done
            .iter()
            .any(|r| r.request_ids == vec![7] && r.is_success()));
        assert_eq!(w.weights_refs(GpuId(0), ModelId(1)), 0);
        assert_pages_conserve(&w, "after completion");
    }

    #[test]
    fn page_accounting_survives_crash_and_restart() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.register_model(ModelId(2), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        w.submit(Timestamp::ZERO, load_action(2, ModelId(2)));
        drain(&mut w, Timestamp::from_millis(25));
        w.submit(
            Timestamp::from_millis(30),
            infer_action(3, ModelId(1), 1, vec![1]),
        );
        drain(&mut w, Timestamp::from_millis(31)); // start executing, hold the pin
        assert_eq!(w.weights_refs(GpuId(0), ModelId(1)), 1);
        assert_pages_conserve(&w, "pre-crash with a pinned model");

        // Crash mid-execution: caches reset wholesale, references included —
        // no page (and no refcount) leaks into the cold cache.
        w.crash(Timestamp::from_millis(32));
        assert_eq!(w.held_pages(GpuId(0)), 0);
        assert_eq!(w.free_pages(GpuId(0)), w.total_pages(GpuId(0)));
        assert_eq!(w.weights_refs(GpuId(0), ModelId(1)), 0);
        assert_pages_conserve(&w, "after crash");

        // The restarted worker is cold but fully functional: reload and
        // serve, with the conservation identity intact at every step.
        w.restart(Timestamp::from_millis(40));
        w.submit(Timestamp::from_millis(41), load_action(4, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(60));
        assert_pages_conserve(&w, "after reload");
        w.submit(
            Timestamp::from_millis(61),
            infer_action(5, ModelId(1), 1, vec![2]),
        );
        let done = drain(&mut w, Timestamp::from_millis(100));
        assert!(done
            .iter()
            .any(|r| r.request_ids == vec![2] && r.is_success()));
        assert_eq!(w.weights_refs(GpuId(0), ModelId(1)), 0);
        assert_pages_conserve(&w, "after restart round trip");
    }

    #[test]
    fn register_and_query_models() {
        let mut w = Worker::new(quiet_config());
        assert_eq!(w.model_count(), 0);
        w.register_model(ModelId(1), resnet()).unwrap();
        assert!(w.has_model(ModelId(1)));
        assert!(w.model_spec(ModelId(1)).is_some());
        assert_eq!(
            w.register_model(ModelId(1), resnet()),
            Err(WorkerError::DuplicateModel(ModelId(1)))
        );
        assert!(w.host_memory_available() < w.config().host_memory_bytes);
    }

    #[test]
    #[should_panic(expected = "free_pages for unknown")]
    fn free_pages_panics_on_unknown_gpu() {
        let w = Worker::new(quiet_config());
        let _ = w.free_pages(GpuId(99));
    }

    #[test]
    #[should_panic(expected = "total_pages for unknown")]
    fn total_pages_panics_on_unknown_gpu() {
        let w = Worker::new(quiet_config());
        let _ = w.total_pages(GpuId(99));
    }

    #[test]
    fn host_memory_limits_registration() {
        let mut cfg = quiet_config();
        cfg.host_memory_bytes = 200 * 1024 * 1024; // fits one ResNet50, not two
        let mut w = Worker::new(cfg);
        w.register_model(ModelId(1), resnet()).unwrap();
        let err = w.register_model(ModelId(2), resnet()).unwrap_err();
        assert!(matches!(err, WorkerError::HostMemoryExhausted { .. }));
    }

    #[test]
    fn load_then_infer_round_trip() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        let t0 = Timestamp::from_millis(1);
        w.submit(t0, load_action(1, ModelId(1)));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 1);
        assert!(results[0].is_success(), "{:?}", results[0]);
        let load_timing = results[0].outcome.timing().unwrap();
        // Appendix A: ResNet50 weights transfer ≈ 8.33 ms.
        let ms = load_timing.device_duration.as_millis_f64();
        assert!((ms - 8.33).abs() < 0.3, "load took {ms} ms");
        assert!(w.is_loaded(GpuId(0), ModelId(1)));

        let t1 = Timestamp::from_millis(20);
        w.submit(t1, infer_action(2, ModelId(1), 1, vec![77]));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.is_success());
        assert_eq!(r.request_ids, vec![77]);
        let timing = r.outcome.timing().unwrap();
        // Batch-1 ResNet50 EXEC ≈ 2.61 ms plus small IO transfers.
        let total = timing.total().as_millis_f64();
        assert!(total > 2.5 && total < 3.2, "inference took {total} ms");
    }

    #[test]
    fn infer_without_load_fails_model_not_loaded() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, infer_action(1, ModelId(1), 1, vec![1]));
        let results = drain(&mut w, Timestamp::from_millis(10));
        assert_eq!(results.len(), 1);
        match &results[0].outcome {
            ActionOutcome::Error { error, .. } => assert_eq!(*error, ActionError::ModelNotLoaded),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_model_and_unsupported_batch_fail() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(99)));
        w.submit(Timestamp::ZERO, load_action(2, ModelId(1)));
        w.submit(Timestamp::ZERO, infer_action(3, ModelId(1), 3, vec![1]));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 3);
        let by_id = |id: u64| {
            results
                .iter()
                .find(|r| r.action_id.0 == id)
                .unwrap()
                .clone()
        };
        assert!(matches!(
            by_id(1).outcome,
            ActionOutcome::Error {
                error: ActionError::UnknownModel,
                ..
            }
        ));
        assert!(by_id(2).is_success());
        assert!(matches!(
            by_id(3).outcome,
            ActionOutcome::Error {
                error: ActionError::UnsupportedBatch { batch: 3 },
                ..
            }
        ));
    }

    #[test]
    fn actions_outside_window_are_rejected() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        // Window already closed when the worker gets to it.
        let mut a = load_action(1, ModelId(1));
        a.window = TimeWindow {
            earliest: Timestamp::from_millis(1),
            latest: Timestamp::from_millis(2),
        };
        w.submit(Timestamp::from_millis(5), a);
        let results = drain(&mut w, Timestamp::from_millis(10));
        assert_eq!(results.len(), 1);
        assert!(matches!(
            results[0].outcome,
            ActionOutcome::Error {
                error: ActionError::WindowElapsed,
                ..
            }
        ));
        assert!(!w.is_loaded(GpuId(0), ModelId(1)));
        assert_eq!(w.telemetry().counters.window_rejections, 1);
    }

    #[test]
    fn actions_wait_for_earliest() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        let mut a = load_action(1, ModelId(1));
        a.window = TimeWindow::starting_at(Timestamp::from_millis(50), Nanos::from_millis(10));
        w.submit(Timestamp::ZERO, a);
        assert!(drain(&mut w, Timestamp::from_millis(40)).is_empty());
        assert_eq!(w.next_wakeup(), Some(Timestamp::from_millis(50)));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 1);
        let timing = results[0].outcome.timing().unwrap();
        assert_eq!(timing.start, Timestamp::from_millis(50));
    }

    #[test]
    fn load_fails_when_pages_exhausted() {
        let mut cfg = quiet_config();
        cfg.weights_cache_bytes = 8 * DEFAULT_PAGE_SIZE; // 8 pages = 1 ResNet50
        let mut w = Worker::new(cfg);
        w.register_model(ModelId(1), resnet()).unwrap();
        w.register_model(ModelId(2), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        w.submit(Timestamp::ZERO, load_action(2, ModelId(2)));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 2);
        assert!(results[0].is_success());
        assert!(matches!(
            results[1].outcome,
            ActionOutcome::Error {
                error: ActionError::InsufficientPages { .. },
                ..
            }
        ));
    }

    #[test]
    fn unload_frees_pages_and_always_succeeds() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(50));
        let free_before = w.free_pages(GpuId(0));
        let unload = make_action(
            2,
            GpuId(0),
            ActionKind::Unload { model: ModelId(1) },
            TimeWindow::always(),
            Nanos::from_micros(5),
        );
        w.submit(Timestamp::from_millis(60), unload);
        let results = drain(&mut w, Timestamp::from_millis(70));
        assert!(results[0].is_success());
        assert!(!w.is_loaded(GpuId(0), ModelId(1)));
        assert!(w.free_pages(GpuId(0)) > free_before);
        // Unloading a model that is not resident also succeeds.
        let unload2 = make_action(
            3,
            GpuId(0),
            ActionKind::Unload { model: ModelId(9) },
            TimeWindow::always(),
            Nanos::from_micros(5),
        );
        w.submit(Timestamp::from_millis(80), unload2);
        assert!(drain(&mut w, Timestamp::from_millis(90))[0].is_success());
    }

    #[test]
    fn exclusive_mode_serialises_execs() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(50));
        // Submit 4 batch-1 INFERs at the same instant.
        for i in 0..4 {
            w.submit(
                Timestamp::from_millis(50),
                infer_action(10 + i, ModelId(1), 1, vec![i]),
            );
        }
        let results = drain(&mut w, Timestamp::from_secs(1));
        assert_eq!(results.len(), 4);
        let mut exec_windows: Vec<(Timestamp, Timestamp)> = results
            .iter()
            .map(|r| {
                let t = r.outcome.timing().unwrap();
                (t.start, t.end)
            })
            .collect();
        exec_windows.sort();
        // Each inference takes ~2.6 ms; completions should be spaced by at
        // least the exec duration (serialised), not overlapping.
        for pair in exec_windows.windows(2) {
            let gap = pair[1].1.since(pair[0].1);
            assert!(gap >= Nanos::from_millis(2), "completions too close: {gap}");
        }
    }

    #[test]
    fn concurrent_mode_inflates_latency_variance() {
        let mut exclusive_cfg = WorkerConfig::new(WorkerId(0));
        exclusive_cfg.variance = VarianceConfig::none();
        let mut concurrent_cfg = exclusive_cfg
            .clone()
            .with_exec_mode(ExecMode::Concurrent { max_concurrent: 16 });
        concurrent_cfg.seed = 77;

        let run = |cfg: WorkerConfig| -> Vec<f64> {
            let mut w = Worker::new(cfg);
            w.register_model(ModelId(1), resnet()).unwrap();
            w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
            w.poll(Timestamp::from_millis(50));
            let mut latencies = Vec::new();
            // 20 rounds of 16 concurrent requests.
            for round in 0..20u64 {
                let t = Timestamp::from_millis(100 + round * 100);
                for i in 0..16u64 {
                    w.submit(
                        t,
                        infer_action(100 + round * 16 + i, ModelId(1), 1, vec![i]),
                    );
                }
                for r in w.poll(Timestamp::from_millis(100 + round * 100 + 99)) {
                    if let Some(timing) = r.outcome.timing() {
                        latencies.push(timing.total().as_millis_f64());
                    }
                }
            }
            latencies
        };
        let excl = run(exclusive_cfg);
        let conc = run(concurrent_cfg);
        assert!(!excl.is_empty() && !conc.is_empty());
        let spread = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[(s.len() as f64 * 0.95) as usize] - s[s.len() / 2]
        };
        assert!(
            spread(&conc) > 3.0 * spread(&excl),
            "concurrent spread {} vs exclusive {}",
            spread(&conc),
            spread(&excl)
        );
    }

    #[test]
    fn back_to_back_infers_batch_throughput_matches_profile() {
        // Saturating a worker with batch-8 requests should give roughly
        // batch/latency throughput (Fig. 6a reaches ~1000 r/s with batching).
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(50));
        let horizon = Timestamp::from_secs(2);
        let mut submitted = 0u64;
        for i in 0..200u64 {
            w.submit(
                Timestamp::from_millis(50),
                infer_action(100 + i, ModelId(1), 8, (0..8).map(|k| i * 8 + k).collect()),
            );
            submitted += 8;
        }
        let results = drain(&mut w, horizon);
        let served: u64 = results
            .iter()
            .filter(|r| r.is_success())
            .map(|r| r.request_ids.len() as u64)
            .sum();
        assert!(served <= submitted);
        // Batch-8 latency is 9.13 ms -> ~876 r/s; in 1.95 s of serving time
        // expect roughly 1700 requests.
        assert!(served > 1_400, "served {served}");
        let util = w.gpu_utilization(GpuId(0), horizon);
        assert!(util > 0.8, "GPU utilization {util}");
    }

    #[test]
    fn telemetry_counts_match_results() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        w.submit(Timestamp::ZERO, infer_action(2, ModelId(1), 1, vec![1]));
        w.submit(Timestamp::ZERO, infer_action(3, ModelId(1), 1, vec![2]));
        let results = drain(&mut w, Timestamp::from_secs(1));
        assert_eq!(results.len(), 3);
        let counters = &w.telemetry().counters;
        assert_eq!(counters.loads_completed, 1);
        assert_eq!(counters.infers_completed, 2);
        assert_eq!(counters.requests_served, 2);
        assert_eq!(counters.batched_infers, 0, "two singleton INFERs");
    }

    #[test]
    fn batched_infer_records_one_member_completion_per_request() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        w.submit(
            Timestamp::ZERO,
            infer_action(2, ModelId(1), 4, vec![10, 11, 12, 13]),
        );
        w.submit(Timestamp::ZERO, infer_action(3, ModelId(1), 1, vec![14]));
        let results = drain(&mut w, Timestamp::from_secs(1));
        let telemetry = w.telemetry();
        // Exactly-once accounting stays per-request: the batch-4 action is
        // one INFER but four served requests, each with its own record
        // carrying the batch it rode in and the action's completion time.
        assert_eq!(telemetry.counters.infers_completed, 2);
        assert_eq!(telemetry.counters.batched_infers, 1);
        assert_eq!(telemetry.counters.requests_served, 5);
        let members: Vec<_> = telemetry.member_log().collect();
        assert_eq!(members.len() as u64, telemetry.counters.requests_served);
        assert_eq!(
            members.iter().map(|m| m.request_id).collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14]
        );
        assert!(members[..4].iter().all(|m| m.batch == 4));
        assert_eq!(members[4].batch, 1);
        // Every member of one batch shares the action's completion instant,
        // and it matches the ActionResult the controller sees.
        let batch_result = results
            .iter()
            .find(|r| r.request_ids.len() == 4)
            .expect("batch result present");
        let end = match &batch_result.outcome {
            ActionOutcome::Success(t) => t.end,
            other => panic!("expected success, got {other:?}"),
        };
        assert!(members[..4].iter().all(|m| m.completed == end));
        // Occupancy summary saw both batch sizes.
        assert_eq!(telemetry.batch_occupancy.count(), 2);
        assert_eq!(telemetry.batch_occupancy.max(), 4.0);
    }

    #[test]
    fn next_wakeup_tracks_pending_work() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        assert_eq!(w.next_wakeup(), None);
        w.submit(Timestamp::from_millis(5), load_action(1, ModelId(1)));
        assert_eq!(w.next_wakeup(), Some(Timestamp::from_millis(5)));
        let _ = w.poll(Timestamp::from_millis(5));
        // A completion is now pending at ~13.3 ms.
        let wake = w.next_wakeup().unwrap();
        assert!(wake > Timestamp::from_millis(12) && wake < Timestamp::from_millis(15));
    }

    #[test]
    fn next_wakeup_ignores_infers_blocked_by_the_concurrency_limit() {
        // Regression test: with concurrent execution and the GPU at its
        // in-flight limit, queued INFERs cannot start until a completion
        // fires. `next_wakeup` must therefore report the completion time, not
        // the queued INFER's (already past) start time — otherwise the
        // driving event loop wakes the worker at the current instant forever
        // and virtual time never advances (observed as a livelock with the
        // Clipper/INFaaS baselines under load).
        let mut cfg = quiet_config();
        cfg.exec_mode = ExecMode::Concurrent { max_concurrent: 2 };
        let mut w = Worker::new(cfg);
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        // Finish the load.
        let _ = w.poll(Timestamp::from_millis(20));

        let t = Timestamp::from_millis(20);
        for i in 0..3u64 {
            w.submit(t, infer_action(10 + i, ModelId(1), 1, vec![i]));
        }
        // Starts two INFERs (the concurrency limit) and leaves one queued.
        let results = w.poll(t);
        assert!(results.iter().all(|r| r.action_type == "LOAD"));
        let wake = w.next_wakeup().expect("a completion is pending");
        assert!(
            wake > t,
            "next_wakeup {wake} must be in the future, not the blocked INFER's start time"
        );
        // Once the completions fire, the third INFER runs to completion too.
        let results = w.poll(Timestamp::from_millis(200));
        let infers = results.iter().filter(|r| r.action_type == "INFER").count();
        assert_eq!(infers, 3);
        assert!(results.iter().all(|r| r.is_success()));
    }

    #[test]
    fn crash_drops_in_flight_work_and_restart_is_cold() {
        let mut w = Worker::new(quiet_config());
        w.register_model(ModelId(1), resnet()).unwrap();
        w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
        drain(&mut w, Timestamp::from_millis(50));
        assert!(w.is_loaded(GpuId(0), ModelId(1)));
        // Put an INFER in flight (queued, not yet polled) and crash.
        w.submit(
            Timestamp::from_millis(60),
            infer_action(2, ModelId(1), 1, vec![9]),
        );
        w.crash(Timestamp::from_millis(61));
        assert!(!w.is_alive());
        assert_eq!(w.alive_gpus(), 0);
        assert_eq!(w.next_wakeup(), None, "a dead worker never wakes");
        assert!(drain(&mut w, Timestamp::from_secs(1)).is_empty());
        // Submissions while down are dropped without a result.
        w.submit(
            Timestamp::from_millis(70),
            infer_action(3, ModelId(1), 1, vec![10]),
        );
        assert!(drain(&mut w, Timestamp::from_secs(1)).is_empty());
        assert_eq!(w.telemetry().counters.dropped_actions, 1);
        assert_eq!(w.telemetry().counters.crashes, 1);
        // Restart: host models survive, the device cache is cold.
        w.restart(Timestamp::from_millis(100));
        assert!(w.is_alive());
        assert!(w.has_model(ModelId(1)), "host memory survives a restart");
        assert!(
            !w.is_loaded(GpuId(0), ModelId(1)),
            "the page cache must be cold after a restart"
        );
        // An INFER without a fresh LOAD fails; a LOAD pays the full transfer.
        w.submit(
            Timestamp::from_millis(100),
            infer_action(4, ModelId(1), 1, vec![11]),
        );
        let results = drain(&mut w, Timestamp::from_millis(120));
        assert!(matches!(
            results[0].outcome,
            ActionOutcome::Error {
                error: ActionError::ModelNotLoaded,
                ..
            }
        ));
        w.submit(Timestamp::from_millis(120), load_action(5, ModelId(1)));
        let results = drain(&mut w, Timestamp::from_millis(200));
        let timing = results[0].outcome.timing().unwrap();
        let ms = timing.device_duration.as_millis_f64();
        assert!((ms - 8.33).abs() < 0.3, "cold reload took {ms} ms");
    }

    #[test]
    fn single_gpu_failure_spares_the_other_gpus() {
        let mut w = Worker::new(quiet_config().with_gpus(2));
        w.register_model(ModelId(1), resnet()).unwrap();
        // Warm both GPUs.
        for g in 0..2u32 {
            let mut a = load_action(u64::from(g) + 1, ModelId(1));
            a.gpu = GpuId(g);
            w.submit(Timestamp::ZERO, a);
        }
        drain(&mut w, Timestamp::from_millis(100));
        assert!(w.is_loaded(GpuId(0), ModelId(1)));
        assert!(w.is_loaded(GpuId(1), ModelId(1)));
        w.fail_gpu(GpuId(0));
        assert!(w.gpu_failed(GpuId(0)));
        assert!(!w.gpu_failed(GpuId(1)));
        assert_eq!(w.alive_gpus(), 1);
        assert!(
            !w.is_loaded(GpuId(0), ModelId(1)),
            "failed GPU loses its cache"
        );
        assert!(
            w.is_loaded(GpuId(1), ModelId(1)),
            "survivor keeps its cache"
        );
        // Work for the failed GPU is dropped; the survivor still serves.
        let mut dead = infer_action(10, ModelId(1), 1, vec![1]);
        dead.gpu = GpuId(0);
        w.submit(Timestamp::from_millis(110), dead);
        let mut live = infer_action(11, ModelId(1), 1, vec![2]);
        live.gpu = GpuId(1);
        w.submit(Timestamp::from_millis(110), live);
        let results = drain(&mut w, Timestamp::from_millis(200));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].gpu, GpuId(1));
        assert!(results[0].is_success());
        // Recovery comes back cold.
        w.recover_gpu(GpuId(0));
        assert!(!w.gpu_failed(GpuId(0)));
        assert!(!w.is_loaded(GpuId(0), ModelId(1)));
        assert_eq!(w.telemetry().counters.gpu_failures, 1);
    }

    #[test]
    fn gpu_failure_drops_only_that_gpus_completions() {
        let mut w = Worker::new(quiet_config().with_gpus(2));
        w.register_model(ModelId(1), resnet()).unwrap();
        // Start loads on both GPUs so each has a pending completion.
        for g in 0..2u32 {
            let mut a = load_action(u64::from(g) + 1, ModelId(1));
            a.gpu = GpuId(g);
            w.submit(Timestamp::ZERO, a);
        }
        // Poll at t=0: both loads start, completions pending at ~8.3 ms.
        assert!(drain(&mut w, Timestamp::ZERO).is_empty());
        w.fail_gpu(GpuId(1));
        let results = drain(&mut w, Timestamp::from_millis(100));
        assert_eq!(results.len(), 1, "only GPU 0's load completes");
        assert_eq!(results[0].gpu, GpuId(0));
    }

    #[test]
    fn worker_is_deterministic_for_same_seed() {
        let run = || {
            let mut w = Worker::new(WorkerConfig::new(WorkerId(0)).with_seed(42));
            w.register_model(ModelId(1), resnet()).unwrap();
            w.submit(Timestamp::ZERO, load_action(1, ModelId(1)));
            for i in 0..50u64 {
                w.submit(
                    Timestamp::from_millis(20),
                    infer_action(10 + i, ModelId(1), 1, vec![i]),
                );
            }
            w.poll(Timestamp::from_secs(1))
                .iter()
                .filter_map(|r| r.outcome.timing().map(|t| t.end))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
