//! Property-based tests for the predictable-worker building blocks.
//!
//! The worker's predictability rests on a handful of invariants: the paged
//! weights cache conserves pages and never evicts on its own, the IO staging
//! area never over-commits, executors dequeue chronologically and never start
//! an action before its `earliest` bound, and execution windows behave like
//! closed intervals. These properties are exercised here over arbitrary
//! operation sequences.

use proptest::prelude::*;

use clockwork_model::ModelId;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::action::{Action, ActionId, ActionKind, GpuId, TimeWindow};
use clockwork_worker::executor::Executor;
use clockwork_worker::io_cache::IoCache;
use clockwork_worker::page_cache::PageCache;

const DAY_NS: u64 = 86_400_000_000_000;
const PAGE: u64 = 16 * 1024 * 1024;

fn timestamp() -> impl Strategy<Value = Timestamp> {
    (0u64..DAY_NS).prop_map(Timestamp::from_nanos)
}

/// An arbitrary page-cache operation.
#[derive(Clone, Debug)]
enum CacheOp {
    Allocate { model: u32, weights_mb: u64 },
    Release { model: u32 },
    Touch { model: u32 },
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u32..40, 1u64..600)
            .prop_map(|(model, weights_mb)| CacheOp::Allocate { model, weights_mb }),
        (0u32..40).prop_map(|model| CacheOp::Release { model }),
        (0u32..40).prop_map(|model| CacheOp::Touch { model }),
    ]
}

proptest! {
    // ------------------------------------------------------------------
    // PageCache
    // ------------------------------------------------------------------

    #[test]
    fn page_cache_conserves_pages_under_arbitrary_ops(
        ops in proptest::collection::vec(cache_op(), 0..300),
        capacity_pages in 1u64..2048,
    ) {
        let mut cache = PageCache::new(capacity_pages * PAGE, PAGE);
        prop_assert_eq!(cache.total_pages(), capacity_pages);
        let mut now = Timestamp::ZERO;
        for op in ops {
            now += Nanos::from_micros(10);
            match op {
                CacheOp::Allocate { model, weights_mb } => {
                    let model = ModelId(model);
                    let bytes = weights_mb * 1024 * 1024;
                    let was_resident = cache.contains(model);
                    let needed = cache.pages_for(bytes).max(1);
                    let free_before = cache.free_pages();
                    match cache.allocate(model, bytes, now) {
                        Ok(pages) => {
                            if was_resident {
                                // Re-loading a resident model is a no-op touch.
                                prop_assert_eq!(pages, 0);
                                prop_assert_eq!(cache.free_pages(), free_before);
                            } else {
                                prop_assert_eq!(pages, needed);
                                prop_assert_eq!(cache.free_pages(), free_before - needed);
                            }
                            prop_assert!(cache.contains(model));
                        }
                        Err(e) => {
                            // Rejected allocations have no side effects.
                            prop_assert!(!was_resident);
                            prop_assert_eq!(e.needed, needed);
                            prop_assert_eq!(e.available, free_before);
                            prop_assert_eq!(cache.free_pages(), free_before);
                            prop_assert!(!cache.contains(model));
                        }
                    }
                }
                CacheOp::Release { model } => {
                    let model = ModelId(model);
                    let was_resident = cache.contains(model);
                    let free_before = cache.free_pages();
                    let freed = cache.release(model);
                    if was_resident {
                        prop_assert!(freed > 0);
                    } else {
                        prop_assert_eq!(freed, 0);
                    }
                    prop_assert_eq!(cache.free_pages(), free_before + freed);
                    prop_assert!(!cache.contains(model));
                }
                CacheOp::Touch { model } => {
                    let free_before = cache.free_pages();
                    cache.touch(ModelId(model), now);
                    prop_assert_eq!(cache.free_pages(), free_before);
                }
            }
            // Global conservation: free + used == total, occupancy in [0, 1].
            prop_assert_eq!(cache.free_pages() + cache.used_pages(), cache.total_pages());
            prop_assert!(cache.free_pages() <= cache.total_pages());
            prop_assert!((0.0..=1.0).contains(&cache.occupancy()));
            prop_assert_eq!(cache.resident_models().len(), cache.resident_count());
        }
    }

    #[test]
    fn page_cache_lru_victim_is_least_recently_touched(
        n in 2usize..20,
        touch_order in proptest::collection::vec(0usize..20, 1..60),
    ) {
        let mut cache = PageCache::new(1024 * PAGE, PAGE);
        let mut now = Timestamp::ZERO;
        let mut last_touch = vec![Timestamp::ZERO; n];
        for (i, touch) in last_touch.iter_mut().enumerate() {
            now += Nanos::from_millis(1);
            cache
                .allocate(ModelId(i as u32), 4 * PAGE, now)
                .expect("cache sized to fit all models");
            *touch = now;
        }
        for &idx in &touch_order {
            if idx >= n {
                continue;
            }
            now += Nanos::from_millis(1);
            cache.touch(ModelId(idx as u32), now);
            last_touch[idx] = now;
        }
        let expected = (0..n)
            .min_by_key(|&i| (last_touch[i], i))
            .map(|i| ModelId(i as u32));
        prop_assert_eq!(cache.lru_victim(), expected);
    }

    #[test]
    fn page_cache_victim_selection_frees_enough_and_respects_protection(
        residents in proptest::collection::vec(1u64..50, 2..30),
        needed_pages in 1u64..400,
        protect_idx in any::<prop::sample::Index>(),
    ) {
        let total: u64 = 4096;
        let mut cache = PageCache::new(total * PAGE, PAGE);
        let mut now = Timestamp::ZERO;
        for (i, pages) in residents.iter().enumerate() {
            now += Nanos::from_millis(1);
            cache
                .allocate(ModelId(i as u32), pages * PAGE, now)
                .expect("within capacity");
        }
        let protect = ModelId(protect_idx.index(residents.len()) as u32);
        match cache.lru_victims_for(needed_pages, &[protect]) {
            Some(victims) => {
                prop_assert!(!victims.contains(&protect));
                // Evicting the victims frees at least the requested pages.
                let mut sim = cache.clone();
                for v in &victims {
                    sim.release(*v);
                }
                prop_assert!(sim.free_pages() >= needed_pages);
            }
            None => {
                // Even evicting everything except the protected model would
                // not be enough.
                let mut sim = cache.clone();
                for m in sim.resident_models() {
                    if m != protect {
                        sim.release(m);
                    }
                }
                prop_assert!(sim.free_pages() < needed_pages);
            }
        }
    }

    // ------------------------------------------------------------------
    // IoCache
    // ------------------------------------------------------------------

    #[test]
    fn io_cache_never_over_commits(
        capacity in 1u64..1u64 << 30,
        ops in proptest::collection::vec((any::<bool>(), 1u64..1u64 << 24), 0..200),
    ) {
        let mut cache = IoCache::new(capacity);
        let mut live: Vec<u64> = Vec::new();
        for (is_acquire, bytes) in ops {
            if is_acquire {
                let fits = bytes <= cache.available();
                match cache.acquire(bytes) {
                    Ok(()) => {
                        prop_assert!(fits);
                        live.push(bytes);
                    }
                    Err(_) => prop_assert!(!fits),
                }
            } else if let Some(bytes) = live.pop() {
                cache.release(bytes);
            }
            let used: u64 = live.iter().sum();
            prop_assert_eq!(cache.used(), used);
            prop_assert_eq!(cache.available(), capacity - used);
            prop_assert!(cache.peak() >= cache.used());
            prop_assert!(cache.used() <= cache.capacity());
        }
        prop_assert_eq!(cache.acquires() as usize + cache.rejections() as usize,
            // Every acquire attempt is counted exactly once.
            cache.acquires() as usize + cache.rejections() as usize);
    }

    // ------------------------------------------------------------------
    // TimeWindow
    // ------------------------------------------------------------------

    #[test]
    fn window_is_a_closed_interval(start in timestamp(), width_ns in 0u64..DAY_NS, probe in timestamp()) {
        let w = TimeWindow::starting_at(start, Nanos::from_nanos(width_ns));
        prop_assert_eq!(w.width(), Nanos::from_nanos(width_ns));
        prop_assert!(w.contains(w.earliest));
        prop_assert!(w.contains(w.latest));
        prop_assert_eq!(w.contains(probe), probe >= w.earliest && probe <= w.latest);
        prop_assert_eq!(w.expired(probe), probe > w.latest);
        // A window is never simultaneously open and expired.
        prop_assert!(!(w.contains(probe) && w.expired(probe)));
    }

    #[test]
    fn always_window_never_expires(probe in timestamp()) {
        let w = TimeWindow::always();
        prop_assert!(w.contains(probe));
        prop_assert!(!w.expired(probe));
    }

    // ------------------------------------------------------------------
    // Executor
    // ------------------------------------------------------------------

    #[test]
    fn executor_dequeues_by_earliest_and_never_starts_early(
        actions in proptest::collection::vec((0u64..DAY_NS, 0u64..DAY_NS, 0u64..1_000_000u64), 1..100),
    ) {
        let mut exec = Executor::new();
        for (i, (received, earliest, width_us)) in actions.iter().enumerate() {
            let action = Action {
                id: ActionId(i as u64),
                gpu: GpuId(0),
                kind: ActionKind::Load { model: ModelId(i as u32) },
                window: TimeWindow::starting_at(
                    Timestamp::from_nanos(*earliest),
                    Nanos::from_micros(*width_us),
                ),
                expected_duration: Nanos::from_millis(1),
            };
            exec.push(action, Timestamp::from_nanos(*received));
        }
        prop_assert_eq!(exec.queue_len(), actions.len());

        // Drain by repeatedly advancing "now" to the next feasible start.
        let mut now = Timestamp::ZERO;
        let mut popped = 0usize;
        let mut last_earliest = Timestamp::ZERO;
        while let Some(next) = exec.next_start_time() {
            if next > now {
                // Before the feasible start time, nothing may be released.
                prop_assert!(exec.pop_ready(now).is_none(),
                    "pop_ready returned an action before its feasible start");
                now = next;
            }
            let qa = exec.pop_ready(now).expect("feasible action must pop");
            // Never started before its earliest bound or before it arrived.
            prop_assert!(now >= qa.action.window.earliest);
            prop_assert!(now >= qa.received);
            // Heap order: earliest bounds are non-decreasing.
            prop_assert!(qa.action.window.earliest >= last_earliest);
            last_earliest = qa.action.window.earliest;
            popped += 1;
        }
        prop_assert_eq!(popped, actions.len());
        prop_assert_eq!(exec.started(), actions.len() as u64);
        prop_assert!(exec.is_empty());
    }

    #[test]
    fn executor_busy_until_is_monotone(marks in proptest::collection::vec(0u64..DAY_NS, 0..100)) {
        let mut exec = Executor::new();
        let mut high_water = Timestamp::ZERO;
        for m in marks {
            let t = Timestamp::from_nanos(m);
            exec.occupy_until(t);
            high_water = high_water.max(t);
            prop_assert_eq!(exec.busy_until(), high_water);
        }
    }

    #[test]
    fn executor_respects_occupancy_before_releasing_work(
        busy_ns in 1u64..DAY_NS,
        earliest_ns in 0u64..DAY_NS,
    ) {
        let mut exec = Executor::new();
        exec.occupy_until(Timestamp::from_nanos(busy_ns));
        let action = Action {
            id: ActionId(1),
            gpu: GpuId(0),
            kind: ActionKind::Load { model: ModelId(1) },
            window: TimeWindow::starting_at(Timestamp::from_nanos(earliest_ns), Nanos::from_secs(3600)),
            expected_duration: Nanos::from_millis(1),
        };
        exec.push(action, Timestamp::ZERO);
        let feasible = exec.next_start_time().expect("one action queued");
        prop_assert_eq!(
            feasible,
            Timestamp::from_nanos(busy_ns).max(Timestamp::from_nanos(earliest_ns))
        );
        // One nanosecond before the feasible start nothing pops.
        if feasible > Timestamp::ZERO {
            prop_assert!(exec.pop_ready(feasible - Nanos::from_nanos(1)).is_none());
        }
        prop_assert!(exec.pop_ready(feasible).is_some());
    }
}
