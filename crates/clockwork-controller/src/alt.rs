//! Ablation schedulers.
//!
//! The paper's argument is architectural: consolidating choice at the
//! controller is what buys predictability. To quantify how much each piece of
//! the design contributes, the benchmark harness runs the full system with
//! deliberately weakened schedulers:
//!
//! * [`FifoScheduler`] — no batching, no admission control, no proactive
//!   placement: requests are dispatched one at a time, round-robin across
//!   GPUs, with a LOAD issued on demand whenever the target GPU does not hold
//!   the model. This approximates the "ignore the problem" end of §3.
//!
//! Both the ablations and the full [`crate::ClockworkScheduler`] implement
//! the same [`Scheduler`] trait, so they are interchangeable in the system
//! harness and the comparison isolates policy, not plumbing.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use clockwork_model::{ModelId, ModelSpec};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionKind, ActionOutcome, ActionResult, TimeWindow};

use crate::request::{InferenceRequest, RejectReason, RequestOutcome, Response};
use crate::scheduler::{Scheduler, SchedulerCtx, TickOutcome};
use crate::worker_state::{GpuRef, OutstandingAction, WorkerStateTracker};

/// A deliberately naive scheduler: FIFO dispatch, batch size 1, round-robin
/// GPU selection, on-demand loads, no admission control, unbounded windows.
pub struct FifoScheduler {
    models: HashMap<ModelId, Arc<ModelSpec>>,
    tracker: WorkerStateTracker,
    queue: VecDeque<InferenceRequest>,
    in_flight: HashMap<clockwork_worker::ActionId, InferenceRequest>,
    next_gpu: usize,
    load_estimates: HashMap<ModelId, Nanos>,
}

impl Default for FifoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler {
            models: HashMap::new(),
            tracker: WorkerStateTracker::new(),
            queue: VecDeque::new(),
            in_flight: HashMap::new(),
            next_gpu: 0,
            load_estimates: HashMap::new(),
        }
    }

    /// Registers a GPU.
    pub fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        self.tracker.add_gpu(gpu_ref, total_pages, page_size);
    }

    /// Registers a model.
    pub fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_estimate: Nanos) {
        self.load_estimates.insert(id, load_estimate);
        self.models.insert(id, spec);
    }

    /// Number of requests waiting to be dispatched.
    pub fn queued_requests(&self) -> usize {
        self.queue.len()
    }

    fn dispatch(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        // Round-robin only over live capacity; dead GPUs would swallow the
        // action without ever answering. With no live GPU at all the queue
        // simply waits for a recovery.
        let alive: Vec<GpuRef> = self
            .tracker
            .gpus()
            .iter()
            .filter(|g| g.alive)
            .map(|g| g.gpu_ref)
            .collect();
        if alive.is_empty() {
            return;
        }
        // Dispatch everything immediately, round-robin, one request per INFER.
        while let Some(request) = self.queue.pop_front() {
            let Some(spec) = self.models.get(&request.model).cloned() else {
                ctx.send_response(Response {
                    request: request.id,
                    model: request.model,
                    arrival: request.arrival,
                    deadline: request.deadline(),
                    outcome: RequestOutcome::Rejected {
                        at: now,
                        reason: RejectReason::UnknownModel,
                    },
                });
                continue;
            };
            let gpu_ref = alive[self.next_gpu % alive.len()];
            self.next_gpu = self.next_gpu.wrapping_add(1);
            let exec_est = spec.exec_latency(1).unwrap_or(Nanos::from_millis(10));
            // Load on demand if the GPU does not already hold the model,
            // evicting LRU models until the load fits.
            let needs_load = !self
                .tracker
                .get(gpu_ref)
                .map(|t| t.has_or_loading(request.model))
                .unwrap_or(false);
            if needs_load {
                let load_est = self
                    .load_estimates
                    .get(&request.model)
                    .copied()
                    .unwrap_or(Nanos::from_millis(10));
                loop {
                    let track = self.tracker.get(gpu_ref).expect("gpu exists");
                    let pages = track.pages_for(spec.weights_bytes());
                    if pages <= track.free_pages {
                        break;
                    }
                    let protect = std::collections::HashSet::new();
                    let Some(victim) = track.lru_candidate(&protect) else {
                        break;
                    };
                    self.tracker
                        .get_mut(gpu_ref)
                        .expect("gpu exists")
                        .note_unload_sent(victim);
                    ctx.send_action(
                        gpu_ref.worker,
                        gpu_ref.gpu,
                        ActionKind::Unload { model: victim },
                        TimeWindow::always(),
                        Nanos::from_micros(5),
                    );
                }
                let track = self.tracker.get_mut(gpu_ref).expect("gpu exists");
                let pages = track.pages_for(spec.weights_bytes());
                let load_id = ctx.send_action(
                    gpu_ref.worker,
                    gpu_ref.gpu,
                    ActionKind::Load {
                        model: request.model,
                    },
                    TimeWindow::always(),
                    load_est,
                );
                track.note_load_sent(
                    OutstandingAction {
                        id: load_id,
                        model: request.model,
                        expected_completion: now + load_est,
                        is_load: true,
                    },
                    pages,
                    now,
                    load_est,
                );
            }
            let infer_id = ctx.send_action(
                gpu_ref.worker,
                gpu_ref.gpu,
                ActionKind::Infer {
                    model: request.model,
                    batch: 1,
                    request_ids: vec![request.id.0],
                },
                TimeWindow::always(),
                exec_est,
            );
            let track = self.tracker.get_mut(gpu_ref).expect("gpu exists");
            track.note_infer_sent(
                OutstandingAction {
                    id: infer_id,
                    model: request.model,
                    expected_completion: now + exec_est,
                    is_load: false,
                },
                now,
                exec_est,
            );
            self.in_flight.insert(infer_id, request);
        }
    }
}

impl Scheduler for FifoScheduler {
    fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        FifoScheduler::add_gpu(self, gpu_ref, total_pages, page_size);
    }

    fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos) {
        FifoScheduler::add_model(self, id, spec, load_seed);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_request(&mut self, now: Timestamp, request: InferenceRequest, ctx: &mut SchedulerCtx) {
        self.queue.push_back(request);
        self.dispatch(now, ctx);
    }

    fn on_result(&mut self, now: Timestamp, result: &ActionResult, ctx: &mut SchedulerCtx) {
        let gpu_ref = GpuRef {
            worker: result.worker,
            gpu: result.gpu,
        };
        match result.action_type {
            "LOAD" => {
                if let Some(track) = self.tracker.get_mut(gpu_ref) {
                    track.note_load_result(result.action_id, result.model, result.is_success());
                }
            }
            "INFER" => {
                if let Some(track) = self.tracker.get_mut(gpu_ref) {
                    track.note_infer_result(result.action_id);
                }
                if let Some(request) = self.in_flight.remove(&result.action_id) {
                    let outcome = match &result.outcome {
                        ActionOutcome::Success(timing) => RequestOutcome::Success {
                            completed: timing.end,
                            batch: result.batch,
                            worker: result.worker,
                            gpu: result.gpu,
                            cold_start: false,
                        },
                        ActionOutcome::Error { at, .. } => RequestOutcome::Rejected {
                            at: *at,
                            reason: RejectReason::WorkerRejected,
                        },
                    };
                    ctx.send_response(Response {
                        request: request.id,
                        model: request.model,
                        arrival: request.arrival,
                        deadline: request.deadline(),
                        outcome,
                    });
                }
            }
            _ => {}
        }
        self.dispatch(now, ctx);
    }

    fn on_tick(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) -> TickOutcome {
        self.dispatch(now, ctx);
        TickOutcome::Full
    }

    fn on_fault(
        &mut self,
        now: Timestamp,
        fault: &clockwork_sim::engine::FaultKind,
        ctx: &mut SchedulerCtx,
    ) {
        // Minimal fault awareness: park dead capacity (dispatch skips it),
        // re-admit recovered capacity cold, and requeue the requests whose
        // in-flight actions died with the GPU. Reverse id order + push_front
        // restores the lost requests at the head in their original order.
        let lost = self.tracker.apply_fault(now, fault);
        for id in lost.iter().rev() {
            if let Some(request) = self.in_flight.remove(id) {
                self.queue.push_front(request);
            }
        }
        self.dispatch(now, ctx);
    }

    fn next_tick(&self, now: Timestamp) -> Option<Timestamp> {
        if self.queue.is_empty() {
            None
        } else {
            Some(now + Nanos::from_millis(1))
        }
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_model::Tier;
    use clockwork_worker::{ActionTiming, GpuId, WorkerId};

    const PAGE: u64 = 16 * 1024 * 1024;

    fn gref(w: u32) -> GpuRef {
        GpuRef {
            worker: WorkerId(w),
            gpu: GpuId(0),
        }
    }

    fn resnet() -> Arc<ModelSpec> {
        Arc::new(ModelZoo::new().resnet50().clone())
    }

    fn request(id: u64, model: u32) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(id),
            model: ModelId(model),
            arrival: Timestamp::ZERO,
            slo: Nanos::from_millis(100),
            tier: Tier::Strict,
        }
    }

    #[test]
    fn dispatches_immediately_without_batching() {
        let mut s = FifoScheduler::new();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        for i in 0..4 {
            s.on_request(Timestamp::ZERO, request(i, 1), &mut ctx);
        }
        let actions = ctx.take_actions();
        let infers: Vec<_> = actions
            .iter()
            .filter_map(|(_, a)| match &a.kind {
                ActionKind::Infer { batch, .. } => Some(*batch),
                _ => None,
            })
            .collect();
        assert_eq!(infers.len(), 4, "one INFER per request");
        assert!(infers.iter().all(|&b| b == 1), "never batches");
        assert_eq!(s.queued_requests(), 0);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn round_robins_across_gpus_and_loads_on_demand() {
        let mut s = FifoScheduler::new();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_gpu(gref(1), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1), &mut ctx);
        s.on_request(Timestamp::ZERO, request(2, 1), &mut ctx);
        let actions = ctx.take_actions();
        let loads = actions
            .iter()
            .filter(|(_, a)| a.kind.type_name() == "LOAD")
            .count();
        assert_eq!(loads, 2, "each GPU loads the model on demand");
        let workers: std::collections::HashSet<WorkerId> =
            actions.iter().map(|(w, _)| *w).collect();
        assert_eq!(workers.len(), 2);
    }

    #[test]
    fn responses_are_sent_on_results() {
        let mut s = FifoScheduler::new();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1), &mut ctx);
        let actions = ctx.take_actions();
        let (infer_id, infer_action) = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "INFER")
            .map(|(_, a)| (a.id, a.clone()))
            .unwrap();
        let result = ActionResult {
            action_id: infer_id,
            worker: WorkerId(0),
            gpu: GpuId(0),
            model: ModelId(1),
            action_type: "INFER",
            batch: 1,
            request_ids: vec![1],
            expected_duration: infer_action.expected_duration,
            outcome: ActionOutcome::Success(ActionTiming {
                received: Timestamp::ZERO,
                start: Timestamp::from_millis(9),
                end: Timestamp::from_millis(12),
                device_duration: Nanos::from_millis(3),
            }),
        };
        s.on_result(Timestamp::from_millis(12), &result, &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].outcome.is_success());
    }

    #[test]
    fn faults_drop_dead_gpus_from_placement_and_requeue_lost_work() {
        use clockwork_sim::engine::FaultKind;
        let mut s = FifoScheduler::new();
        s.add_gpu(gref(0), 100, PAGE);
        s.add_gpu(gref(1), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis(8));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1), &mut ctx);
        s.on_request(Timestamp::ZERO, request(2, 1), &mut ctx);
        let _ = ctx.take_actions(); // one request per worker, round-robin
                                    // Worker 0 dies: its in-flight request requeues and goes to worker 1.
        s.on_fault(
            Timestamp::from_millis(1),
            &FaultKind::WorkerCrash { worker: 0 },
            &mut ctx,
        );
        let actions = ctx.take_actions();
        assert!(!actions.is_empty(), "the lost request is redispatched");
        assert!(
            actions.iter().all(|(w, _)| *w == WorkerId(1)),
            "nothing may be placed on the dead worker"
        );
        // New requests also avoid the dead worker.
        s.on_request(Timestamp::from_millis(2), request(3, 1), &mut ctx);
        assert!(ctx.take_actions().iter().all(|(w, _)| *w == WorkerId(1)));
        // The restart re-admits it into the rotation.
        s.on_fault(
            Timestamp::from_millis(3),
            &FaultKind::WorkerRestart { worker: 0 },
            &mut ctx,
        );
        let _ = ctx.take_actions();
        s.on_request(Timestamp::from_millis(4), request(4, 1), &mut ctx);
        s.on_request(Timestamp::from_millis(4), request(5, 1), &mut ctx);
        let workers: std::collections::HashSet<WorkerId> =
            ctx.take_actions().iter().map(|(w, _)| *w).collect();
        assert!(
            workers.contains(&WorkerId(0)),
            "recovered worker is back in the round-robin: {workers:?}"
        );
    }

    #[test]
    fn unknown_models_are_rejected() {
        let mut s = FifoScheduler::new();
        s.add_gpu(gref(0), 100, PAGE);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 42), &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].outcome.is_success());
    }
}
