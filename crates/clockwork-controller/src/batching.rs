//! Batch formation and batch-amortized cost, as pure functions.
//!
//! Clockwork's throughput-under-SLO story rests on batch-amortized
//! execution: a batch-8 ResNet50 kernel takes nowhere near 8× the batch-1
//! latency, so coalescing queued requests multiplies goodput — *if* the
//! scheduler can prove every member of the formed batch still meets its
//! deadline at the profiled batch cost. This module holds that logic in
//! isolation from the scheduler's bookkeeping so it can be unit- and
//! property-tested directly:
//!
//! * [`build_strategies`] — turn a model's queue (deadlines in FIFO order)
//!   and its per-batch execution estimates into Appendix B's strategy
//!   queue: one `(batch, required_start)` entry per compiled batch size the
//!   queue can fill, where `required_start` is the latest instant an INFER
//!   of that size may start and still meet the *earliest* member deadline.
//! * [`largest_feasible`] — given the strategy queue and the earliest
//!   instant a GPU could start executing, pick the largest batch whose
//!   required start has not passed. Measured profiles make the raw
//!   `required_start` sequence non-monotone (a bigger batch can profile
//!   *faster* than a smaller one), so the search runs over a precomputed
//!   suffix maximum, which is monotone by construction.
//! * [`amortized_drain_cost`] — the admission-control side of the same
//!   coin: the cost of a queued request is not the batch-1 kernel latency
//!   but its share of draining the whole backlog with the largest compiled
//!   kernels, spread over the GPUs currently holding the model's weights.
//!
//! All three are deterministic, allocation-free (callers own the output
//! buffers) and independent of scheduler state; `ClockworkScheduler`
//! delegates to them verbatim.

use clockwork_sim::time::{Nanos, Timestamp};

/// One strategy-queue entry: `(batch, required_start, suffix_max)`.
///
/// `batch` is a compiled batch size the current queue can fill,
/// `required_start` the latest execution start that still meets every
/// member's deadline at the estimated cost, and `suffix_max` the maximum
/// `required_start` over this entry and all larger-batch entries — the
/// monotone key [`largest_feasible`] binary-searches.
pub type Strategy = (u32, Timestamp, Timestamp);

/// Builds the strategy queue for one model into `out` (cleared first).
///
/// `deadlines` yields the queued requests' deadlines in FIFO order;
/// `batches` the model's compiled batch sizes in ascending order; `est`
/// maps a batch size to its estimated execution duration (rolling profile
/// or compiled latency). For each batch size `b ≤ queued`, the entry's
/// `required_start` is `min(deadline over first b requests) - est(b) -
/// allowance` — the batch serves the queue *prefix*, so the earliest
/// deadline among its members bounds the start. With `batching == false`
/// only the batch-1 entry is built (the ablation and the PR 6 comparator).
///
/// The queue is walked once across all batch sizes (running minimum), and
/// the suffix maximum is backfilled so [`largest_feasible`] has its
/// monotone key even when `est` makes a larger batch faster.
pub fn build_strategies<D, B, F>(
    deadlines: D,
    batches: B,
    queued: u32,
    allowance: Nanos,
    batching: bool,
    mut est: F,
    out: &mut Vec<Strategy>,
) where
    D: IntoIterator<Item = Timestamp>,
    B: IntoIterator<Item = u32>,
    F: FnMut(u32) -> Nanos,
{
    out.clear();
    if queued == 0 {
        return;
    }
    let mut min_deadline = Timestamp::MAX;
    let mut taken = 0u32;
    let mut prefix = deadlines.into_iter();
    for batch in batches {
        if !batching && batch > 1 {
            break;
        }
        if batch > queued {
            // Not enough requests for this batch size.
            continue;
        }
        while taken < batch {
            let d = prefix.next().expect("batch <= queue length");
            if d < min_deadline {
                min_deadline = d;
            }
            taken += 1;
        }
        let e = est(batch);
        let required_start = if min_deadline == Timestamp::MAX {
            Timestamp::MAX
        } else {
            min_deadline - e - allowance
        };
        out.push((batch, required_start, required_start));
    }
    let mut suffix_max = Timestamp::ZERO;
    for s in out.iter_mut().rev() {
        suffix_max = suffix_max.max(s.1);
        s.2 = suffix_max;
    }
}

/// The largest feasible batch for an INFER starting at `exec_start`: the
/// biggest strategy entry whose `required_start` has not passed (the paper
/// drops strategies for batch sizes that are too small when larger ones
/// fit). Returns `(batch, required_start)`, or `None` when even batch 1
/// cannot meet its deadline from `exec_start`.
///
/// The binary search runs over the suffix maximum of `required_start`:
/// `exec_start <= suffix_max[i]` holds exactly when some entry at index
/// `>= i` is feasible, so the partition boundary lands one past the last
/// feasible entry — the same entry a linear last-feasible scan would
/// choose. The debug assertions pin the monotone ordering the search
/// relies on and that the chosen entry realizes its own suffix maximum
/// (i.e. is genuinely feasible, not shadowed by a larger sibling).
pub fn largest_feasible(
    strategies: &[Strategy],
    exec_start: Timestamp,
) -> Option<(u32, Timestamp)> {
    debug_assert!(
        strategies.windows(2).all(|w| w[0].2 >= w[1].2),
        "strategy suffix-max required_start must be non-increasing"
    );
    let n = strategies.partition_point(|&(_, _, suffix_max)| exec_start <= suffix_max);
    if n == 0 {
        None
    } else {
        let (batch, required_start, suffix_max) = strategies[n - 1];
        debug_assert!(
            required_start == suffix_max,
            "last feasible entry must realize its own suffix maximum"
        );
        Some((batch, required_start))
    }
}

/// Batch-amortized cost of absorbing one more request into a backlog of
/// `backlog` queued requests (the new request included), for admission
/// control.
///
/// The backlog is covered greedily with the largest compiled kernels
/// (`batches` ascending): whole largest-size batches while the remainder
/// exceeds the largest size, then the smallest compiled size covering the
/// rest — the same shape the dispatch path's strategy queue produces under
/// load. The summed execution estimate is then divided by `holders`, the
/// number of GPUs currently holding the model's weights, since they drain
/// the queue in parallel.
///
/// Callers should floor the result at `est(1)`: a request can never cost
/// less than one batch-1 kernel, and the floor keeps the empty-backlog
/// warm-model case byte-identical to pricing at the size-1 cost (so low
/// load is unaffected by admission's batch-awareness).
pub fn amortized_drain_cost<F>(backlog: u32, batches: &[u32], holders: u32, mut est: F) -> Nanos
where
    F: FnMut(u32) -> Nanos,
{
    debug_assert!(
        batches.windows(2).all(|w| w[0] < w[1]),
        "compiled batch sizes must be ascending and distinct"
    );
    let mut total = Nanos::ZERO;
    let mut remaining = backlog;
    let largest = batches.last().copied().unwrap_or(1).max(1);
    while remaining > 0 {
        if let Some(&cover) = batches.iter().find(|&&b| b >= remaining) {
            // One kernel covers everything left.
            total += est(cover);
            break;
        }
        // Largest kernel, then keep going on the remainder.
        total += est(largest);
        remaining -= largest.min(remaining);
    }
    total / u64::from(holders.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn at(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    /// `est` curve of a typical compiled model: sublinear in batch size.
    fn amortized_est(batch: u32) -> Nanos {
        match batch {
            1 => ms(4),
            2 => ms(6),
            4 => ms(10),
            8 => ms(18),
            _ => ms(40),
        }
    }

    #[test]
    fn builds_one_entry_per_fillable_batch_size() {
        let mut out = Vec::new();
        build_strategies(
            [at(100), at(90), at(120)],
            [1u32, 2, 4, 8],
            3,
            Nanos::ZERO,
            true,
            amortized_est,
            &mut out,
        );
        // Batch 4 and 8 need more requests than are queued.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 2);
        // Batch 1 serves only the front request (deadline 100);
        // batch 2's prefix includes the tighter deadline 90.
        assert_eq!(out[0].1, at(100) - ms(4));
        assert_eq!(out[1].1, at(90) - ms(6));
    }

    #[test]
    fn batching_disabled_stops_at_batch_one() {
        let mut out = Vec::new();
        build_strategies(
            [at(100), at(100), at(100), at(100)],
            [1u32, 2, 4],
            4,
            Nanos::ZERO,
            false,
            amortized_est,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
    }

    #[test]
    fn picks_largest_feasible_batch() {
        let mut out = Vec::new();
        build_strategies(
            [at(100); 8],
            [1u32, 2, 4, 8],
            8,
            Nanos::ZERO,
            true,
            amortized_est,
            &mut out,
        );
        // Early enough for anything: the largest batch wins.
        assert_eq!(largest_feasible(&out, at(0)).unwrap().0, 8);
        // Batch 8 must start by 100-18=82, batch 4 by 90: at 85 only 4 fits.
        assert_eq!(largest_feasible(&out, at(85)).unwrap().0, 4);
        // At 97 even batch 1 (required by 96) is infeasible.
        assert_eq!(largest_feasible(&out, at(97)), None);
    }

    #[test]
    fn non_monotone_measured_profiles_still_pick_a_feasible_entry() {
        // Measured estimates where batch 4 profiles FASTER than batch 2
        // (warm cache, variance): required_start is non-monotone in batch.
        let est = |b: u32| match b {
            1 => ms(5),
            2 => ms(12),
            _ => ms(6),
        };
        let mut out = Vec::new();
        build_strategies(
            [at(100); 4],
            [1u32, 2, 4],
            4,
            Nanos::ZERO,
            true,
            est,
            &mut out,
        );
        // required_start: batch1=95, batch2=88, batch4=94 — non-monotone.
        assert_eq!(out[1].1, at(88));
        assert_eq!(out[2].1, at(94));
        // Suffix max restores a monotone key without losing feasibility.
        assert!(out.windows(2).all(|w| w[0].2 >= w[1].2));
        // At 90, batch 2's own required_start (88) has passed but batch 4's
        // has not: the search must land on 4, not give up at 2.
        let (batch, required) = largest_feasible(&out, at(90)).unwrap();
        assert_eq!(batch, 4);
        assert_eq!(required, at(94));
        // At 95 only batch 1 remains feasible.
        assert_eq!(largest_feasible(&out, at(95)).unwrap().0, 1);
        assert_eq!(largest_feasible(&out, at(96)), None);
    }

    #[test]
    fn chosen_entry_meets_every_member_deadline_at_profiled_cost() {
        // The safety property behind batch formation, checked directly:
        // whatever entry the search returns, exec_start + est + allowance
        // fits the earliest deadline of the prefix the batch would serve.
        let deadlines = [at(50), at(41), at(60), at(44)];
        let allowance = Nanos::from_micros(500);
        let mut out = Vec::new();
        build_strategies(
            deadlines,
            [1u32, 2, 4],
            deadlines.len() as u32,
            allowance,
            true,
            amortized_est,
            &mut out,
        );
        for probe_us in (0..60_000u64).step_by(700) {
            let exec_start = Timestamp::ZERO + Nanos::from_micros(probe_us);
            if let Some((batch, _)) = largest_feasible(&out, exec_start) {
                let members = &deadlines[..batch as usize];
                let done = exec_start + amortized_est(batch) + allowance;
                for d in members {
                    assert!(
                        done <= *d,
                        "batch {batch} at {exec_start:?} misses member deadline {d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn drain_cost_covers_backlog_with_largest_kernels() {
        let batches = [1u32, 2, 4, 8];
        // 11 requests on one holder: 8 + (smallest cover of 3 = 4).
        let cost = amortized_drain_cost(11, &batches, 1, amortized_est);
        assert_eq!(cost, ms(18) + ms(10));
        // Same backlog over two holders: half.
        let cost2 = amortized_drain_cost(11, &batches, 2, amortized_est);
        assert_eq!(cost2, (ms(18) + ms(10)) / 2);
    }

    #[test]
    fn drain_cost_of_single_request_is_one_kernel() {
        let batches = [1u32, 2, 4, 8];
        assert_eq!(amortized_drain_cost(1, &batches, 1, amortized_est), ms(4));
        // More holders can only lower it — callers floor at est(1).
        assert!(amortized_drain_cost(1, &batches, 3, amortized_est) <= ms(4));
    }

    #[test]
    fn drain_cost_without_batching_kernels_is_linear() {
        // A model compiled only at batch 1 degenerates to size-1 pricing.
        let cost = amortized_drain_cost(5, &[1], 1, amortized_est);
        assert_eq!(cost, ms(4) * 5);
    }
}
