//! Open registration of serving disciplines.
//!
//! The paper's headline result is a *comparison*: Clockwork against
//! Clipper-/INFaaS-style baselines under identical load. This module makes
//! the discipline set open instead of a closed enum: a
//! [`SchedulerFactory`] describes how to construct one discipline (and which
//! worker execution mode it assumes), and a [`SchedulerRegistry`] holds
//! factories by name in deterministic registration order. The serving
//! system only ever sees the [`Scheduler`] trait; crates that implement
//! disciplines (the baselines, or a user's fifth discipline) register
//! themselves into a registry that experiment harnesses iterate.
//!
//! The dependency edge is thereby inverted: the facade no longer links the
//! baseline crate — the baseline crate links this one.

use clockwork_worker::ExecMode;

use crate::alt::FifoScheduler;
use crate::clockwork_scheduler::{ClockworkScheduler, ClockworkSchedulerConfig};
use crate::scheduler::Scheduler;

/// Constructs one serving discipline.
///
/// A factory is cheap, immutable configuration; [`SchedulerFactory::build`]
/// may be called any number of times and must return a fresh, independent
/// scheduler each time (experiment harnesses run the same factory across
/// many seeds and scenarios).
pub trait SchedulerFactory {
    /// The discipline's name — stable, snake_case, unique within a registry
    /// (e.g. `"clockwork"`, `"clipper"`). This is the name experiment output
    /// reports and the key under which results are filed.
    fn name(&self) -> &'static str;

    /// The worker execution mode this discipline assumes when the experiment
    /// does not override it: Clockwork-style proactive disciplines schedule
    /// for exclusive one-at-a-time execution, reactive baselines run atop
    /// frameworks that execute concurrently.
    fn default_exec_mode(&self) -> ExecMode {
        ExecMode::Exclusive
    }

    /// Builds a fresh scheduler instance.
    fn build(&self) -> Box<dyn Scheduler>;
}

/// A named, ordered collection of [`SchedulerFactory`]s.
///
/// Iteration order is registration order, so experiment loops over "every
/// registered discipline" are deterministic. Registering a name twice
/// replaces the earlier factory in place (keeping its position) — useful for
/// overriding the built-in `clockwork` entry with a tuned configuration.
#[derive(Default)]
pub struct SchedulerRegistry {
    factories: Vec<Box<dyn SchedulerFactory>>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchedulerRegistry::default()
    }

    /// A registry pre-populated with the disciplines this crate implements:
    /// `clockwork` (default configuration) and the `fifo` ablation. Baseline
    /// crates add theirs on top (e.g.
    /// `clockwork_baselines::register_baselines`).
    pub fn builtin() -> Self {
        let mut registry = SchedulerRegistry::new();
        registry.register(Box::new(ClockworkFactory::default()));
        registry.register(Box::new(FifoFactory));
        registry
    }

    /// Registers a factory. A factory with the same name replaces the
    /// existing entry in place, preserving iteration order.
    pub fn register(&mut self, factory: Box<dyn SchedulerFactory>) {
        if let Some(existing) = self
            .factories
            .iter_mut()
            .find(|f| f.name() == factory.name())
        {
            *existing = factory;
        } else {
            self.factories.push(factory);
        }
    }

    /// Looks up a factory by discipline name.
    pub fn get(&self, name: &str) -> Option<&dyn SchedulerFactory> {
        self.factories
            .iter()
            .find(|f| f.name() == name)
            .map(|f| f.as_ref())
    }

    /// Builds a fresh scheduler for a named discipline.
    pub fn build(&self, name: &str) -> Option<Box<dyn Scheduler>> {
        self.get(name).map(|f| f.build())
    }

    /// The registered discipline names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Iterates the registered factories in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn SchedulerFactory> {
        self.factories.iter().map(|f| f.as_ref())
    }

    /// Number of registered disciplines.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

/// Factory for the paper's Clockwork scheduler.
#[derive(Clone, Debug, Default)]
pub struct ClockworkFactory {
    /// Configuration every built scheduler starts from.
    pub config: ClockworkSchedulerConfig,
}

impl ClockworkFactory {
    /// A factory building Clockwork schedulers with the given configuration.
    pub fn new(config: ClockworkSchedulerConfig) -> Self {
        ClockworkFactory { config }
    }
}

impl SchedulerFactory for ClockworkFactory {
    fn name(&self) -> &'static str {
        "clockwork"
    }

    fn build(&self) -> Box<dyn Scheduler> {
        Box::new(ClockworkScheduler::new(self.config))
    }
}

/// Factory for the Clockwork scheduler with batch formation disabled: every
/// INFER runs at batch size 1 and admission prices requests at the size-1
/// kernel cost, exactly the pre-batching behavior. This is the honest
/// comparator for the batching figure (`batch_sweep`) and the ablation knob
/// behind it — register it alongside [`ClockworkFactory`] to measure what
/// batch-amortized execution alone buys.
#[derive(Clone, Copy, Debug)]
pub struct ClockworkNoBatchFactory {
    /// Configuration every built scheduler starts from (`batching` is
    /// forced off in [`Default`], and callers should keep it off — the
    /// name would lie otherwise).
    pub config: ClockworkSchedulerConfig,
}

impl Default for ClockworkNoBatchFactory {
    fn default() -> Self {
        ClockworkNoBatchFactory {
            config: ClockworkSchedulerConfig {
                batching: false,
                ..ClockworkSchedulerConfig::default()
            },
        }
    }
}

impl SchedulerFactory for ClockworkNoBatchFactory {
    fn name(&self) -> &'static str {
        "clockwork-nobatch"
    }

    fn build(&self) -> Box<dyn Scheduler> {
        Box::new(ClockworkScheduler::new(self.config))
    }
}

/// Factory for the FIFO ablation scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoFactory;

impl SchedulerFactory for FifoFactory {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn build(&self) -> Box<dyn Scheduler> {
        Box::new(FifoScheduler::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_clockwork_and_fifo_in_order() {
        let registry = SchedulerRegistry::builtin();
        assert_eq!(registry.names(), vec!["clockwork", "fifo"]);
        assert_eq!(registry.len(), 2);
        let clockwork = registry.build("clockwork").expect("clockwork registered");
        assert_eq!(clockwork.name(), "clockwork");
        let fifo = registry.build("fifo").expect("fifo registered");
        assert_eq!(fifo.name(), "fifo");
        assert!(registry.build("nope").is_none());
    }

    #[test]
    fn default_exec_modes_follow_the_discipline() {
        assert_eq!(
            ClockworkFactory::default().default_exec_mode(),
            ExecMode::Exclusive
        );
        assert_eq!(FifoFactory.default_exec_mode(), ExecMode::Exclusive);
    }

    #[test]
    fn re_registration_replaces_in_place() {
        let mut registry = SchedulerRegistry::builtin();
        let tuned = ClockworkSchedulerConfig {
            record_predictions: true,
            ..Default::default()
        };
        registry.register(Box::new(ClockworkFactory::new(tuned)));
        assert_eq!(
            registry.names(),
            vec!["clockwork", "fifo"],
            "replacement keeps order and does not duplicate"
        );
        let factory = registry.get("clockwork").unwrap();
        let built = factory.build();
        let concrete = built
            .as_any()
            .downcast_ref::<ClockworkScheduler>()
            .expect("clockwork factory builds ClockworkScheduler");
        assert!(concrete.config().record_predictions);
    }
}
