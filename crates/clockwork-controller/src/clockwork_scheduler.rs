//! The Clockwork scheduler (§5.3 and Appendix B).
//!
//! All choice in the system is concentrated here. The scheduler keeps a
//! per-model queue of pending requests and, for every (worker, GPU) pair,
//! tops up a *minimal* schedule — by default only 5 ms of work is outstanding
//! on any executor at a time. Keeping the outstanding window small is what
//! lets the controller keep its options open (late binding improves batching
//! opportunities), and it is only possible because worker executions are
//! predictable.
//!
//! INFER scheduling follows the paper's strategy mechanism: for every model
//! with queued requests the scheduler considers each compiled batch size,
//! prefers the largest batch that still meets the earliest deadline of the
//! requests it would serve, and orders candidates by their *required start
//! time* (deadline minus estimated execution time). LOAD scheduling uses the
//! demand/allocation model of Appendix B: a model's load priority is its
//! outstanding work minus the share of GPU capacity already allocated to it
//! on the GPUs where it is resident; UNLOAD victims are chosen
//! least-recently-used. Admission control rejects requests whose SLO cannot
//! be met even in the best case, before any work is wasted on them.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use clockwork_metrics::trace::TraceEvent;
use clockwork_model::{ModelId, ModelSpec, Tier};
use clockwork_sim::engine::FaultKind;
use clockwork_sim::pcie::PcieLink;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionKind, ActionOutcome, ActionResult, GpuId, TimeWindow, WorkerId};

use crate::batching;
use crate::journal::{ChangeJournal, SchedProfile};
use crate::profile::{ActionProfiler, ProfileKey};
use crate::request::{InferenceRequest, RejectReason, RequestOutcome, Response};
use crate::scheduler::{Scheduler, SchedulerCtx, TickOutcome};
use crate::worker_state::{FreeAtIndex, GpuRef, OutstandingAction, WorkerStateTracker};

/// Configuration of the Clockwork scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockworkSchedulerConfig {
    /// How much work to keep outstanding per executor (§5.3: 5 ms).
    pub lookahead: Nanos,
    /// Interval between scheduler ticks when work is pending.
    pub tick_interval: Nanos,
    /// Time reserved for network transfers and output delivery when checking
    /// deadlines.
    pub network_allowance: Nanos,
    /// Extra margin added after an outstanding LOAD before an INFER that
    /// depends on it may start.
    pub load_margin: Nanos,
    /// Width of the execution window granted to LOAD actions.
    pub load_window: Nanos,
    /// Whether to reject requests that cannot meet their SLO (admission
    /// control). Disabled in one of the ablations.
    pub admission_control: bool,
    /// Whether request batching is enabled. Disabled in one of the ablations.
    pub batching: bool,
    /// Horizon over which GPU capacity is compared against model demand when
    /// computing load priorities (Appendix B).
    pub load_priority_horizon: Nanos,
    /// Rolling profile window size (§5.3: last 10 measurements).
    pub profile_window: usize,
    /// Percentile used for duration predictions.
    pub profile_percentile: f64,
    /// Record per-action prediction errors (needed for Fig. 9).
    pub record_predictions: bool,
    /// Whether admission distinguishes service tiers. When set, best-effort
    /// requests must clear a stricter admission bar (see
    /// `best_effort_headroom_milli`) so they are shed before strict-tier
    /// traffic as pressure builds. Inert for all-strict workloads: the tier
    /// check never fires, so legacy scenarios are byte-identical.
    pub tier_aware: bool,
    /// Headroom multiplier (in thousandths) applied to the pressure-adjusted
    /// best-case serving estimate of best-effort requests at admission: with
    /// 6000, a best-effort request is admitted only if *six times* its best
    /// case — including its fair share of the fleet-wide backlog's drain
    /// time — still meets its deadline. Under pressure that bar crosses
    /// while strict admission is still open, so graceful degradation sheds
    /// the discount tier first.
    pub best_effort_headroom_milli: u64,
}

impl Default for ClockworkSchedulerConfig {
    fn default() -> Self {
        ClockworkSchedulerConfig {
            lookahead: Nanos::from_millis(5),
            tick_interval: Nanos::from_millis(1),
            network_allowance: Nanos::from_micros(500),
            load_margin: Nanos::from_micros(500),
            load_window: Nanos::from_millis(20),
            admission_control: true,
            batching: true,
            load_priority_horizon: Nanos::from_millis(100),
            profile_window: 10,
            profile_percentile: 99.0,
            record_predictions: false,
            tier_aware: true,
            best_effort_headroom_milli: 6000,
        }
    }
}

/// One recorded prediction-vs-measurement pair (drives Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    /// Whether this was a LOAD (false: INFER).
    pub is_load: bool,
    /// The controller's predicted duration.
    pub predicted: Nanos,
    /// The measured on-device duration.
    pub measured: Nanos,
    /// The controller's predicted completion time.
    pub predicted_completion: Timestamp,
    /// The actual completion time.
    pub actual_completion: Timestamp,
}

impl PredictionRecord {
    /// Signed duration error in nanoseconds (positive = under-prediction,
    /// i.e. the action ran longer than predicted).
    pub fn duration_error_ns(&self) -> i64 {
        self.measured.as_nanos() as i64 - self.predicted.as_nanos() as i64
    }

    /// Signed completion-time error in nanoseconds (positive = the action
    /// completed later than predicted).
    pub fn completion_error_ns(&self) -> i64 {
        self.actual_completion.as_nanos() as i64 - self.predicted_completion.as_nanos() as i64
    }
}

/// Aggregate counters exposed for tests and experiment output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Requests accepted into a queue.
    pub admitted: u64,
    /// Requests rejected up-front by admission control.
    pub rejected_admission: u64,
    /// Requests rejected after queueing because their deadline lapsed.
    pub rejected_deadline: u64,
    /// Requests rejected because a worker failed/rejected their action.
    pub rejected_worker: u64,
    /// Requests rejected because their worker died mid-flight with no time
    /// left to reissue the work elsewhere.
    pub rejected_worker_failed: u64,
    /// Best-effort requests shed by tier-aware admission.
    pub rejected_shed: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// INFER actions issued.
    pub infer_actions: u64,
    /// LOAD actions issued.
    pub load_actions: u64,
    /// UNLOAD actions issued.
    pub unload_actions: u64,
    /// Requests whose model was not resident anywhere at arrival.
    pub cold_requests: u64,
}

#[derive(Clone, Debug)]
struct PendingRequest {
    request: InferenceRequest,
    deadline: Timestamp,
    cold: bool,
}

#[derive(Clone, Debug)]
struct ModelEntry {
    spec: Arc<ModelSpec>,
    queue: VecDeque<PendingRequest>,
    /// Multiset of the deadlines currently in `queue` (unbounded requests
    /// contribute `Timestamp::MAX`), maintained incrementally on every
    /// push/drain/expiry so the earliest deadline is the first key instead
    /// of an O(queue-length) rescan.
    deadlines: BTreeMap<Timestamp, u32>,
    /// The earliest deadline in `queue` (`Timestamp::MAX` when empty or
    /// all-unbounded); the cached first key of `deadlines`, always exact.
    min_deadline_hint: Timestamp,
    /// Cached `(batch, required_start, suffix_max_required_start)` strategy
    /// candidates in ascending batch order, mirroring Appendix B's strategy
    /// queue. The third element is the maximum `required_start` from this
    /// entry to the end of the list — non-increasing by construction, which
    /// is what lets [`ClockworkScheduler::strategy_for`] binary-search for
    /// the last feasible entry (`required_start` itself is *usually*
    /// non-increasing, but measured profiles can make a larger batch
    /// faster). Valid while `cache_epoch` matches the profiler epoch and
    /// `cache_dirty` is unset.
    strategies: Vec<(u32, Timestamp, Timestamp)>,
    cache_epoch: u64,
    cache_dirty: bool,
    /// The model's compiled batch sizes, ascending — cached off the spec so
    /// the admission path's amortized-cost cover never allocates.
    supported: Vec<u32>,
}

impl ModelEntry {
    fn new(spec: Arc<ModelSpec>) -> Self {
        let supported = spec.supported_batches();
        ModelEntry {
            spec,
            queue: VecDeque::new(),
            deadlines: BTreeMap::new(),
            min_deadline_hint: Timestamp::MAX,
            strategies: Vec::new(),
            cache_epoch: 0,
            cache_dirty: true,
            supported,
        }
    }

    /// Notes that `queue` changed, invalidating the strategy cache.
    fn note_queue_changed(&mut self) {
        self.cache_dirty = true;
    }

    /// Records a deadline entering `queue`.
    fn deadline_added(&mut self, deadline: Timestamp) {
        *self.deadlines.entry(deadline).or_insert(0) += 1;
        if deadline < self.min_deadline_hint {
            self.min_deadline_hint = deadline;
        }
    }

    /// Records a deadline leaving `queue` (dispatch or expiry).
    fn deadline_removed(&mut self, deadline: Timestamp) {
        if let Some(count) = self.deadlines.get_mut(&deadline) {
            *count -= 1;
            if *count == 0 {
                self.deadlines.remove(&deadline);
            }
        }
        if deadline <= self.min_deadline_hint {
            self.min_deadline_hint = self
                .deadlines
                .keys()
                .next()
                .copied()
                .unwrap_or(Timestamp::MAX);
        }
    }
}

#[derive(Clone, Debug)]
struct InFlightBatch {
    requests: Vec<PendingRequest>,
    expected_completion: Timestamp,
}

/// The Clockwork scheduler.
pub struct ClockworkScheduler {
    config: ClockworkSchedulerConfig,
    models: HashMap<ModelId, ModelEntry>,
    queued_models: BTreeSet<ModelId>,
    tracker: WorkerStateTracker,
    profiler: ActionProfiler,
    in_flight: HashMap<clockwork_worker::ActionId, InFlightBatch>,
    in_flight_loads: HashMap<clockwork_worker::ActionId, Timestamp>,
    /// Recent requests rejected up-front *only because their model was cold*
    /// (they would have fit their SLO on a warm GPU). Appendix B drives LOAD
    /// priorities from estimated SLO violations, so these rejections must
    /// still register as demand — otherwise a model whose SLO is tighter than
    /// its own cold-start time is never loaded and never becomes servable.
    cold_rejections: HashMap<ModelId, VecDeque<Timestamp>>,
    stats: SchedulerStats,
    predictions: Vec<PredictionRecord>,
    /// GPUs (by dense tracker index) on which each model is resident or
    /// loading, kept sorted by index. Mirrors the tracker's residency sets so
    /// demand/allocation passes never scan every GPU per model.
    holders: HashMap<ModelId, Vec<(usize, GpuRef)>>,
    /// The inverse index: models resident or loading per GPU, in ascending
    /// `ModelId` order so candidate scans match the dirty-set iteration
    /// order.
    avail_by_gpu: Vec<BTreeSet<ModelId>>,
    /// Workers currently crashed. Tracked separately from per-GPU liveness
    /// so an overlapping single-GPU recovery cannot un-park a GPU whose
    /// whole worker is still down (the worker would silently drop the
    /// actions, leaking their requests).
    down_workers: BTreeSet<WorkerId>,
    /// Per-GPU next-actionable-time index for the INFER executor: the
    /// scheduling pass pulls only GPUs whose executor frees before the
    /// lookahead horizon instead of scanning the whole fleet per event.
    /// Dead GPUs park at `Timestamp::MAX`.
    exec_ready: FreeAtIndex,
    /// The same index for the LOAD executor.
    load_ready: FreeAtIndex,
    /// Change journal driving the early-out tick path: event-driven entry
    /// points mark it dirty, a completed pass marks it clean until the
    /// earliest instant pure time passage could change a decision.
    journal: ChangeJournal,
    /// Self-profiling counters exported through
    /// [`Scheduler::sched_profile`].
    profile: SchedProfile,
    /// Per-model urgency index over the queued models:
    /// `(min_deadline_hint, model)` kept in lock-step with the queues, so
    /// the expiry pass visits only models whose earliest deadline is inside
    /// the expiry window and the quiescence edge reads the global earliest
    /// deadline in O(log n) — instead of rescanning every queued model.
    urgency: BTreeSet<(Timestamp, ModelId)>,
    /// Running upper bound on every model's batch-1 execution estimate
    /// (never decreases), bounding how early any queued deadline can expire.
    max_est1: Nanos,
    /// Anchor of the legacy fixed-cadence tick grid, consulted from
    /// `next_tick(&self)` (hence the interior mutability). `None` exactly
    /// when the legacy tick chain would be stopped, so re-anchoring matches
    /// the rebuild-every-tick scheduler's grid and productive passes land
    /// on byte-identical tick times.
    tick_anchor: Cell<Option<Timestamp>>,
    // Reusable scratch buffers: the steady-state scheduling pass moves these
    // out, refills them, and puts them back, so it allocates nothing once the
    // buffers have grown to the fleet's working-set size.
    scratch_models: Vec<ModelId>,
    scratch_gpus: Vec<GpuRef>,
    scratch_gpu_idx: Vec<usize>,
    scratch_expired: Vec<PendingRequest>,
    scratch_candidates: Vec<ModelId>,
    scratch_demands: Vec<(ModelId, Nanos)>,
    scratch_priorities: Vec<(ModelId, f64)>,
    scratch_gpu_load: Vec<f64>,
    scratch_protect: HashSet<ModelId>,
}

impl ClockworkScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: ClockworkSchedulerConfig) -> Self {
        ClockworkScheduler {
            profiler: ActionProfiler::with_params(config.profile_window, config.profile_percentile),
            config,
            models: HashMap::new(),
            queued_models: BTreeSet::new(),
            tracker: WorkerStateTracker::new(),
            in_flight: HashMap::new(),
            in_flight_loads: HashMap::new(),
            cold_rejections: HashMap::new(),
            stats: SchedulerStats::default(),
            predictions: Vec::new(),
            holders: HashMap::new(),
            avail_by_gpu: Vec::new(),
            down_workers: BTreeSet::new(),
            exec_ready: FreeAtIndex::new(),
            load_ready: FreeAtIndex::new(),
            journal: ChangeJournal::new(),
            profile: SchedProfile::default(),
            urgency: BTreeSet::new(),
            max_est1: Nanos::ZERO,
            tick_anchor: Cell::new(None),
            scratch_models: Vec::new(),
            scratch_gpus: Vec::new(),
            scratch_gpu_idx: Vec::new(),
            scratch_expired: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_demands: Vec::new(),
            scratch_priorities: Vec::new(),
            scratch_gpu_load: Vec::new(),
            scratch_protect: HashSet::new(),
        }
    }

    /// Creates a scheduler with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ClockworkSchedulerConfig::default())
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> &ClockworkSchedulerConfig {
        &self.config
    }

    /// Registers a GPU the scheduler may place work on.
    pub fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        self.tracker.add_gpu(gpu_ref, total_pages, page_size);
        self.avail_by_gpu.push(BTreeSet::new());
        self.exec_ready.push_gpu();
        self.load_ready.push_gpu();
        // Fresh cold capacity is immediately actionable; the next tick must
        // run a full pass (no `schedule()` runs on this path).
        self.journal.note_change();
    }

    /// Records that `model` became resident-or-loading on `gpu_ref` in both
    /// residency indices.
    fn index_add_holder(&mut self, model: ModelId, gpu_ref: GpuRef) {
        let idx = self.tracker.gpu_index(gpu_ref).expect("gpu exists");
        let holders = self.holders.entry(model).or_default();
        if let Err(pos) = holders.binary_search_by_key(&idx, |&(i, _)| i) {
            holders.insert(pos, (idx, gpu_ref));
        }
        self.avail_by_gpu[idx].insert(model);
    }

    /// Records that `model` stopped being resident-or-loading on `gpu_ref`.
    fn index_remove_holder(&mut self, model: ModelId, gpu_ref: GpuRef) {
        let Some(idx) = self.tracker.gpu_index(gpu_ref) else {
            return;
        };
        if let Some(holders) = self.holders.get_mut(&model) {
            if let Ok(pos) = holders.binary_search_by_key(&idx, |&(i, _)| i) {
                holders.remove(pos);
            }
            if holders.is_empty() {
                self.holders.remove(&model);
            }
        }
        self.avail_by_gpu[idx].remove(&model);
    }

    /// Registers a model, seeding its execution profiles from the compiled
    /// latency table and its LOAD profile from the given estimate.
    pub fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos) {
        for profile in &spec.batch_profiles {
            self.profiler
                .seed(ProfileKey::exec(id, profile.batch), profile.latency);
        }
        self.profiler.seed(ProfileKey::load(id), load_seed);
        self.models.insert(id, ModelEntry::new(spec));
        self.max_est1 = self.max_est1.max(self.exec_estimate(id, 1));
        self.journal.note_change();
    }

    /// Registers a model, deriving the LOAD seed from a PCIe link model.
    pub fn add_model_with_link(&mut self, id: ModelId, spec: Arc<ModelSpec>, link: &PcieLink) {
        let load_seed = spec.weights_transfer_duration(link);
        self.add_model(id, spec, load_seed);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// The recorded prediction errors (empty unless
    /// [`ClockworkSchedulerConfig::record_predictions`] is set).
    pub fn predictions(&self) -> &[PredictionRecord] {
        &self.predictions
    }

    /// Number of requests currently queued (not yet dispatched).
    pub fn queued_requests(&self) -> usize {
        self.models.values().map(|m| m.queue.len()).sum()
    }

    /// Number of INFER batches currently in flight.
    pub fn in_flight_batches(&self) -> usize {
        self.in_flight.len()
    }

    /// The controller's view of the cluster (read-only, for tests and the
    /// experiment harness).
    pub fn tracker(&self) -> &WorkerStateTracker {
        &self.tracker
    }

    fn exec_estimate(&self, model: ModelId, batch: u32) -> Nanos {
        Self::exec_estimate_with(
            &self.profiler,
            self.models.get(&model).map(|e| e.spec.as_ref()),
            model,
            batch,
        )
    }

    /// Estimated execution duration for `(model, batch)`.
    ///
    /// Falls back from the rolling profile to the model's compiled latency
    /// table: the smallest kernel that covers `batch`, else the largest
    /// kernel scaled linearly. A fixed constant is the estimate of last
    /// resort only for models with no latency table at all — a hard-coded
    /// 10 ms for every unprofiled batch size would systematically
    /// mis-schedule models whose kernels are far from that value.
    fn exec_estimate_with(
        profiler: &ActionProfiler,
        spec: Option<&ModelSpec>,
        model: ModelId,
        batch: u32,
    ) -> Nanos {
        if let Some(est) = profiler.estimate(ProfileKey::exec(model, batch)) {
            return est.max(Nanos::from_micros(1));
        }
        if let Some(spec) = spec {
            if let Some(profile) = spec.batch_for_count(batch.max(1)) {
                return profile.latency.max(Nanos::from_micros(1));
            }
            if let Some(largest) = spec.batch_profiles.last() {
                let scaled =
                    largest.latency * u64::from(batch.max(1)) / u64::from(largest.batch.max(1));
                return scaled.max(Nanos::from_micros(1));
            }
        }
        Nanos::from_millis(10)
    }

    /// Admission price of one more request for a *warm* model: its share of
    /// draining the backlog it joins (queue + itself), covered greedily by
    /// the largest compiled kernels and split across the GPUs currently
    /// holding the weights, floored at the batch-1 estimate (`est1`). The
    /// floor makes the empty-queue case exactly the legacy size-1 price, so
    /// batch-aware admission changes nothing until a backlog actually forms.
    fn amortized_admission_estimate(&self, model: ModelId, est1: Nanos) -> Nanos {
        let Some(entry) = self.models.get(&model) else {
            return est1;
        };
        let backlog = entry.queue.len() as u32 + 1;
        let holders = self
            .holders
            .get(&model)
            .map(|h| h.len() as u32)
            .unwrap_or(0);
        let spec = entry.spec.as_ref();
        let profiler = &self.profiler;
        batching::amortized_drain_cost(backlog, &entry.supported, holders, |batch| {
            Self::exec_estimate_with(profiler, Some(spec), model, batch)
        })
        .max(est1)
    }

    fn load_estimate(&self, model: ModelId) -> Nanos {
        self.profiler
            .estimate_or(ProfileKey::load(model), Nanos::from_millis(10))
            .max(Nanos::from_micros(1))
    }

    fn reject(
        &mut self,
        pending: &PendingRequest,
        at: Timestamp,
        reason: RejectReason,
        ctx: &mut SchedulerCtx,
    ) {
        match reason {
            RejectReason::CannotMeetSlo => self.stats.rejected_admission += 1,
            RejectReason::DeadlineElapsed => self.stats.rejected_deadline += 1,
            RejectReason::WorkerRejected => self.stats.rejected_worker += 1,
            RejectReason::WorkerFailed => self.stats.rejected_worker_failed += 1,
            RejectReason::BestEffortShed => self.stats.rejected_shed += 1,
            RejectReason::UnknownModel => {}
        }
        ctx.send_response(Response {
            request: pending.request.id,
            model: pending.request.model,
            arrival: pending.request.arrival,
            deadline: pending.deadline,
            outcome: RequestOutcome::Rejected { at, reason },
        });
    }

    /// Drops queued requests that can no longer meet their deadline.
    fn expire_requests(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        // Forget cold-rejection demand that has aged out of the priority
        // horizon, so long-idle models do not keep attracting LOADs.
        if !self.cold_rejections.is_empty() {
            let horizon = self.config.load_priority_horizon;
            self.cold_rejections.retain(|_, history| {
                while history.front().is_some_and(|&t| t + horizon < now) {
                    history.pop_front();
                }
                !history.is_empty()
            });
        }
        if self.urgency.is_empty() {
            return;
        }
        let allowance = self.config.network_allowance;
        // Only models whose earliest deadline falls inside the conservative
        // expiry window (`max_est1` bounds every per-model estimate) can have
        // lapsed requests; the urgency index yields exactly those without
        // touching the rest of the queued set. Rejections must still be
        // emitted in ascending `ModelId` order — the order the full scan over
        // the queued set produced — so the candidate list is re-sorted.
        let global_cutoff = now + self.max_est1 + allowance;
        let mut model_ids = std::mem::take(&mut self.scratch_models);
        model_ids.clear();
        model_ids.extend(
            self.urgency
                .iter()
                .take_while(|&&(hint, _)| hint < global_cutoff)
                .map(|&(_, model)| model),
        );
        model_ids.sort_unstable();
        let mut expired = std::mem::take(&mut self.scratch_expired);
        for &model_id in &model_ids {
            let min_exec = self.exec_estimate(model_id, 1);
            let cutoff = now + min_exec + allowance;
            let (was_queued, old_hint) = {
                let Some(entry) = self.models.get_mut(&model_id) else {
                    continue;
                };
                if cutoff <= entry.min_deadline_hint {
                    // No queued deadline can have lapsed yet.
                    continue;
                }
                let was_queued = !entry.queue.is_empty();
                let old_hint = entry.min_deadline_hint;
                expired.clear();
                entry.queue.retain(|p| {
                    let doomed = p.deadline != Timestamp::MAX && cutoff > p.deadline;
                    if doomed {
                        expired.push(p.clone());
                    }
                    !doomed
                });
                if !expired.is_empty() {
                    entry.note_queue_changed();
                    for p in &expired {
                        entry.deadline_removed(p.deadline);
                    }
                }
                (was_queued, old_hint)
            };
            if !expired.is_empty() {
                self.resync_urgency(model_id, was_queued, old_hint);
            }
            for p in expired.drain(..) {
                self.reject(&p, now, RejectReason::DeadlineElapsed, ctx);
            }
        }
        self.scratch_models = model_ids;
        self.scratch_expired = expired;
    }

    /// Re-syncs the urgency index and the queued-model set after `model`'s
    /// queue or earliest deadline changed. `was_queued`/`old_hint` describe
    /// the state *before* the mutation.
    fn resync_urgency(&mut self, model: ModelId, was_queued: bool, old_hint: Timestamp) {
        let entry = self.models.get(&model).expect("model exists");
        let now_queued = !entry.queue.is_empty();
        let new_hint = entry.min_deadline_hint;
        if was_queued {
            self.urgency.remove(&(old_hint, model));
        }
        if now_queued {
            self.urgency.insert((new_hint, model));
            self.queued_models.insert(model);
        } else {
            self.queued_models.remove(&model);
        }
    }

    /// Estimated completion time of the LOAD currently in flight for a model
    /// on a GPU, if any.
    fn pending_load_completion(&self, gpu_ref: GpuRef, model: ModelId) -> Option<Timestamp> {
        let track = self.tracker.get(gpu_ref)?;
        track
            .outstanding
            .values()
            .filter(|o| o.is_load && o.model == model)
            .map(|o| o.expected_completion)
            .max()
    }

    /// Rebuilds a model's cached `(batch, required_start)` strategy list if
    /// the queue changed or any profile estimate moved since the last build
    /// (Appendix B's strategy queue). The list is independent of the GPU: the
    /// per-GPU `exec_start` feasibility check happens at query time in
    /// [`Self::strategy_for`]. Returns whether a rebuild happened (the
    /// self-profiling `strategies_recomputed` counter).
    fn ensure_strategies(
        config: &ClockworkSchedulerConfig,
        profiler: &ActionProfiler,
        model_id: ModelId,
        entry: &mut ModelEntry,
    ) -> bool {
        let epoch = profiler.model_epoch(model_id);
        if !entry.cache_dirty && entry.cache_epoch == epoch {
            return false;
        }
        entry.cache_dirty = false;
        entry.cache_epoch = epoch;
        let ModelEntry {
            spec,
            queue,
            strategies,
            ..
        } = entry;
        batching::build_strategies(
            queue.iter().map(|p| p.deadline),
            spec.batch_profiles.iter().map(|p| p.batch),
            queue.len() as u32,
            config.network_allowance,
            config.batching,
            |batch| Self::exec_estimate_with(profiler, Some(spec), model_id, batch),
            strategies,
        );
        true
    }

    /// Chooses the best (batch, required-start) strategy for a model given
    /// the earliest time an INFER could start: the largest batch whose
    /// required start has not passed (the paper drops strategies for batch
    /// sizes that are too small when larger ones fit).
    ///
    /// The search itself lives in [`batching::largest_feasible`]: it runs
    /// over the cached suffix maximum of `required_start`, which is
    /// non-increasing by construction (raw `required_start` is *usually*
    /// non-increasing too — each larger batch serves a superset prefix of
    /// the queue with a longer estimate — but measured profiles can invert
    /// that).
    fn strategy_for(entry: &ModelEntry, exec_start: Timestamp) -> Option<(u32, Timestamp)> {
        batching::largest_feasible(&entry.strategies, exec_start)
    }

    /// Tops up INFER schedules on every actionable GPU.
    ///
    /// "Actionable" comes from the per-GPU next-free index: a GPU whose
    /// executor is already committed past the lookahead horizon — or that is
    /// dead — is never visited, so the pass scales with the GPUs that can
    /// accept work, not with the fleet. The index yields registration order,
    /// exactly the order the full scan used, so decisions are unchanged.
    fn schedule_infers(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        if self.queued_models.is_empty() {
            return;
        }
        let horizon = now + self.config.lookahead;
        let mut gpu_indices = std::mem::take(&mut self.scratch_gpu_idx);
        self.exec_ready.actionable_into(horizon, &mut gpu_indices);
        for &gpu_idx in &gpu_indices {
            if self.queued_models.is_empty() {
                break;
            }
            let gpu_ref = self.tracker.gpus()[gpu_idx].gpu_ref;
            while let Some(exec_slot) = self.tracker.get(gpu_ref).map(|t| t.next_exec_slot(now)) {
                if exec_slot >= horizon {
                    break;
                }
                // Candidate models: queued requests + weights available here.
                // Walk the smaller of the dirty set and this GPU's residency
                // set; both iterate in ascending ModelId order, so the scan
                // visits the same candidates in the same order as filtering
                // the full dirty set would.
                let mut candidates = std::mem::take(&mut self.scratch_candidates);
                candidates.clear();
                {
                    let queued = &self.queued_models;
                    let avail = &self.avail_by_gpu[gpu_idx];
                    if avail.len() <= queued.len() {
                        candidates.extend(avail.iter().copied().filter(|m| queued.contains(m)));
                    } else {
                        candidates.extend(queued.iter().copied().filter(|m| avail.contains(m)));
                    }
                }
                let mut best: Option<(ModelId, u32, Timestamp, Timestamp)> = None;
                self.profile.candidates_scanned += candidates.len() as u64;
                for &model_id in &candidates {
                    let track = self.tracker.get(gpu_ref).expect("gpu exists");
                    let exec_start = if track.is_resident(model_id) {
                        exec_slot
                    } else if track.loading.contains(&model_id) {
                        match self.pending_load_completion(gpu_ref, model_id) {
                            Some(done) => exec_slot.max(done + self.config.load_margin),
                            None => exec_slot.max(now + self.config.load_margin),
                        }
                    } else {
                        continue;
                    };
                    let Some(entry) = self.models.get_mut(&model_id) else {
                        continue;
                    };
                    if Self::ensure_strategies(&self.config, &self.profiler, model_id, entry) {
                        self.profile.strategies_recomputed += 1;
                    }
                    if let Some((batch, required_start)) = Self::strategy_for(entry, exec_start) {
                        let better = match &best {
                            None => true,
                            Some((_, _, best_required, _)) => required_start < *best_required,
                        };
                        if better {
                            best = Some((model_id, batch, required_start, exec_start));
                        }
                    }
                }
                self.scratch_candidates = candidates;
                let Some((model_id, batch, _required, exec_start)) = best else {
                    break;
                };
                self.dispatch_infer(now, gpu_ref, model_id, batch, exec_start, ctx);
            }
        }
        self.scratch_gpu_idx = gpu_indices;
    }

    fn dispatch_infer(
        &mut self,
        now: Timestamp,
        gpu_ref: GpuRef,
        model_id: ModelId,
        batch: u32,
        exec_start: Timestamp,
        ctx: &mut SchedulerCtx,
    ) {
        let est = self.exec_estimate(model_id, batch);
        let allowance = self.config.network_allowance;
        let entry = self.models.get_mut(&model_id).expect("model exists");
        let was_queued = !entry.queue.is_empty();
        let old_hint = entry.min_deadline_hint;
        let serve = (batch as usize).min(entry.queue.len());
        let requests: Vec<PendingRequest> = entry.queue.drain(..serve).collect();
        entry.note_queue_changed();
        for p in &requests {
            entry.deadline_removed(p.deadline);
        }
        self.resync_urgency(model_id, was_queued, old_hint);
        let min_deadline = requests
            .iter()
            .map(|p| p.deadline)
            .min()
            .unwrap_or(Timestamp::MAX);
        let latest = if min_deadline == Timestamp::MAX {
            Timestamp::MAX
        } else {
            (min_deadline - est - allowance).max(exec_start)
        };
        let window = TimeWindow {
            earliest: exec_start,
            latest,
        };
        let request_ids: Vec<u64> = requests.iter().map(|p| p.request.id.0).collect();
        let action_id = ctx.send_action(
            gpu_ref.worker,
            gpu_ref.gpu,
            ActionKind::Infer {
                model: model_id,
                batch,
                request_ids,
            },
            window,
            est,
        );
        let expected_completion = exec_start + est;
        let track = self.tracker.get_mut(gpu_ref).expect("gpu exists");
        track.note_infer_sent(
            OutstandingAction {
                id: action_id,
                model: model_id,
                expected_completion,
                is_load: false,
            },
            exec_start,
            est,
        );
        let exec_free_at = track.exec_free_at;
        if let Some(idx) = self.tracker.gpu_index(gpu_ref) {
            self.exec_ready.update(idx, exec_free_at);
        }
        self.in_flight.insert(
            action_id,
            InFlightBatch {
                requests,
                expected_completion,
            },
        );
        self.stats.infer_actions += 1;
        let _ = now;
    }

    /// Demand (outstanding estimated execution time) per queued model,
    /// written into `demands` in ascending `ModelId` order so every
    /// downstream float accumulation is run-to-run deterministic.
    fn model_demands_into(&mut self, now: Timestamp, demands: &mut Vec<(ModelId, Nanos)>) {
        demands.clear();
        let mut models = std::mem::take(&mut self.scratch_models);
        models.clear();
        models.extend(self.queued_models.iter().copied());
        for &model_id in &models {
            let Some(entry) = self.models.get(&model_id) else {
                continue;
            };
            let count = entry.queue.len() as u32;
            if count == 0 {
                continue;
            }
            let batch = entry
                .spec
                .batch_for_count(count)
                .map(|p| p.batch)
                .unwrap_or(entry.spec.max_batch().max(1));
            let per_request = self.exec_estimate(model_id, batch) / u64::from(batch.max(1));
            demands.push((model_id, per_request * u64::from(count)));
        }
        // Recent cold-start rejections are unfulfilled demand too (Appendix
        // B's "estimated SLO violations"): without them a model whose SLO is
        // tighter than its cold-start time would never be prioritised for a
        // LOAD even though clients keep asking for it.
        if !self.cold_rejections.is_empty() {
            models.clear();
            models.extend(self.cold_rejections.keys().copied());
            models.sort_unstable();
            for &model_id in &models {
                let recent = self.cold_rejections[&model_id]
                    .iter()
                    .filter(|&&t| t + self.config.load_priority_horizon >= now)
                    .count() as u64;
                if recent == 0 {
                    continue;
                }
                let add = self.exec_estimate(model_id, 1) * recent;
                match demands.binary_search_by_key(&model_id, |&(m, _)| m) {
                    Ok(i) => demands[i].1 += add,
                    Err(i) => demands.insert(i, (model_id, add)),
                }
            }
        }
        self.scratch_models = models;
    }

    /// Load priority of each queued model with respect to one GPU
    /// (Appendix B): demand minus the GPU capacity already allocated to it
    /// elsewhere. Holder lookups come from the persistent residency index,
    /// and per-GPU loads accumulate into a dense scratch vector, so the pass
    /// is linear in (demand models + their holders) rather than models ×
    /// GPUs.
    fn load_priorities_into(
        &self,
        demands: &[(ModelId, Nanos)],
        gpu_load: &mut Vec<f64>,
        out: &mut Vec<(ModelId, f64)>,
    ) {
        let capacity = self.config.load_priority_horizon.as_secs_f64();
        gpu_load.clear();
        gpu_load.resize(self.tracker.len(), 0.0);
        out.clear();
        for &(model_id, demand) in demands {
            let Some(holders) = self.holders.get(&model_id) else {
                continue;
            };
            let share = demand.as_secs_f64() / holders.len() as f64;
            for &(idx, _) in holders {
                gpu_load[idx] += share;
            }
        }
        for &(model_id, demand) in demands {
            let mut served = 0.0;
            if let Some(holders) = self.holders.get(&model_id) {
                let share = demand.as_secs_f64() / holders.len() as f64;
                for &(idx, _) in holders {
                    let load = gpu_load[idx].max(1e-12);
                    served += share * (capacity / load);
                }
            }
            out.push((model_id, demand.as_secs_f64() - served));
        }
        // Ties on priority break by ModelId so the ordering (and therefore
        // the LOAD placement) is identical across runs.
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
    }

    /// Tops up LOAD schedules on every actionable GPU (see
    /// [`ClockworkScheduler::schedule_infers`] for the index discipline),
    /// evicting LRU models when needed.
    fn schedule_loads(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        if self.queued_models.is_empty() && self.cold_rejections.is_empty() {
            return;
        }
        let horizon = now + self.config.lookahead;
        let mut demands = std::mem::take(&mut self.scratch_demands);
        self.model_demands_into(now, &mut demands);
        let mut gpu_load = std::mem::take(&mut self.scratch_gpu_load);
        let mut priorities = std::mem::take(&mut self.scratch_priorities);
        let mut gpu_indices = std::mem::take(&mut self.scratch_gpu_idx);
        self.load_ready.actionable_into(horizon, &mut gpu_indices);
        // Priorities depend only on `demands` (fixed for the pass) and on
        // residency, so they are computed lazily once and reused across GPUs
        // and slots — `dispatch_load` is the only thing that can change
        // residency mid-pass (it evicts/loads even when it returns `false`),
        // and it marks them stale. Recomputing from unchanged inputs yields
        // the identical sorted list, so this is decision-preserving.
        let mut priorities_fresh = false;
        'gpus: for &gpu_idx in &gpu_indices {
            let gpu_ref = self.tracker.gpus()[gpu_idx].gpu_ref;
            while let Some(load_slot) = self.tracker.get(gpu_ref).map(|t| t.next_load_slot(now)) {
                if load_slot >= horizon {
                    break;
                }
                if !priorities_fresh {
                    self.load_priorities_into(&demands, &mut gpu_load, &mut priorities);
                    priorities_fresh = true;
                    self.profile.load_prio_recomputes += 1;
                    // Sorted descending: if even the top priority is not
                    // positive, no GPU anywhere can receive a LOAD this pass.
                    if priorities.first().is_none_or(|&(_, p)| p <= 0.0) {
                        break 'gpus;
                    }
                }
                // Highest-priority model with positive unfulfilled demand that
                // is not already available on this GPU.
                let avail = &self.avail_by_gpu[gpu_idx];
                let candidate = priorities
                    .iter()
                    .find(|(model_id, priority)| *priority > 0.0 && !avail.contains(model_id))
                    .map(|&(model_id, _)| model_id);
                let Some(model_id) = candidate else {
                    break;
                };
                priorities_fresh = false;
                if !self.dispatch_load(now, gpu_ref, model_id, load_slot, ctx) {
                    break;
                }
            }
        }
        self.scratch_demands = demands;
        self.scratch_gpu_load = gpu_load;
        self.scratch_priorities = priorities;
        self.scratch_gpu_idx = gpu_indices;
    }

    fn dispatch_load(
        &mut self,
        now: Timestamp,
        gpu_ref: GpuRef,
        model_id: ModelId,
        load_slot: Timestamp,
        ctx: &mut SchedulerCtx,
    ) -> bool {
        let Some(entry) = self.models.get(&model_id) else {
            return false;
        };
        let weights_bytes = entry.spec.weights_bytes();
        let est = self.load_estimate(model_id);
        // Make room first: evict least-recently-used models that have no
        // queued requests and no outstanding work.
        let mut protect = std::mem::take(&mut self.scratch_protect);
        protect.clear();
        protect.extend(self.queued_models.iter().copied());
        if let Some(track) = self.tracker.get(gpu_ref) {
            protect.extend(track.outstanding.values().map(|o| o.model));
        }
        let mut room = true;
        loop {
            let track = self.tracker.get(gpu_ref).expect("gpu exists");
            let pages = track.pages_for(weights_bytes);
            if pages <= track.free_pages {
                break;
            }
            let Some(victim) = track.lru_candidate(&protect) else {
                room = false;
                break;
            };
            let track = self.tracker.get_mut(gpu_ref).expect("gpu exists");
            track.note_unload_sent(victim);
            self.index_remove_holder(victim, gpu_ref);
            ctx.send_action(
                gpu_ref.worker,
                gpu_ref.gpu,
                ActionKind::Unload { model: victim },
                TimeWindow::always(),
                Nanos::from_micros(5),
            );
            self.stats.unload_actions += 1;
        }
        self.scratch_protect = protect;
        if !room {
            return false;
        }
        let window = TimeWindow {
            earliest: load_slot,
            latest: load_slot + self.config.load_window,
        };
        let action_id = ctx.send_action(
            gpu_ref.worker,
            gpu_ref.gpu,
            ActionKind::Load { model: model_id },
            window,
            est,
        );
        let expected_completion = load_slot + est;
        let track = self.tracker.get_mut(gpu_ref).expect("gpu exists");
        let pages = track.pages_for(weights_bytes);
        track.note_load_sent(
            OutstandingAction {
                id: action_id,
                model: model_id,
                expected_completion,
                is_load: true,
            },
            pages,
            load_slot,
            est,
        );
        let load_free_at = track.load_free_at;
        if let Some(idx) = self.tracker.gpu_index(gpu_ref) {
            self.load_ready.update(idx, load_free_at);
        }
        self.index_add_holder(model_id, gpu_ref);
        self.in_flight_loads.insert(action_id, expected_completion);
        self.stats.load_actions += 1;
        // The cold-start demand that motivated this LOAD is now being acted
        // upon; future cold rejections will re-register if the model is ever
        // evicted again.
        self.cold_rejections.remove(&model_id);
        let _ = now;
        true
    }

    fn schedule(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        self.expire_requests(now, ctx);
        self.schedule_infers(now, ctx);
        self.schedule_loads(now, ctx);
        // Loading decisions may enable further INFERs (cold models).
        self.schedule_infers(now, ctx);
        self.refresh_clean_until(now);
    }

    /// Runs one full scheduling pass unconditionally, bypassing the
    /// early-out journal. This is the rebuild-per-tick oracle surface the
    /// differential tests drive; production paths go through the trait
    /// callbacks.
    pub fn run_full_pass(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) {
        self.schedule(now, ctx);
    }

    /// Whether any queued request, in-flight INFER or in-flight LOAD exists
    /// — the "busy" condition under which the rebuild-every-tick scheduler
    /// kept its fixed-cadence chain alive. [`Scheduler::next_tick`] gates on
    /// it, and the differential tests use it to replay the legacy cadence.
    pub fn has_outstanding_work(&self) -> bool {
        !self.queued_models.is_empty()
            || !self.in_flight.is_empty()
            || !self.in_flight_loads.is_empty()
    }

    /// Recomputes the journal's clean horizon after a completed pass: the
    /// earliest future instant at which pure time passage — no request, no
    /// result, no fault — could make another pass produce a decision. Every
    /// time-driven enabler in the pass is covered by one edge below;
    /// everything else is monotone in `now` (rising `exec_start` only
    /// shrinks strategy feasibility; warm demand and residency only change
    /// through journaled events). Edges err early, never late: a too-early
    /// edge costs a no-op pass at a grid time the rebuild-every-tick
    /// scheduler also ticked, a too-late edge would skip a decision.
    fn refresh_clean_until(&mut self, now: Timestamp) {
        if self.queued_models.is_empty() && self.cold_rejections.is_empty() {
            // Every stage of the pass early-returns in this state, at any
            // `now`: the scheduler is quiescent until an event arrives.
            self.journal.mark_clean_until(Timestamp::MAX);
            return;
        }
        let lookahead = self.config.lookahead;
        let horizon = now + lookahead;
        let mut edge = Timestamp::MAX;
        if !self.queued_models.is_empty() {
            // An INFER executor crossing into the lookahead horizon opens a
            // slot for the queued work.
            if let Some(free_at) = self.exec_ready.next_beyond(horizon) {
                edge = edge.min(free_at - lookahead);
            }
            // The earliest queued deadline can lapse (`max_est1` bounds the
            // per-model estimate the expiry cutoff uses).
            if let Some(&(hint, _)) = self.urgency.iter().next() {
                if hint != Timestamp::MAX {
                    edge = edge.min(hint - self.max_est1 - self.config.network_allowance);
                }
            }
        }
        // A LOAD executor crossing into the horizon opens a load slot (cold
        // demand alone is enough for the load pass to act).
        if let Some(free_at) = self.load_ready.next_beyond(horizon) {
            edge = edge.min(free_at - lookahead);
        }
        // Cold-rejection demand ages out of the priority horizon, which can
        // reorder LOAD priorities.
        for history in self.cold_rejections.values() {
            if let Some(&front) = history.front() {
                edge = edge.min(front + self.config.load_priority_horizon);
            }
        }
        self.journal.mark_clean_until(edge);
    }

    fn handle_infer_result(
        &mut self,
        now: Timestamp,
        result: &ActionResult,
        ctx: &mut SchedulerCtx,
    ) {
        let gpu_ref = GpuRef {
            worker: result.worker,
            gpu: result.gpu,
        };
        if let Some(track) = self.tracker.get_mut(gpu_ref) {
            track.note_infer_result(result.action_id);
        }
        let Some(batch) = self.in_flight.remove(&result.action_id) else {
            return;
        };
        match &result.outcome {
            ActionOutcome::Success(timing) => {
                self.profiler.record(
                    ProfileKey::exec(result.model, result.batch),
                    timing.device_duration,
                );
                // The batch-1 estimate may have moved; keep the expiry bound
                // a running maximum over every model's current estimate.
                self.max_est1 = self.max_est1.max(self.exec_estimate(result.model, 1));
                if self.config.record_predictions {
                    self.predictions.push(PredictionRecord {
                        is_load: false,
                        predicted: result.expected_duration,
                        measured: timing.device_duration,
                        predicted_completion: batch.expected_completion,
                        actual_completion: timing.end,
                    });
                }
                for pending in &batch.requests {
                    self.stats.completed += 1;
                    ctx.send_response(Response {
                        request: pending.request.id,
                        model: pending.request.model,
                        arrival: pending.request.arrival,
                        deadline: pending.deadline,
                        outcome: RequestOutcome::Success {
                            completed: timing.end,
                            batch: result.batch,
                            worker: result.worker,
                            gpu: result.gpu,
                            cold_start: pending.cold,
                        },
                    });
                }
            }
            ActionOutcome::Error { at, .. } => {
                self.requeue_or_reject(now, batch.requests, *at, RejectReason::WorkerRejected, ctx);
            }
        }
    }

    /// Re-queues the requests of a failed batch that still have a chance of
    /// meeting their deadline; rejects the rest at `at` with `reason`. Shared
    /// by worker-reported action errors and fault resolution (a crashed
    /// worker never reports anything, so the controller synthesises the
    /// failure itself).
    fn requeue_or_reject(
        &mut self,
        now: Timestamp,
        requests: Vec<PendingRequest>,
        at: Timestamp,
        reason: RejectReason,
        ctx: &mut SchedulerCtx,
    ) {
        for pending in requests {
            let min_exec = self.exec_estimate(pending.request.model, 1);
            let still_possible = pending.deadline == Timestamp::MAX
                || now + min_exec + self.config.network_allowance < pending.deadline;
            if still_possible {
                let model = pending.request.model;
                let entry = self.models.get_mut(&model).expect("model exists");
                let was_queued = !entry.queue.is_empty();
                let old_hint = entry.min_deadline_hint;
                entry.note_queue_changed();
                entry.deadline_added(pending.deadline);
                entry.queue.push_front(pending);
                self.resync_urgency(model, was_queued, old_hint);
            } else {
                self.reject(&pending, at, reason, ctx);
            }
        }
    }

    /// Handles one GPU dying (alone or as part of a worker crash): resolves
    /// every outstanding action on it — the worker will never answer them —
    /// invalidates the residency indices and cached demand that pointed at
    /// it, and parks the GPU out of both scheduling indices until recovery.
    fn note_gpu_failed(&mut self, now: Timestamp, gpu_ref: GpuRef, ctx: &mut SchedulerCtx) {
        let Some(gpu_idx) = self.tracker.gpu_index(gpu_ref) else {
            return;
        };
        // Resolve outstanding actions in action-id (issue) order so requeue
        // order — and therefore the digest — is deterministic.
        let mut lost: Vec<OutstandingAction> = self
            .tracker
            .get(gpu_ref)
            .map(|t| t.outstanding.values().copied().collect())
            .unwrap_or_default();
        lost.sort_unstable_by_key(|o| o.id);
        for o in &lost {
            if o.is_load {
                self.in_flight_loads.remove(&o.id);
            } else if let Some(batch) = self.in_flight.remove(&o.id) {
                self.requeue_or_reject(now, batch.requests, now, RejectReason::WorkerFailed, ctx);
            }
        }
        // Drop the GPU from both residency indices.
        let held: Vec<ModelId> = self.avail_by_gpu[gpu_idx].iter().copied().collect();
        for model in held {
            self.index_remove_holder(model, gpu_ref);
        }
        // Wipe the tracker's view; the GPU is cold and unschedulable.
        if let Some(track) = self.tracker.get_mut(gpu_ref) {
            track.note_fault(now);
        }
        self.exec_ready.update(gpu_idx, Timestamp::MAX);
        self.load_ready.update(gpu_idx, Timestamp::MAX);
    }

    /// Re-admits a recovered GPU as cold capacity. Spurious recoveries —
    /// e.g. a `GpuRecover` whose failure window was already superseded by a
    /// worker restart — are no-ops so they cannot push the GPU's free times
    /// (and its place in the scheduling indices) into the future.
    fn note_gpu_recovered(&mut self, now: Timestamp, gpu_ref: GpuRef) {
        let Some(gpu_idx) = self.tracker.gpu_index(gpu_ref) else {
            return;
        };
        if let Some(track) = self.tracker.get_mut(gpu_ref) {
            if track.alive {
                return;
            }
            track.note_recovered(now);
            self.exec_ready.update(gpu_idx, track.exec_free_at);
            self.load_ready.update(gpu_idx, track.load_free_at);
        }
    }

    /// The GPUs of one worker, in registration order.
    fn worker_gpu_refs(&mut self, worker: WorkerId) -> Vec<GpuRef> {
        let mut refs = std::mem::take(&mut self.scratch_gpus);
        refs.clear();
        refs.extend(
            self.tracker
                .gpus()
                .iter()
                .filter(|g| g.gpu_ref.worker == worker)
                .map(|g| g.gpu_ref),
        );
        refs
    }

    fn handle_load_result(&mut self, result: &ActionResult) {
        let gpu_ref = GpuRef {
            worker: result.worker,
            gpu: result.gpu,
        };
        let success = result.is_success();
        if let Some(track) = self.tracker.get_mut(gpu_ref) {
            // A stale result (its action was already resolved by a fault)
            // must not touch the residency indices either: the entry it
            // would remove may belong to a newer LOAD of the same model
            // issued after the GPU recovered.
            let applied = track.note_load_result(result.action_id, result.model, success);
            if applied && !success {
                // The model never became resident; drop it from the indices.
                self.index_remove_holder(result.model, gpu_ref);
            }
        }
        let expected_completion = self.in_flight_loads.remove(&result.action_id);
        if let ActionOutcome::Success(timing) = &result.outcome {
            self.profiler
                .record(ProfileKey::load(result.model), timing.device_duration);
            if self.config.record_predictions {
                self.predictions.push(PredictionRecord {
                    is_load: true,
                    predicted: result.expected_duration,
                    measured: timing.device_duration,
                    predicted_completion: expected_completion.unwrap_or(timing.end),
                    actual_completion: timing.end,
                });
            }
        }
    }
}

impl Scheduler for ClockworkScheduler {
    fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        ClockworkScheduler::add_gpu(self, gpu_ref, total_pages, page_size);
    }

    fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos) {
        ClockworkScheduler::add_model(self, id, spec, load_seed);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_request(&mut self, now: Timestamp, request: InferenceRequest, ctx: &mut SchedulerCtx) {
        if !self.models.contains_key(&request.model) {
            ctx.send_response(Response {
                request: request.id,
                model: request.model,
                arrival: request.arrival,
                deadline: request.deadline(),
                outcome: RequestOutcome::Rejected {
                    at: now,
                    reason: RejectReason::UnknownModel,
                },
            });
            return;
        }
        let cold = !self.holders.contains_key(&request.model);
        if cold {
            self.stats.cold_requests += 1;
        }
        let deadline = request.deadline();
        let pending = PendingRequest {
            request,
            deadline,
            cold,
        };
        // Admission control: can this request possibly meet its SLO? Warm
        // models are priced against the batch-amortized cost of draining the
        // backlog this request joins (its share of covering the queue with
        // the largest compiled kernels, split across the GPUs holding the
        // weights), not the optimistic batch-1 kernel — so under overload a
        // request doomed by queueing is shed up front instead of polluting
        // the FIFO prefix every formed batch must serve. With an empty queue
        // the amortized price IS the batch-1 estimate, so light load admits
        // identically; with `batching` off the pricing stays pure batch-1
        // (the PR 6 comparator behavior).
        if self.config.admission_control && deadline != Timestamp::MAX {
            let exec = self.exec_estimate(request.model, 1);
            let load = if cold {
                self.load_estimate(request.model)
            } else {
                Nanos::ZERO
            };
            let priced_exec = if cold || !self.config.batching {
                exec
            } else {
                self.amortized_admission_estimate(request.model, exec)
            };
            let best_case = priced_exec + load + self.config.network_allowance;
            if now + best_case > deadline {
                let warm_case = exec + self.config.network_allowance;
                let doomed_only_by_cold_start = cold && now + warm_case <= deadline;
                // Estimate-bearing rejection span: only the admission path
                // knows the best-case serving estimate that doomed the
                // request, so the facade defers to this span instead of
                // synthesizing an estimate-free one from the response.
                ctx.trace(TraceEvent::Rejected {
                    request: request.id.0,
                    model: request.model.0,
                    reason: RejectReason::CannotMeetSlo.as_str(),
                    estimate: best_case.as_nanos(),
                });
                self.reject(&pending, now, RejectReason::CannotMeetSlo, ctx);
                if doomed_only_by_cold_start {
                    // The rejection is an SLO violation caused purely by the
                    // model not being resident; record it so the LOAD
                    // scheduler sees the demand (Appendix B) and future
                    // requests for this model can be served.
                    let history = self.cold_rejections.entry(request.model).or_default();
                    history.push_back(now);
                    if history.len() > 4096 {
                        history.pop_front();
                    }
                    self.schedule(now, ctx);
                }
                return;
            }
            // Graceful degradation: best-effort requests must clear the same
            // bar with headroom to spare. The amortized `best_case` grows
            // with the backlog, so under flash-crowd or churn pressure the
            // scaled bar crosses first and the discount tier is shed while
            // strict traffic is still admitted. All-strict workloads never
            // reach this branch.
            if self.config.tier_aware && request.tier == Tier::BestEffort {
                // The per-model amortized estimate is blind to cross-model
                // GPU contention: under a fleet-wide burst every model's own
                // queue stays shallow while the GPUs drown in aggregate
                // backlog (found by the flash-crowd zoo scenario — every
                // loss was a queue-deadline miss and not one request was
                // shed). Fold the aggregate backlog's fair drain share into
                // the best-effort bar; strict admission is untouched.
                let queued: u64 = self.models.values().map(|e| e.queue.len() as u64).sum();
                let alive = self
                    .tracker
                    .gpus()
                    .iter()
                    .filter(|g| g.alive)
                    .count()
                    .max(1) as u64;
                let pressure = Nanos::from_nanos(exec.as_nanos().saturating_mul(queued) / alive);
                let scaled = Nanos::from_nanos(
                    (best_case + pressure)
                        .as_nanos()
                        .saturating_mul(self.config.best_effort_headroom_milli)
                        / 1000,
                );
                if now + scaled > deadline {
                    ctx.trace(TraceEvent::Rejected {
                        request: request.id.0,
                        model: request.model.0,
                        reason: RejectReason::BestEffortShed.as_str(),
                        estimate: scaled.as_nanos(),
                    });
                    self.reject(&pending, now, RejectReason::BestEffortShed, ctx);
                    return;
                }
            }
        }
        self.stats.admitted += 1;
        if ctx.tracing() {
            // The best-case serving estimate that justified admission
            // (batch-1 execution + any pending cold load + network
            // allowance). Recomputed only under tracing so the off path
            // stays untouched.
            let exec = self.exec_estimate(request.model, 1);
            let load = if cold {
                self.load_estimate(request.model)
            } else {
                Nanos::ZERO
            };
            let estimate = exec + load + self.config.network_allowance;
            ctx.trace(TraceEvent::Admitted {
                request: request.id.0,
                model: request.model.0,
                estimate: estimate.as_nanos(),
            });
        }
        let entry = self.models.get_mut(&request.model).expect("checked above");
        let was_queued = !entry.queue.is_empty();
        let old_hint = entry.min_deadline_hint;
        entry.note_queue_changed();
        entry.deadline_added(pending.deadline);
        entry.queue.push_back(pending);
        self.resync_urgency(request.model, was_queued, old_hint);
        self.schedule(now, ctx);
        if ctx.tracing() {
            // If the dispatch pass left this request queued, the urgency
            // index deferred it — record when the model's queue next turns
            // urgent (its earliest queued deadline).
            let entry = self.models.get(&request.model).expect("checked above");
            if entry.queue.back().map(|p| p.request.id) == Some(request.id) {
                ctx.trace(TraceEvent::Deferred {
                    request: request.id.0,
                    model: request.model.0,
                    until: entry.min_deadline_hint.as_nanos(),
                });
            }
        }
    }

    fn on_result(&mut self, now: Timestamp, result: &ActionResult, ctx: &mut SchedulerCtx) {
        match result.action_type {
            "INFER" => self.handle_infer_result(now, result, ctx),
            "LOAD" => self.handle_load_result(result),
            _ => {}
        }
        self.schedule(now, ctx);
    }

    fn on_tick(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) -> TickOutcome {
        if !self.journal.needs_pass(now) {
            // Nothing changed since the last pass and no time edge was
            // crossed: the pass would be a provable no-op. O(1).
            self.profile.ticks_skipped += 1;
            return TickOutcome::Skipped;
        }
        self.profile.ticks_full += 1;
        self.schedule(now, ctx);
        TickOutcome::Full
    }

    fn on_fault(&mut self, now: Timestamp, fault: &FaultKind, ctx: &mut SchedulerCtx) {
        match *fault {
            FaultKind::WorkerCrash { worker } => {
                self.down_workers.insert(WorkerId(worker));
                let refs = self.worker_gpu_refs(WorkerId(worker));
                for &gpu_ref in &refs {
                    self.note_gpu_failed(now, gpu_ref, ctx);
                }
                self.scratch_gpus = refs;
            }
            FaultKind::WorkerRestart { worker } => {
                // A restart replaces the machine: every GPU of the worker
                // comes back cold, superseding any individual GPU failure
                // whose window overlapped the downtime (the worker side
                // clears its per-GPU failed flags the same way).
                self.down_workers.remove(&WorkerId(worker));
                let refs = self.worker_gpu_refs(WorkerId(worker));
                for &gpu_ref in &refs {
                    self.note_gpu_recovered(now, gpu_ref);
                }
                self.scratch_gpus = refs;
            }
            FaultKind::GpuFail { worker, gpu } => {
                self.note_gpu_failed(
                    now,
                    GpuRef {
                        worker: WorkerId(worker),
                        gpu: GpuId(gpu),
                    },
                    ctx,
                );
            }
            FaultKind::GpuRecover { worker, gpu } => {
                // While the whole worker is down, a single-GPU recovery
                // cannot make the GPU reachable — leave it parked; the
                // worker restart will re-admit every GPU.
                if !self.down_workers.contains(&WorkerId(worker)) {
                    self.note_gpu_recovered(
                        now,
                        GpuRef {
                            worker: WorkerId(worker),
                            gpu: GpuId(gpu),
                        },
                    );
                }
            }
            // Link faults are a transport matter: the scheduler observes
            // their effects as late-arriving results and window-elapsed
            // rejections, which the normal result path already handles.
            FaultKind::LinkDegrade { .. }
            | FaultKind::LinkRestore { .. }
            | FaultKind::PartitionStart { .. }
            | FaultKind::PartitionEnd { .. } => {}
            // The joined worker's GPUs were announced through `add_gpu`
            // before this hook fired; the schedule() below starts placing
            // work on the cold capacity.
            FaultKind::WorkerJoin { .. } => {}
        }
        self.schedule(now, ctx);
    }

    /// Ticks are scheduled only when (and exactly when) a pass could do
    /// productive work, but always *on the legacy fixed-cadence grid*: the
    /// rebuild-every-tick scheduler ticked at `anchor + k·tick_interval`
    /// for as long as work was pending, with the anchor (re)set whenever
    /// the chain started from idle. Deadline-expiry rejections are stamped
    /// with the tick time they run at, so productive passes must land on
    /// byte-identical instants — this returns only points of that grid,
    /// skipping the prefix the journal proves would early-out, and `None`
    /// when no grid point can ever be productive (quiescent, or settled
    /// until the next event).
    fn next_tick(&self, now: Timestamp) -> Option<Timestamp> {
        if !self.has_outstanding_work() {
            // The legacy chain stopped here; the anchor resets exactly as
            // its grid did.
            self.tick_anchor.set(None);
            return None;
        }
        let anchor = match self.tick_anchor.get() {
            Some(anchor) => anchor,
            None => {
                // Work just appeared from idle: the legacy chain would have
                // scheduled its first tick from this instant.
                self.tick_anchor.set(Some(now));
                now
            }
        };
        let interval = self.config.tick_interval.as_nanos();
        if interval == 0 {
            return Some(now);
        }
        // Earliest instant a pass could be productive. A dirty journal means
        // "the very next grid point"; a clean one lets the whole provably
        // no-op prefix of the grid go unscheduled.
        let earliest = if self.journal.is_dirty() {
            now
        } else {
            let clean_until = self.journal.clean_until();
            if clean_until == Timestamp::MAX {
                // Busy but settled: every future tick would early-out until
                // an event re-dirties the state — and that event's own pass
                // restarts the chain.
                return None;
            }
            clean_until
        };
        // First grid point strictly after `now` and not before `earliest`.
        let base = earliest.max(now);
        let elapsed = (base - anchor).as_nanos();
        let k = elapsed / interval;
        let next = if base > now && elapsed % interval == 0 {
            k
        } else {
            k + 1
        };
        Some(anchor + self.config.tick_interval * next)
    }

    fn sched_profile(&self) -> SchedProfile {
        self.profile
    }

    fn name(&self) -> &'static str {
        // The batching switch is a policy difference large enough to be its
        // own discipline: reports and benches must never conflate the two.
        if self.config.batching {
            "clockwork"
        } else {
            "clockwork-nobatch"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_worker::{ActionId, ActionTiming, GpuId, WorkerId};

    const PAGE: u64 = 16 * 1024 * 1024;

    fn gref() -> GpuRef {
        GpuRef {
            worker: WorkerId(0),
            gpu: GpuId(0),
        }
    }

    fn resnet() -> Arc<ModelSpec> {
        Arc::new(ModelZoo::new().resnet50().clone())
    }

    fn scheduler_with_one_gpu(pages: u64) -> ClockworkScheduler {
        let mut s = ClockworkScheduler::with_defaults();
        s.add_gpu(gref(), pages, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis_f64(8.33));
        s
    }

    fn request(id: u64, model: u32, arrival_ms: u64, slo_ms: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(id),
            model: ModelId(model),
            arrival: Timestamp::from_millis(arrival_ms),
            slo: Nanos::from_millis(slo_ms),
            tier: Tier::Strict,
        }
    }

    fn success_result(
        action_id: ActionId,
        action: &clockwork_worker::Action,
        start_ms: u64,
        dur_us: u64,
    ) -> ActionResult {
        let (model, batch, request_ids) = match &action.kind {
            ActionKind::Infer {
                model,
                batch,
                request_ids,
            } => (*model, *batch, request_ids.clone()),
            ActionKind::Load { model } => (*model, 1, vec![]),
            ActionKind::Unload { model } => (*model, 1, vec![]),
        };
        let start = Timestamp::from_millis(start_ms);
        let dur = Nanos::from_micros(dur_us);
        ActionResult {
            action_id,
            worker: WorkerId(0),
            gpu: GpuId(0),
            model,
            action_type: action.kind.type_name(),
            batch,
            request_ids,
            expected_duration: action.expected_duration,
            outcome: ActionOutcome::Success(ActionTiming {
                received: start,
                start,
                end: start + dur,
                device_duration: dur,
            }),
        }
    }

    #[test]
    fn unknown_model_is_rejected_immediately() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 99, 0, 100), &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            responses[0].outcome,
            RequestOutcome::Rejected {
                reason: RejectReason::UnknownModel,
                ..
            }
        ));
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn cold_request_triggers_load_then_infer() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        // The model is cold: a LOAD must be issued, plus an INFER that waits
        // for the load to complete.
        let kinds: Vec<&str> = actions.iter().map(|(_, a)| a.kind.type_name()).collect();
        assert!(kinds.contains(&"LOAD"), "actions: {kinds:?}");
        assert!(kinds.contains(&"INFER"), "actions: {kinds:?}");
        assert_eq!(s.stats().cold_requests, 1);
        assert_eq!(s.stats().admitted, 1);
        // The INFER must not be scheduled to start before the LOAD finishes.
        let load = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .unwrap();
        let infer = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "INFER")
            .unwrap();
        assert!(infer.1.window.earliest >= load.1.window.earliest + load.1.expected_duration);
    }

    #[test]
    fn admission_control_rejects_impossible_slos() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        // 1 ms SLO on a cold model that needs ~8 ms of loading + ~2.6 ms exec.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 1), &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            responses[0].outcome,
            RequestOutcome::Rejected {
                reason: RejectReason::CannotMeetSlo,
                ..
            }
        ));
        assert_eq!(s.stats().rejected_admission, 1);
        assert!(ctx.take_actions().is_empty(), "no fruitless work");
    }

    #[test]
    fn warm_request_is_batched_and_completed() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        // Warm the model up with one request.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        let (load_id, load_action) = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .map(|(_, a)| (a.id, a.clone()))
            .unwrap();
        // Report LOAD completion.
        s.on_result(
            Timestamp::from_millis(9),
            &success_result(load_id, &load_action, 0, 8_330),
            &mut ctx,
        );
        // The first request's own INFER (issued together with the LOAD) is
        // still outstanding; keep it so it can be completed below.
        let mut pending_infers: Vec<(ActionId, clockwork_worker::Action)> = actions
            .iter()
            .filter(|(_, a)| a.kind.type_name() == "INFER")
            .map(|(_, a)| (a.id, a.clone()))
            .collect();
        // Now send 4 more requests at once; they should be batched together.
        for i in 2..=5 {
            s.on_request(Timestamp::from_millis(10), request(i, 1, 10, 100), &mut ctx);
        }
        let actions = ctx.take_actions();
        pending_infers.extend(
            actions
                .iter()
                .filter(|(_, a)| a.kind.type_name() == "INFER")
                .map(|(_, a)| (a.id, a.clone())),
        );
        assert!(!pending_infers.is_empty());
        let mut responses = ctx.take_responses();
        let mut t_ms = 20;
        while let Some((id, action)) = pending_infers.pop() {
            s.on_result(
                Timestamp::from_millis(t_ms),
                &success_result(id, &action, t_ms, 3_000),
                &mut ctx,
            );
            t_ms += 5;
            for (_, a) in ctx.take_actions() {
                if a.kind.type_name() == "INFER" {
                    pending_infers.push((a.id, a));
                }
            }
            responses.extend(ctx.take_responses());
        }
        let successes = responses.iter().filter(|r| r.outcome.is_success()).count();
        assert_eq!(successes, 5, "all requests served: {responses:?}");
        assert_eq!(s.stats().completed, 5);
        assert_eq!(s.queued_requests(), 0);
        assert_eq!(s.in_flight_batches(), 0);
    }

    #[test]
    fn batching_prefers_larger_batches() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        // Warm model.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 1_000), &mut ctx);
        let actions = ctx.take_actions();
        let (load_id, load_action) = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .map(|(_, a)| (a.id, a.clone()))
            .unwrap();
        // Finish the first INFER too so the executor is free.
        let first_infers: Vec<_> = actions
            .iter()
            .filter(|(_, a)| a.kind.type_name() == "INFER")
            .map(|(_, a)| (a.id, a.clone()))
            .collect();
        s.on_result(
            Timestamp::from_millis(9),
            &success_result(load_id, &load_action, 0, 8_330),
            &mut ctx,
        );
        for (id, a) in first_infers {
            s.on_result(
                Timestamp::from_millis(13),
                &success_result(id, &a, 9, 2_610),
                &mut ctx,
            );
        }
        let _ = ctx.take_actions();
        let _ = ctx.take_responses();
        // 16 simultaneous requests for a warm model. The first couple are
        // dispatched at batch 1 (the executor was idle); once those complete,
        // the backlog should be served with a large batch.
        for i in 10..26 {
            s.on_request(Timestamp::from_millis(20), request(i, 1, 20, 200), &mut ctx);
        }
        let mut max_batch = 0u32;
        let mut pending: Vec<(ActionId, clockwork_worker::Action)> = ctx
            .take_actions()
            .iter()
            .filter(|(_, a)| a.kind.type_name() == "INFER")
            .map(|(_, a)| (a.id, a.clone()))
            .collect();
        let mut t_ms = 26;
        while let Some((id, action)) = pending.pop() {
            if let ActionKind::Infer { batch, .. } = &action.kind {
                max_batch = max_batch.max(*batch);
            }
            s.on_result(
                Timestamp::from_millis(t_ms),
                &success_result(id, &action, t_ms, 3_000),
                &mut ctx,
            );
            t_ms += 5;
            pending.extend(
                ctx.take_actions()
                    .iter()
                    .filter(|(_, a)| a.kind.type_name() == "INFER")
                    .map(|(_, a)| (a.id, a.clone())),
            );
            let _ = ctx.take_responses();
        }
        assert!(max_batch >= 8, "expected large batch, got {max_batch}");
    }

    #[test]
    fn infer_windows_respect_deadlines() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 50), &mut ctx);
        let actions = ctx.take_actions();
        for (_, a) in &actions {
            if let ActionKind::Infer { .. } = a.kind {
                // latest + exec estimate must not exceed the deadline.
                let est = a.expected_duration;
                assert!(a.window.latest + est <= Timestamp::from_millis(50));
                assert!(a.window.earliest <= a.window.latest);
            }
        }
    }

    #[test]
    fn load_failure_releases_reserved_pages() {
        // Give the GPU so few pages that the load reservation matters.
        let mut s = scheduler_with_one_gpu(7);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        let (load_id, load_action) = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "LOAD")
            .map(|(_, a)| (a.id, a.clone()))
            .unwrap();
        let free_before = s.tracker().get(gref()).unwrap().free_pages;
        assert_eq!(free_before, 0, "all 7 pages reserved for the load");
        // The worker reports failure.
        let result = ActionResult {
            outcome: ActionOutcome::Error {
                error: clockwork_worker::ActionError::InsufficientPages {
                    needed: 7,
                    available: 0,
                },
                at: Timestamp::from_millis(1),
            },
            ..success_result(load_id, &load_action, 0, 8_330)
        };
        s.on_result(Timestamp::from_millis(1), &result, &mut ctx);
        assert_eq!(s.tracker().get(gref()).unwrap().free_pages, 7);
    }

    #[test]
    fn worker_rejection_requeues_if_time_allows() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 500), &mut ctx);
        let actions = ctx.take_actions();
        let (infer_id, infer_action) = actions
            .iter()
            .find(|(_, a)| a.kind.type_name() == "INFER")
            .map(|(_, a)| (a.id, a.clone()))
            .unwrap();
        let result = ActionResult {
            outcome: ActionOutcome::Error {
                error: clockwork_worker::ActionError::WindowElapsed,
                at: Timestamp::from_millis(12),
            },
            ..success_result(infer_id, &infer_action, 12, 0)
        };
        s.on_result(Timestamp::from_millis(12), &result, &mut ctx);
        // Deadline is 500 ms away, so the request goes back into the queue
        // and a new INFER is eventually issued rather than a rejection.
        let responses = ctx.take_responses();
        assert!(responses.iter().all(|r| !matches!(
            r.outcome,
            RequestOutcome::Rejected {
                reason: RejectReason::WorkerRejected,
                ..
            }
        )));
        assert!(s.queued_requests() + s.in_flight_batches() >= 1);
    }

    #[test]
    fn queued_requests_expire_when_deadline_passes() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 30), &mut ctx);
        let _ = ctx.take_actions();
        // Pretend nothing happened for 40 ms (the worker never answered).
        s.on_tick(Timestamp::from_millis(40), &mut ctx);
        // The queued copy of the request (if any) must be expired; at minimum
        // no INFER may be scheduled that would start after the deadline.
        for (_, a) in ctx.take_actions() {
            assert!(a.window.earliest <= Timestamp::from_millis(30));
        }
    }

    #[test]
    fn next_tick_only_fires_when_a_tick_could_act() {
        let s = scheduler_with_one_gpu(100);
        assert_eq!(s.next_tick(Timestamp::ZERO), None, "idle: no ticks");
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        // The request was fully planned (LOAD and a dependent INFER are in
        // flight, the queue is empty): busy but settled, so no tick is
        // wanted — the results will re-arm the chain.
        assert!(s.in_flight_batches() >= 1);
        assert_eq!(s.next_tick(Timestamp::ZERO), None, "settled: no ticks");
        // A second request cannot be planned yet — the executor is committed
        // past the lookahead horizon — so a tick is wanted, on the legacy
        // 1 ms grid, no earlier than when the horizon reaches the
        // executor's free time.
        s.on_request(Timestamp::ZERO, request(2, 1, 0, 100), &mut ctx);
        assert!(s.queued_requests() >= 1);
        let tick = s.next_tick(Timestamp::ZERO).expect("queued work pending");
        assert!(tick > Timestamp::ZERO);
        assert_eq!(
            tick.as_nanos() % s.config().tick_interval.as_nanos(),
            0,
            "ticks stay on the fixed-cadence grid"
        );
        assert_eq!(s.name(), "clockwork");
    }

    #[test]
    fn lru_unload_makes_room_when_cache_is_full() {
        // 8 pages: exactly one ResNet50 (7 pages) fits at a time.
        let mut s = ClockworkScheduler::with_defaults();
        s.add_gpu(gref(), 8, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis_f64(8.33));
        s.add_model(ModelId(2), resnet(), Nanos::from_millis_f64(8.33));
        let mut ctx = SchedulerCtx::new();
        // Load and finish model 1.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        let actions = ctx.take_actions();
        for (id, a) in actions.iter().map(|(_, a)| (a.id, a.clone())) {
            let dur = if a.kind.type_name() == "LOAD" {
                8_330
            } else {
                2_610
            };
            s.on_result(
                Timestamp::from_millis(15),
                &success_result(id, &a, 10, dur),
                &mut ctx,
            );
        }
        let _ = ctx.take_actions();
        let _ = ctx.take_responses();
        // A request for model 2 must evict model 1 first.
        s.on_request(Timestamp::from_millis(50), request(2, 2, 50, 100), &mut ctx);
        let actions = ctx.take_actions();
        let kinds: Vec<&str> = actions.iter().map(|(_, a)| a.kind.type_name()).collect();
        assert!(kinds.contains(&"UNLOAD"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"LOAD"), "kinds: {kinds:?}");
        assert_eq!(s.stats().unload_actions, 1);
    }

    #[test]
    fn no_slo_requests_are_never_rejected_by_admission() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        let r = InferenceRequest {
            id: RequestId(1),
            model: ModelId(1),
            arrival: Timestamp::ZERO,
            slo: Nanos::MAX,
            tier: Tier::Strict,
        };
        s.on_request(Timestamp::ZERO, r, &mut ctx);
        assert_eq!(s.stats().admitted, 1);
        assert_eq!(ctx.take_responses().len(), 0);
    }

    #[test]
    fn prediction_records_are_collected_when_enabled() {
        let config = ClockworkSchedulerConfig {
            record_predictions: true,
            ..Default::default()
        };
        let mut s = ClockworkScheduler::new(config);
        s.add_gpu(gref(), 100, PAGE);
        s.add_model(ModelId(1), resnet(), Nanos::from_millis_f64(8.33));
        let mut ctx = SchedulerCtx::new();
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 100), &mut ctx);
        for (id, a) in ctx.take_actions().iter().map(|(_, a)| (a.id, a.clone())) {
            let dur = if a.kind.type_name() == "LOAD" {
                8_400
            } else {
                2_650
            };
            s.on_result(
                Timestamp::from_millis(15),
                &success_result(id, &a, 10, dur),
                &mut ctx,
            );
        }
        assert!(s.predictions().len() >= 2);
        for p in s.predictions() {
            assert!(p.duration_error_ns().abs() < 1_000_000, "{p:?}");
        }
    }

    #[test]
    fn worker_crash_resolves_in_flight_actions_and_clears_residency() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        // Cold request: a LOAD and an INFER are outstanding on the only GPU.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 500), &mut ctx);
        let _ = ctx.take_actions();
        assert_eq!(s.in_flight_batches(), 1);
        s.on_fault(
            Timestamp::from_millis(5),
            &FaultKind::WorkerCrash { worker: 0 },
            &mut ctx,
        );
        // The batch was resolved: with 495 ms of slack the request is
        // requeued, not rejected.
        assert_eq!(s.in_flight_batches(), 0);
        assert!(s.queued_requests() >= 1);
        assert!(ctx.take_responses().is_empty());
        let track = s.tracker().get(gref()).unwrap();
        assert!(!track.alive);
        assert!(track.resident.is_empty() && track.loading.is_empty());
        assert_eq!(track.free_pages, track.total_pages, "reservations returned");
        // While the fleet is dead, no actions are issued even on a tick.
        let _ = ctx.take_actions();
        s.on_tick(Timestamp::from_millis(6), &mut ctx);
        assert!(
            ctx.take_actions().is_empty(),
            "no work may be sent to a dead worker"
        );
        // Restart: the queued request is scheduled again, cold (LOAD first).
        s.on_fault(
            Timestamp::from_millis(10),
            &FaultKind::WorkerRestart { worker: 0 },
            &mut ctx,
        );
        let kinds: Vec<&str> = ctx
            .take_actions()
            .iter()
            .map(|(_, a)| a.kind.type_name())
            .collect();
        assert!(
            kinds.contains(&"LOAD"),
            "recovered worker must be treated as cold: {kinds:?}"
        );
        assert!(kinds.contains(&"INFER"), "{kinds:?}");
    }

    #[test]
    fn crash_with_no_slack_rejects_with_worker_failed() {
        let mut s = scheduler_with_one_gpu(100);
        let mut ctx = SchedulerCtx::new();
        // 20 ms SLO: cold start (~8.3 + 2.6 ms) fits, so the request is
        // admitted and dispatched.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 20), &mut ctx);
        let _ = ctx.take_actions();
        assert_eq!(s.in_flight_batches(), 1);
        // The GPU dies at 18 ms: 2.6 ms of exec no longer fits before the
        // 20 ms deadline, so the request must be rejected — exactly once,
        // with the fault-specific reason.
        s.on_fault(
            Timestamp::from_millis(18),
            &FaultKind::GpuFail { worker: 0, gpu: 0 },
            &mut ctx,
        );
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            responses[0].outcome,
            RequestOutcome::Rejected {
                reason: RejectReason::WorkerFailed,
                ..
            }
        ));
        assert_eq!(s.stats().rejected_worker_failed, 1);
        assert_eq!(s.queued_requests(), 0);
        assert_eq!(s.in_flight_batches(), 0);
    }

    #[test]
    fn cold_rejections_still_drive_load_scheduling() {
        // A model whose SLO is tighter than its own cold-start time: every
        // request is rejected up-front while the model is cold, but those
        // rejections are SLO violations and must still cause the model to be
        // loaded (Appendix B), so that later requests can be served.
        let mut s = scheduler_with_one_gpu(200);
        let mut ctx = SchedulerCtx::new();

        // 5 ms SLO: warm execution (~2.6 ms) fits, cold start (~11 ms) does not.
        s.on_request(Timestamp::from_millis(1), request(1, 1, 1, 5), &mut ctx);
        let responses = ctx.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].outcome.is_success());

        // The rejection must have triggered a LOAD for the model anyway.
        let actions = ctx.take_actions();
        let load = actions
            .iter()
            .find(|(_, a)| matches!(a.kind, ActionKind::Load { model } if model == ModelId(1)))
            .expect("cold rejection should schedule a LOAD");
        let (_, load_action) = load;

        // Complete the LOAD; a later request with the same tight SLO is now
        // admitted and scheduled.
        s.on_result(
            Timestamp::from_millis(10),
            &success_result(load_action.id, load_action, 2, 8_330),
            &mut ctx,
        );
        ctx.take_actions();
        ctx.take_responses();
        s.on_request(Timestamp::from_millis(12), request(2, 1, 12, 5), &mut ctx);
        s.on_tick(Timestamp::from_millis(12), &mut ctx);
        let actions = ctx.take_actions();
        assert!(
            actions.iter().any(|(_, a)| a.kind.is_infer()),
            "warm model with a feasible SLO must be scheduled, got {actions:?}"
        );
        assert_eq!(s.stats().rejected_admission, 1);
    }

    #[test]
    fn best_effort_is_shed_under_fleet_pressure_while_strict_admits() {
        let mut s = scheduler_with_one_gpu(200);
        let mut ctx = SchedulerCtx::new();
        // Occupy the single GPU with a cold-start request, then pile a
        // backlog into the model queue behind it. Generous SLOs keep plain
        // admission open while the aggregate queue grows.
        s.on_request(Timestamp::ZERO, request(1, 1, 0, 10_000), &mut ctx);
        for i in 0..24 {
            s.on_request(
                Timestamp::from_millis(1),
                request(10 + i, 1, 1, 10_000),
                &mut ctx,
            );
        }
        ctx.take_actions();
        ctx.take_responses();

        // A strict request with a moderate SLO still clears admission: the
        // amortized best case fits inside its deadline.
        let admitted_before = s.stats().admitted;
        s.on_request(Timestamp::from_millis(2), request(100, 1, 2, 300), &mut ctx);
        assert_eq!(
            s.stats().admitted,
            admitted_before + 1,
            "strict request must be admitted under the same backlog"
        );
        assert_eq!(s.stats().rejected_shed, 0);

        // The *identical* request at the best-effort tier is shed: the
        // fleet-pressure bar (aggregate backlog's fair drain share, scaled
        // by the headroom factor) crosses its deadline first.
        let mut be = request(101, 1, 2, 300);
        be.tier = Tier::BestEffort;
        s.on_request(Timestamp::from_millis(2), be, &mut ctx);
        assert_eq!(s.stats().rejected_shed, 1, "best-effort twin must be shed");
        let responses = ctx.take_responses();
        assert!(
            responses.iter().any(|r| matches!(
                r.outcome,
                RequestOutcome::Rejected {
                    reason: RejectReason::BestEffortShed,
                    ..
                }
            )),
            "shed response must carry the BestEffortShed reason"
        );

        // With tier-awareness off the same best-effort request is admitted:
        // the shed branch is opt-out without touching plain admission.
        let mut blind = ClockworkScheduler::new(ClockworkSchedulerConfig {
            tier_aware: false,
            ..ClockworkSchedulerConfig::default()
        });
        blind.add_gpu(gref(), 200, PAGE);
        blind.add_model(ModelId(1), resnet(), Nanos::from_millis_f64(8.33));
        let mut ctx = SchedulerCtx::new();
        blind.on_request(Timestamp::ZERO, request(1, 1, 0, 10_000), &mut ctx);
        for i in 0..24 {
            blind.on_request(
                Timestamp::from_millis(1),
                request(10 + i, 1, 1, 10_000),
                &mut ctx,
            );
        }
        let mut be = request(101, 1, 2, 300);
        be.tier = Tier::BestEffort;
        blind.on_request(Timestamp::from_millis(2), be, &mut ctx);
        assert_eq!(blind.stats().rejected_shed, 0);
        assert_eq!(blind.stats().admitted, 26);
    }
}
