//! Client-facing request and response types.
//!
//! Clients submit inference requests naming a model, an SLO and an input
//! tensor; the controller answers each request exactly once, either with the
//! inference output (here: timing metadata) or with a rejection. Rejections
//! are first-class in Clockwork: the controller cancels requests it knows
//! cannot meet their SLO *before* doing any work for them (§4.1).

use serde::{Deserialize, Serialize};

use clockwork_model::{ModelId, Tier};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{GpuId, WorkerId};

/// Identifier of a client request.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An inference request as seen by the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Unique request id.
    pub id: RequestId,
    /// The model to run.
    pub model: ModelId,
    /// When the request arrived at the controller.
    pub arrival: Timestamp,
    /// The latency SLO, relative to arrival. [`Nanos::MAX`] means "no SLO"
    /// (batch clients in §6.4).
    pub slo: Nanos,
    /// The service tier of the issuing client. Strict traffic keeps its SLO
    /// under pressure; best-effort traffic is shed first.
    pub tier: Tier,
}

impl InferenceRequest {
    /// The absolute deadline of this request.
    pub fn deadline(&self) -> Timestamp {
        if self.slo == Nanos::MAX {
            Timestamp::MAX
        } else {
            self.arrival + self.slo
        }
    }

    /// Whether the request carries a latency SLO at all.
    pub fn has_slo(&self) -> bool {
        self.slo != Nanos::MAX
    }
}

/// Why a request was rejected without being executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Admission control: even the best case cannot meet the SLO.
    CannotMeetSlo,
    /// The deadline passed while the request was queued.
    DeadlineElapsed,
    /// The model id is not registered with the system.
    UnknownModel,
    /// A worker rejected or failed the action and no retry was possible.
    WorkerRejected,
    /// The worker (or GPU) serving the request died mid-flight and the
    /// deadline left no room to reissue the work elsewhere.
    ///
    /// Appended after the other variants so their discriminants — which feed
    /// the determinism digest — are unchanged.
    WorkerFailed,
    /// Graceful degradation: a best-effort request was shed because the
    /// fleet is under enough pressure that admitting it would endanger
    /// strict-tier traffic.
    ///
    /// Appended last for the same discriminant-stability reason as
    /// [`RejectReason::WorkerFailed`].
    BestEffortShed,
}

impl RejectReason {
    /// The stable snake_case key for this reason, shared by telemetry
    /// reject-reason counters and lifecycle trace spans so the two always
    /// reconcile by string equality.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::CannotMeetSlo => "cannot_meet_slo",
            RejectReason::DeadlineElapsed => "deadline_elapsed",
            RejectReason::UnknownModel => "unknown_model",
            RejectReason::WorkerRejected => "worker_rejected",
            RejectReason::WorkerFailed => "worker_failed",
            RejectReason::BestEffortShed => "best_effort_shed",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::CannotMeetSlo => "cannot meet SLO",
            RejectReason::DeadlineElapsed => "deadline elapsed in queue",
            RejectReason::UnknownModel => "unknown model",
            RejectReason::WorkerRejected => "worker rejected action",
            RejectReason::WorkerFailed => "worker failed mid-flight",
            RejectReason::BestEffortShed => "best-effort traffic shed under pressure",
        };
        f.write_str(s)
    }
}

/// The final outcome of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The inference ran and its output was returned at `completed`.
    Success {
        /// When the output became available at the controller.
        completed: Timestamp,
        /// The batch size the request was served in.
        batch: u32,
        /// The worker that served it.
        worker: WorkerId,
        /// The GPU that served it.
        gpu: GpuId,
        /// Whether the model had to be loaded after this request arrived.
        cold_start: bool,
    },
    /// The request was rejected without executing.
    Rejected {
        /// When the rejection was decided.
        at: Timestamp,
        /// Why.
        reason: RejectReason,
    },
}

impl RequestOutcome {
    /// Whether the request produced an inference result.
    pub fn is_success(&self) -> bool {
        matches!(self, RequestOutcome::Success { .. })
    }

    /// The completion time, if successful.
    pub fn completed_at(&self) -> Option<Timestamp> {
        match self {
            RequestOutcome::Success { completed, .. } => Some(*completed),
            RequestOutcome::Rejected { .. } => None,
        }
    }
}

/// A response to a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// The request this responds to.
    pub request: RequestId,
    /// The model that was requested.
    pub model: ModelId,
    /// When the request originally arrived.
    pub arrival: Timestamp,
    /// Its absolute deadline.
    pub deadline: Timestamp,
    /// What happened.
    pub outcome: RequestOutcome,
}

impl Response {
    /// End-to-end latency of a successful response.
    pub fn latency(&self) -> Option<Nanos> {
        self.outcome.completed_at().map(|done| done - self.arrival)
    }

    /// Whether the response arrived within the request's SLO (goodput
    /// counts only these, Fig. 5).
    pub fn met_slo(&self) -> bool {
        match self.outcome.completed_at() {
            Some(done) => done <= self.deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(slo_ms: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(1),
            model: ModelId(2),
            arrival: Timestamp::from_millis(100),
            slo: Nanos::from_millis(slo_ms),
            tier: Tier::Strict,
        }
    }

    #[test]
    fn deadline_is_arrival_plus_slo() {
        let r = request(25);
        assert_eq!(r.deadline(), Timestamp::from_millis(125));
        assert!(r.has_slo());
    }

    #[test]
    fn no_slo_requests_never_expire() {
        let r = InferenceRequest {
            slo: Nanos::MAX,
            ..request(1)
        };
        assert_eq!(r.deadline(), Timestamp::MAX);
        assert!(!r.has_slo());
    }

    #[test]
    fn response_latency_and_slo() {
        let ok = Response {
            request: RequestId(1),
            model: ModelId(2),
            arrival: Timestamp::from_millis(100),
            deadline: Timestamp::from_millis(200),
            outcome: RequestOutcome::Success {
                completed: Timestamp::from_millis(150),
                batch: 4,
                worker: WorkerId(0),
                gpu: GpuId(0),
                cold_start: false,
            },
        };
        assert_eq!(ok.latency(), Some(Nanos::from_millis(50)));
        assert!(ok.met_slo());
        assert!(ok.outcome.is_success());

        let late = Response {
            outcome: RequestOutcome::Success {
                completed: Timestamp::from_millis(250),
                batch: 1,
                worker: WorkerId(0),
                gpu: GpuId(0),
                cold_start: true,
            },
            ..ok
        };
        assert!(!late.met_slo());

        let rejected = Response {
            outcome: RequestOutcome::Rejected {
                at: Timestamp::from_millis(110),
                reason: RejectReason::CannotMeetSlo,
            },
            ..ok
        };
        assert_eq!(rejected.latency(), None);
        assert!(!rejected.met_slo());
        assert!(!rejected.outcome.is_success());
    }

    #[test]
    fn reject_reasons_display() {
        assert!(RejectReason::CannotMeetSlo.to_string().contains("SLO"));
        assert!(RejectReason::DeadlineElapsed
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn reject_reason_keys_are_snake_case_and_distinct() {
        let all = [
            RejectReason::CannotMeetSlo,
            RejectReason::DeadlineElapsed,
            RejectReason::UnknownModel,
            RejectReason::WorkerRejected,
            RejectReason::WorkerFailed,
            RejectReason::BestEffortShed,
        ];
        let keys: Vec<&str> = all.iter().map(|r| r.as_str()).collect();
        for key in &keys {
            assert!(key.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        let mut unique = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), all.len());
    }
}
