//! The Clockwork central controller (§4.5, §5.3, Appendix B).
//!
//! All decision making in Clockwork happens here. The controller receives
//! inference requests from clients, tracks the state and performance profile
//! of every worker, and translates requests into `LOAD` / `UNLOAD` / `INFER`
//! actions with explicit execution windows, such that admitted requests meet
//! their SLOs and doomed requests are cancelled before wasting work.
//!
//! * [`request`] — the client-facing request/response vocabulary.
//! * [`profile`] — rolling per-(model, action, batch) duration estimates
//!   (the last-10-measurements window of §5.3).
//! * [`journal`] — the change journal and self-profiling counters behind
//!   the incremental, early-out tick pipeline.
//! * [`worker_state`] — the controller's mirror of each worker's memory
//!   state, outstanding actions, and executor availability.
//! * [`scheduler`] — the `Scheduler` trait and the context through which
//!   schedulers emit actions and responses.
//! * [`registry`] — open registration of disciplines: `SchedulerFactory`
//!   and `SchedulerRegistry`, so experiment harnesses construct any
//!   registered discipline as a `Box<dyn Scheduler>` by name.
//! * [`batching`] — batch formation as pure functions: the strategy-queue
//!   build, the largest-feasible-batch search, and the batch-amortized
//!   drain cost that admission prices requests against.
//! * [`clockwork_scheduler`] — the paper's scheduler: global strategy queue
//!   with batch formation, 5 ms lookahead, demand-driven LOAD priorities,
//!   LRU UNLOAD, and SLO admission control priced on the amortized cost
//!   curve.
//! * [`alt`] — deliberately simpler schedulers used for ablation studies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alt;
pub mod batching;
pub mod clockwork_scheduler;
pub mod journal;
pub mod profile;
pub mod registry;
pub mod request;
pub mod scheduler;
pub mod worker_state;

pub use clockwork_scheduler::{ClockworkScheduler, ClockworkSchedulerConfig};
pub use journal::{ChangeJournal, SchedProfile};
pub use profile::{ActionProfiler, ProfileKey, ProfileKind};
pub use registry::{
    ClockworkFactory, ClockworkNoBatchFactory, FifoFactory, SchedulerFactory, SchedulerRegistry,
};
pub use request::{InferenceRequest, RejectReason, RequestId, RequestOutcome, Response};
pub use scheduler::{Scheduler, SchedulerCtx, TickOutcome};
pub use worker_state::{FreeAtIndex, GpuTrack, WorkerStateTracker};
