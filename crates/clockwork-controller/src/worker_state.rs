//! The controller's mirror of worker state (§5.3 "Managing worker state").
//!
//! The scheduler never asks a worker what it is doing — it *knows*, because
//! workers only do what they are told and their action latencies are
//! predictable. For every GPU the controller tracks three things: the memory
//! state of the paged weights cache (which models are resident or being
//! loaded, and how many pages are free), the set of outstanding actions, and
//! an estimate of when each executor will next be available. Together with
//! the action profiles this is enough to predict when any candidate action
//! would complete.

use std::collections::{BTreeSet, HashMap, HashSet};

use clockwork_model::ModelId;
use clockwork_sim::engine::FaultKind;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionId, GpuId, WorkerId};

/// A (worker, GPU) pair — the unit of scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuRef {
    /// The worker machine.
    pub worker: WorkerId,
    /// The GPU on that worker.
    pub gpu: GpuId,
}

impl std::fmt::Display for GpuRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.worker, self.gpu)
    }
}

/// An action the controller has sent and not yet heard back about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutstandingAction {
    /// The action id.
    pub id: ActionId,
    /// The model it concerns.
    pub model: ModelId,
    /// The controller's predicted completion time.
    pub expected_completion: Timestamp,
    /// Whether it is a LOAD (false = INFER; UNLOADs are not tracked).
    pub is_load: bool,
}

/// The tracked state of one GPU.
#[derive(Clone, Debug)]
pub struct GpuTrack {
    /// Which GPU this is.
    pub gpu_ref: GpuRef,
    /// Total pages in the weights cache.
    pub total_pages: u64,
    /// Pages not allocated to any resident or loading model.
    pub free_pages: u64,
    /// Page size in bytes.
    pub page_size: u64,
    /// Models whose weights are resident (LOAD confirmed complete).
    pub resident: HashSet<ModelId>,
    /// Models for which a LOAD is outstanding.
    pub loading: HashSet<ModelId>,
    /// Pages held by each resident or loading model.
    pub pages_held: HashMap<ModelId, u64>,
    /// Last time an INFER was scheduled per model (drives LRU eviction).
    pub last_used: HashMap<ModelId, Timestamp>,
    /// Estimated time at which the INFER executor is next free.
    pub exec_free_at: Timestamp,
    /// Estimated time at which the LOAD executor is next free.
    pub load_free_at: Timestamp,
    /// Outstanding actions on this GPU.
    pub outstanding: HashMap<ActionId, OutstandingAction>,
    /// Whether the GPU (and its worker) is up. Dead GPUs receive no work.
    pub alive: bool,
}

impl GpuTrack {
    /// Creates the track for a GPU with the given cache geometry.
    pub fn new(gpu_ref: GpuRef, total_pages: u64, page_size: u64) -> Self {
        GpuTrack {
            gpu_ref,
            total_pages,
            free_pages: total_pages,
            page_size,
            resident: HashSet::new(),
            loading: HashSet::new(),
            pages_held: HashMap::new(),
            last_used: HashMap::new(),
            exec_free_at: Timestamp::ZERO,
            load_free_at: Timestamp::ZERO,
            outstanding: HashMap::new(),
            alive: true,
        }
    }

    /// Resets the track after the GPU (or its whole worker) died: residency,
    /// page reservations and outstanding actions are gone, the memory comes
    /// back empty, and the GPU is unschedulable until [`GpuTrack::note_recovered`].
    /// The caller is responsible for resolving the outstanding actions (they
    /// will never produce a result) *before* calling this.
    pub fn note_fault(&mut self, now: Timestamp) {
        self.resident.clear();
        self.loading.clear();
        self.pages_held.clear();
        self.last_used.clear();
        self.outstanding.clear();
        self.free_pages = self.total_pages;
        self.exec_free_at = now;
        self.load_free_at = now;
        self.alive = false;
    }

    /// Marks the GPU usable again after a fault, cold (nothing resident).
    pub fn note_recovered(&mut self, now: Timestamp) {
        self.alive = true;
        self.exec_free_at = self.exec_free_at.max(now);
        self.load_free_at = self.load_free_at.max(now);
    }

    /// Whether a model is usable for INFER scheduling on this GPU (resident,
    /// or a LOAD is already on its way).
    pub fn has_or_loading(&self, model: ModelId) -> bool {
        self.resident.contains(&model) || self.loading.contains(&model)
    }

    /// Whether the model is confirmed resident.
    pub fn is_resident(&self, model: ModelId) -> bool {
        self.resident.contains(&model)
    }

    /// Number of pages a weights blob of `bytes` needs on this GPU.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        if self.page_size == 0 {
            return 0;
        }
        bytes.div_ceil(self.page_size).max(1)
    }

    /// The time an INFER could start if sent now, given outstanding work.
    pub fn next_exec_slot(&self, now: Timestamp) -> Timestamp {
        self.exec_free_at.max(now)
    }

    /// The time a LOAD could start if sent now, given outstanding work.
    pub fn next_load_slot(&self, now: Timestamp) -> Timestamp {
        self.load_free_at.max(now)
    }

    /// Marks an INFER as scheduled: occupies the executor and touches LRU.
    pub fn note_infer_sent(
        &mut self,
        action: OutstandingAction,
        start: Timestamp,
        duration: Nanos,
    ) {
        self.exec_free_at = self.exec_free_at.max(start + duration);
        self.last_used.insert(action.model, start);
        self.outstanding.insert(action.id, action);
    }

    /// Marks a LOAD as scheduled: reserves pages, occupies the load executor.
    pub fn note_load_sent(
        &mut self,
        action: OutstandingAction,
        pages: u64,
        start: Timestamp,
        duration: Nanos,
    ) {
        self.free_pages = self.free_pages.saturating_sub(pages);
        self.pages_held.insert(action.model, pages);
        self.loading.insert(action.model);
        self.load_free_at = self.load_free_at.max(start + duration);
        self.last_used.entry(action.model).or_insert(start);
        self.outstanding.insert(action.id, action);
    }

    /// Marks an UNLOAD as sent: frees pages immediately (UNLOAD always
    /// succeeds and is metadata-only).
    pub fn note_unload_sent(&mut self, model: ModelId) {
        if let Some(pages) = self.pages_held.remove(&model) {
            self.free_pages = (self.free_pages + pages).min(self.total_pages);
        }
        self.resident.remove(&model);
        self.loading.remove(&model);
        self.last_used.remove(&model);
    }

    /// Records a LOAD result. A result whose action is no longer outstanding
    /// is stale — e.g. it was produced just before the GPU crashed and the
    /// crash already resolved the action — and is ignored entirely, so it
    /// cannot resurrect residency on a GPU whose memory is gone. Returns
    /// whether the result was applied (false = stale), so callers keep their
    /// own side tables (residency indices) in lockstep with this track.
    pub fn note_load_result(&mut self, id: ActionId, model: ModelId, success: bool) -> bool {
        if self.outstanding.remove(&id).is_none() {
            return false;
        }
        self.loading.remove(&model);
        if success {
            self.resident.insert(model);
        } else {
            // The worker did not allocate pages; return our reservation.
            if let Some(pages) = self.pages_held.remove(&model) {
                self.free_pages = (self.free_pages + pages).min(self.total_pages);
            }
        }
        true
    }

    /// Records an INFER result (success or failure frees the executor claim).
    pub fn note_infer_result(&mut self, id: ActionId) {
        self.outstanding.remove(&id);
    }

    /// The least-recently-used resident model, excluding `protect`ed ones.
    pub fn lru_candidate(&self, protect: &HashSet<ModelId>) -> Option<ModelId> {
        self.resident
            .iter()
            .filter(|m| !protect.contains(m) && !self.loading.contains(m))
            .min_by_key(|m| {
                (
                    self.last_used.get(m).copied().unwrap_or(Timestamp::ZERO),
                    **m,
                )
            })
            .copied()
    }

    /// Fraction of pages in use.
    pub fn occupancy(&self) -> f64 {
        if self.total_pages == 0 {
            return 1.0;
        }
        1.0 - self.free_pages as f64 / self.total_pages as f64
    }
}

/// The controller's view of every GPU in the cluster.
#[derive(Clone, Debug, Default)]
pub struct WorkerStateTracker {
    gpus: Vec<GpuTrack>,
    index: HashMap<GpuRef, usize>,
    /// Workers currently crashed. While a worker is down, a lone GPU
    /// recovery cannot make its GPUs reachable — only the worker restart
    /// re-admits them.
    down_workers: HashSet<WorkerId>,
}

impl WorkerStateTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a GPU.
    pub fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64) {
        let idx = self.gpus.len();
        self.gpus
            .push(GpuTrack::new(gpu_ref, total_pages, page_size));
        self.index.insert(gpu_ref, idx);
    }

    /// All tracked GPUs.
    pub fn gpus(&self) -> &[GpuTrack] {
        &self.gpus
    }

    /// Mutable access to all tracked GPUs.
    pub fn gpus_mut(&mut self) -> &mut [GpuTrack] {
        &mut self.gpus
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether no GPUs are registered.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Looks a GPU up by reference.
    pub fn get(&self, gpu_ref: GpuRef) -> Option<&GpuTrack> {
        self.index.get(&gpu_ref).map(|&i| &self.gpus[i])
    }

    /// The dense registration index of a GPU (its position in
    /// [`WorkerStateTracker::gpus`]), usable as a key into per-GPU side
    /// tables that want `Vec` indexing instead of hash lookups.
    pub fn gpu_index(&self, gpu_ref: GpuRef) -> Option<usize> {
        self.index.get(&gpu_ref).copied()
    }

    /// Mutable lookup by reference.
    pub fn get_mut(&mut self, gpu_ref: GpuRef) -> Option<&mut GpuTrack> {
        match self.index.get(&gpu_ref) {
            Some(&i) => self.gpus.get_mut(i),
            None => None,
        }
    }

    /// GPUs on which a model is resident or loading.
    pub fn gpus_with_model(&self, model: ModelId) -> Vec<GpuRef> {
        self.gpus
            .iter()
            .filter(|g| g.has_or_loading(model))
            .map(|g| g.gpu_ref)
            .collect()
    }

    /// Whether the model is resident or loading anywhere in the cluster.
    pub fn model_available_somewhere(&self, model: ModelId) -> bool {
        self.gpus.iter().any(|g| g.has_or_loading(model))
    }

    /// The GPU whose INFER executor frees up soonest.
    pub fn least_loaded_gpu(&self, now: Timestamp) -> Option<GpuRef> {
        self.gpus
            .iter()
            .min_by_key(|g| (g.next_exec_slot(now), g.gpu_ref))
            .map(|g| g.gpu_ref)
    }

    /// Applies a fleet fault to the tracked GPUs — the minimal fault
    /// awareness a scheduler needs to stop placing work on dead capacity and
    /// to re-admit recovered capacity cold.
    ///
    /// Failures mark the affected GPU(s) dead (wiping residency and page
    /// reservations) and return the ids of their outstanding actions, sorted,
    /// which will never produce a result; the caller resolves them (requeue
    /// or reject) in that deterministic order. Recoveries re-admit GPUs with
    /// nothing resident. A GPU recovery naming a GPU of a crashed worker is
    /// ignored — the machine is gone; only its restart brings the GPUs back.
    /// Link faults are a transport matter and touch nothing here.
    pub fn apply_fault(&mut self, now: Timestamp, fault: &FaultKind) -> Vec<ActionId> {
        let worker = WorkerId(fault.worker());
        let mut lost = Vec::new();
        match *fault {
            FaultKind::WorkerCrash { .. } => {
                self.down_workers.insert(worker);
                for track in &mut self.gpus {
                    if track.gpu_ref.worker == worker {
                        lost.extend(track.outstanding.keys().copied());
                        track.note_fault(now);
                    }
                }
            }
            FaultKind::WorkerRestart { .. } => {
                self.down_workers.remove(&worker);
                for track in &mut self.gpus {
                    if track.gpu_ref.worker == worker {
                        track.note_recovered(now);
                    }
                }
            }
            FaultKind::GpuFail { gpu, .. } => {
                if let Some(track) = self.get_mut(GpuRef {
                    worker,
                    gpu: GpuId(gpu),
                }) {
                    lost.extend(track.outstanding.keys().copied());
                    track.note_fault(now);
                }
            }
            FaultKind::GpuRecover { gpu, .. } => {
                if !self.down_workers.contains(&worker) {
                    if let Some(track) = self.get_mut(GpuRef {
                        worker,
                        gpu: GpuId(gpu),
                    }) {
                        track.note_recovered(now);
                    }
                }
            }
            FaultKind::LinkDegrade { .. }
            | FaultKind::LinkRestore { .. }
            | FaultKind::PartitionStart { .. }
            | FaultKind::PartitionEnd { .. } => {}
            // A join loses nothing; the new GPUs were already registered
            // through `add_gpu` and start alive and empty.
            FaultKind::WorkerJoin { .. } => {}
        }
        lost.sort_unstable();
        lost
    }
}

/// An index of per-GPU "next actionable" times.
///
/// The scheduling passes used to scan every GPU per event just to discover
/// that most executors are busy past the lookahead horizon. This index keeps
/// each GPU's next-free time in a sorted set so a pass can pull exactly the
/// GPUs that are actionable before the horizon — in ascending registration
/// order, which keeps the visiting order (and therefore every scheduling
/// decision and the determinism digest) identical to the full scan's.
///
/// Dead GPUs are parked at [`Timestamp::MAX`], which doubles as the
/// "never actionable" sentinel.
#[derive(Clone, Debug, Default)]
pub struct FreeAtIndex {
    by_time: BTreeSet<(Timestamp, u32)>,
    current: Vec<Timestamp>,
}

impl FreeAtIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        FreeAtIndex::default()
    }

    /// Registers the next GPU (dense indices, in registration order),
    /// initially free at time zero.
    pub fn push_gpu(&mut self) {
        let idx = self.current.len() as u32;
        self.current.push(Timestamp::ZERO);
        self.by_time.insert((Timestamp::ZERO, idx));
    }

    /// Number of GPUs registered.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether no GPUs are registered.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The currently indexed free time of a GPU.
    pub fn free_at(&self, idx: usize) -> Timestamp {
        self.current[idx]
    }

    /// Moves a GPU to a new free time.
    pub fn update(&mut self, idx: usize, free_at: Timestamp) {
        let old = self.current[idx];
        if old == free_at {
            return;
        }
        self.by_time.remove(&(old, idx as u32));
        self.by_time.insert((free_at, idx as u32));
        self.current[idx] = free_at;
    }

    /// Collects the dense indices of every GPU whose free time is strictly
    /// before `horizon`, sorted ascending (registration order), into `out`.
    pub fn actionable_into(&self, horizon: Timestamp, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.by_time
                .range(..(horizon, 0u32))
                .map(|&(_, idx)| idx as usize),
        );
        out.sort_unstable();
    }

    /// The earliest indexed free time at or after `horizon`, skipping the
    /// [`Timestamp::MAX`] parked sentinel: the next instant at which pure
    /// time passage makes a currently non-actionable GPU actionable.
    pub fn next_beyond(&self, horizon: Timestamp) -> Option<Timestamp> {
        self.by_time
            .range((horizon, 0u32)..)
            .map(|&(t, _)| t)
            .find(|&t| t != Timestamp::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gref(w: u32, g: u32) -> GpuRef {
        GpuRef {
            worker: WorkerId(w),
            gpu: GpuId(g),
        }
    }

    fn outstanding(id: u64, model: u32, done_ms: u64, is_load: bool) -> OutstandingAction {
        OutstandingAction {
            id: ActionId(id),
            model: ModelId(model),
            expected_completion: Timestamp::from_millis(done_ms),
            is_load,
        }
    }

    #[test]
    fn add_and_lookup_gpus() {
        let mut t = WorkerStateTracker::new();
        assert!(t.is_empty());
        t.add_gpu(gref(0, 0), 100, 16);
        t.add_gpu(gref(0, 1), 100, 16);
        t.add_gpu(gref(1, 0), 50, 16);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(gref(1, 0)).unwrap().total_pages, 50);
        assert!(t.get(gref(9, 9)).is_none());
        assert_eq!(format!("{}", gref(1, 0)), "w1/g0");
    }

    #[test]
    fn load_reserves_pages_and_result_confirms_residency() {
        let mut g = GpuTrack::new(gref(0, 0), 10, 16 * 1024 * 1024);
        let model = ModelId(7);
        let pages = g.pages_for(100 * 1024 * 1024);
        assert_eq!(pages, 7);
        g.note_load_sent(
            outstanding(1, 7, 20, true),
            pages,
            Timestamp::from_millis(10),
            Nanos::from_millis(8),
        );
        assert_eq!(g.free_pages, 3);
        assert!(g.has_or_loading(model));
        assert!(!g.is_resident(model));
        assert_eq!(g.load_free_at, Timestamp::from_millis(18));
        g.note_load_result(ActionId(1), model, true);
        assert!(g.is_resident(model));
        assert_eq!(g.free_pages, 3, "pages stay allocated after success");
        assert!(g.outstanding.is_empty());
    }

    #[test]
    fn failed_load_returns_pages() {
        let mut g = GpuTrack::new(gref(0, 0), 10, 16 * 1024 * 1024);
        g.note_load_sent(
            outstanding(1, 7, 20, true),
            4,
            Timestamp::ZERO,
            Nanos::from_millis(8),
        );
        assert_eq!(g.free_pages, 6);
        g.note_load_result(ActionId(1), ModelId(7), false);
        assert_eq!(g.free_pages, 10);
        assert!(!g.has_or_loading(ModelId(7)));
    }

    #[test]
    fn unload_frees_pages_immediately() {
        let mut g = GpuTrack::new(gref(0, 0), 10, 16 * 1024 * 1024);
        g.note_load_sent(
            outstanding(1, 7, 20, true),
            4,
            Timestamp::ZERO,
            Nanos::from_millis(8),
        );
        g.note_load_result(ActionId(1), ModelId(7), true);
        g.note_unload_sent(ModelId(7));
        assert_eq!(g.free_pages, 10);
        assert!(!g.is_resident(ModelId(7)));
        // Unloading something unknown is harmless.
        g.note_unload_sent(ModelId(99));
        assert_eq!(g.free_pages, 10);
    }

    #[test]
    fn infer_occupies_executor_and_touches_lru() {
        let mut g = GpuTrack::new(gref(0, 0), 10, 16 * 1024 * 1024);
        g.note_infer_sent(
            outstanding(5, 3, 12, false),
            Timestamp::from_millis(10),
            Nanos::from_millis(3),
        );
        assert_eq!(g.exec_free_at, Timestamp::from_millis(13));
        assert_eq!(
            g.next_exec_slot(Timestamp::from_millis(5)),
            Timestamp::from_millis(13)
        );
        assert_eq!(
            g.next_exec_slot(Timestamp::from_millis(20)),
            Timestamp::from_millis(20)
        );
        assert_eq!(
            g.last_used.get(&ModelId(3)),
            Some(&Timestamp::from_millis(10))
        );
        g.note_infer_result(ActionId(5));
        assert!(g.outstanding.is_empty());
    }

    #[test]
    fn lru_candidate_respects_protection_and_order() {
        let mut g = GpuTrack::new(gref(0, 0), 20, 16 * 1024 * 1024);
        for (i, used_ms) in [(1u32, 30u64), (2, 10), (3, 20)] {
            g.note_load_sent(
                outstanding(u64::from(i), i, 5, true),
                2,
                Timestamp::ZERO,
                Nanos::from_millis(1),
            );
            g.note_load_result(ActionId(u64::from(i)), ModelId(i), true);
            g.last_used
                .insert(ModelId(i), Timestamp::from_millis(used_ms));
        }
        let none = HashSet::new();
        assert_eq!(g.lru_candidate(&none), Some(ModelId(2)));
        let protect: HashSet<ModelId> = [ModelId(2)].into_iter().collect();
        assert_eq!(g.lru_candidate(&protect), Some(ModelId(3)));
        let all: HashSet<ModelId> = [ModelId(1), ModelId(2), ModelId(3)].into_iter().collect();
        assert_eq!(g.lru_candidate(&all), None);
    }

    #[test]
    fn note_fault_wipes_state_and_note_recovered_restores_cold() {
        let mut g = GpuTrack::new(gref(0, 0), 10, 16 * 1024 * 1024);
        g.note_load_sent(
            outstanding(1, 7, 20, true),
            4,
            Timestamp::ZERO,
            Nanos::from_millis(8),
        );
        g.note_load_result(ActionId(1), ModelId(7), true);
        g.note_infer_sent(
            outstanding(2, 7, 30, false),
            Timestamp::from_millis(10),
            Nanos::from_millis(3),
        );
        assert!(g.alive);
        g.note_fault(Timestamp::from_millis(20));
        assert!(!g.alive);
        assert_eq!(g.free_pages, 10);
        assert!(g.resident.is_empty());
        assert!(g.outstanding.is_empty());
        assert_eq!(g.exec_free_at, Timestamp::from_millis(20));
        // A stale LOAD result (produced pre-crash) must not resurrect
        // residency on the wiped GPU, and must report that it was ignored.
        assert!(!g.note_load_result(ActionId(1), ModelId(7), true));
        assert!(!g.is_resident(ModelId(7)));
        g.note_recovered(Timestamp::from_millis(50));
        assert!(g.alive);
        assert!(g.resident.is_empty(), "recovery is cold");
        assert_eq!(g.exec_free_at, Timestamp::from_millis(50));
    }

    #[test]
    fn free_at_index_tracks_actionable_gpus_in_registration_order() {
        let mut index = FreeAtIndex::new();
        assert!(index.is_empty());
        for _ in 0..4 {
            index.push_gpu();
        }
        assert_eq!(index.len(), 4);
        index.update(0, Timestamp::from_millis(50));
        index.update(2, Timestamp::from_millis(5));
        index.update(3, Timestamp::MAX); // dead GPU
        let mut out = Vec::new();
        index.actionable_into(Timestamp::from_millis(10), &mut out);
        assert_eq!(out, vec![1, 2], "free-at 0 and 5ms are actionable, sorted");
        // The horizon bound is strict: a GPU free exactly at the horizon is
        // not actionable, matching the scan's `slot >= horizon` break.
        index.actionable_into(Timestamp::from_millis(5), &mut out);
        assert_eq!(out, vec![1]);
        index.update(3, Timestamp::ZERO); // recovered
        index.actionable_into(Timestamp::from_millis(10), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(index.free_at(0), Timestamp::from_millis(50));
    }

    #[test]
    fn free_at_index_next_beyond_skips_parked_gpus() {
        let mut index = FreeAtIndex::new();
        for _ in 0..3 {
            index.push_gpu();
        }
        index.update(0, Timestamp::from_millis(50));
        index.update(1, Timestamp::from_millis(5));
        index.update(2, Timestamp::MAX); // dead GPU never becomes actionable
        assert_eq!(
            index.next_beyond(Timestamp::from_millis(10)),
            Some(Timestamp::from_millis(50))
        );
        // Inclusive at the horizon: a GPU free exactly at the horizon is the
        // first to become actionable once time passes it.
        assert_eq!(
            index.next_beyond(Timestamp::from_millis(5)),
            Some(Timestamp::from_millis(5))
        );
        assert_eq!(index.next_beyond(Timestamp::from_millis(51)), None);
        assert_eq!(FreeAtIndex::new().next_beyond(Timestamp::ZERO), None);
    }

    #[test]
    fn apply_fault_parks_capacity_and_returns_lost_actions_sorted() {
        let mut t = WorkerStateTracker::new();
        t.add_gpu(gref(0, 0), 10, 16 * 1024 * 1024);
        t.add_gpu(gref(0, 1), 10, 16 * 1024 * 1024);
        t.add_gpu(gref(1, 0), 10, 16 * 1024 * 1024);
        for (gpu, id) in [(gref(0, 0), 9u64), (gref(0, 0), 2), (gref(0, 1), 5)] {
            t.get_mut(gpu).unwrap().note_infer_sent(
                outstanding(id, 1, 50, false),
                Timestamp::ZERO,
                Nanos::from_millis(3),
            );
        }
        let now = Timestamp::from_millis(10);
        let lost = t.apply_fault(now, &FaultKind::WorkerCrash { worker: 0 });
        assert_eq!(
            lost,
            vec![ActionId(2), ActionId(5), ActionId(9)],
            "lost ids cover every GPU of the worker, sorted"
        );
        assert!(!t.get(gref(0, 0)).unwrap().alive);
        assert!(!t.get(gref(0, 1)).unwrap().alive);
        assert!(t.get(gref(1, 0)).unwrap().alive, "other workers untouched");
        // A lone GPU recovery cannot revive a GPU of a crashed worker.
        t.apply_fault(now, &FaultKind::GpuRecover { worker: 0, gpu: 0 });
        assert!(!t.get(gref(0, 0)).unwrap().alive);
        // The restart re-admits every GPU, cold.
        let lost = t.apply_fault(now, &FaultKind::WorkerRestart { worker: 0 });
        assert!(lost.is_empty());
        assert!(t.get(gref(0, 0)).unwrap().alive);
        assert!(t.get(gref(0, 1)).unwrap().alive);
        // Single-GPU failure and standalone recovery.
        let lost = t.apply_fault(now, &FaultKind::GpuFail { worker: 1, gpu: 0 });
        assert!(lost.is_empty());
        assert!(!t.get(gref(1, 0)).unwrap().alive);
        t.apply_fault(now, &FaultKind::GpuRecover { worker: 1, gpu: 0 });
        assert!(t.get(gref(1, 0)).unwrap().alive);
        // Link faults touch nothing.
        t.apply_fault(now, &FaultKind::PartitionStart { worker: 1 });
        assert!(t.get(gref(1, 0)).unwrap().alive);
        // Faults naming unknown capacity are ignored.
        assert!(t
            .apply_fault(now, &FaultKind::GpuFail { worker: 9, gpu: 9 })
            .is_empty());
    }

    #[test]
    fn cluster_queries() {
        let mut t = WorkerStateTracker::new();
        t.add_gpu(gref(0, 0), 10, 16 * 1024 * 1024);
        t.add_gpu(gref(1, 0), 10, 16 * 1024 * 1024);
        t.get_mut(gref(1, 0)).unwrap().note_load_sent(
            outstanding(1, 5, 8, true),
            2,
            Timestamp::ZERO,
            Nanos::from_millis(8),
        );
        assert!(t.model_available_somewhere(ModelId(5)));
        assert!(!t.model_available_somewhere(ModelId(6)));
        assert_eq!(t.gpus_with_model(ModelId(5)), vec![gref(1, 0)]);
        // Occupy gpu 0's exec engine; least loaded should be gpu 1.
        t.get_mut(gref(0, 0)).unwrap().note_infer_sent(
            outstanding(2, 5, 50, false),
            Timestamp::ZERO,
            Nanos::from_millis(50),
        );
        assert_eq!(t.least_loaded_gpu(Timestamp::ZERO), Some(gref(1, 0)));
        assert!((t.get(gref(0, 0)).unwrap().occupancy() - 0.0).abs() < 1e-12);
    }
}
