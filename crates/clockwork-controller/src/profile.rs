//! Rolling action-duration profiles (§5.3 "action profiles").
//!
//! The controller predicts how long every action will take before sending it.
//! Predictions come from two sources: a *seed* estimate produced by the
//! offline profiling step (or derived from the model's compiled latency
//! table), and a rolling window of the most recent measurements reported by
//! workers — the paper uses the last 10 measurements, stratified by action
//! type, model and batch size, and predicts with a rolling 99th percentile so
//! it errs on the side of slight over-prediction (Fig. 9 shows the resulting
//! asymmetry).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use clockwork_metrics::OrderStatWindow;
use clockwork_model::ModelId;
use clockwork_sim::time::Nanos;

/// Which kind of action a profile describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileKind {
    /// Weights transfer host → device.
    Load,
    /// Kernel execution at a specific batch size.
    Exec,
}

/// Key identifying one profile: action type, model, and batch size (0 for
/// LOAD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    /// The model.
    pub model: ModelId,
    /// The action type.
    pub kind: ProfileKind,
    /// Batch size (0 for LOAD).
    pub batch: u32,
}

impl ProfileKey {
    /// Profile key for loading a model's weights.
    pub fn load(model: ModelId) -> Self {
        ProfileKey {
            model,
            kind: ProfileKind::Load,
            batch: 0,
        }
    }

    /// Profile key for executing a model at a batch size.
    pub fn exec(model: ModelId, batch: u32) -> Self {
        ProfileKey {
            model,
            kind: ProfileKind::Exec,
            batch,
        }
    }
}

/// Rolling per-key duration estimator.
#[derive(Clone, Debug)]
pub struct ActionProfiler {
    window_size: usize,
    percentile: f64,
    seeds: HashMap<ProfileKey, Nanos>,
    windows: HashMap<ProfileKey, OrderStatWindow>,
    measurements: u64,
    epoch: u64,
    model_epochs: HashMap<ModelId, u64>,
}

impl Default for ActionProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl ActionProfiler {
    /// Creates a profiler with the paper's defaults: 10-measurement window,
    /// 99th percentile estimates.
    pub fn new() -> Self {
        Self::with_params(10, 99.0)
    }

    /// Creates a profiler with an explicit window size and percentile.
    ///
    /// # Panics
    /// Panics if `window_size` is zero.
    pub fn with_params(window_size: usize, percentile: f64) -> Self {
        assert!(window_size > 0, "profile window must be non-empty");
        ActionProfiler {
            window_size,
            percentile,
            seeds: HashMap::new(),
            windows: HashMap::new(),
            measurements: 0,
            epoch: 0,
            model_epochs: HashMap::new(),
        }
    }

    /// Installs a seed estimate for a key (from offline profiling or the
    /// compiled latency table). Overwrites any previous seed.
    pub fn seed(&mut self, key: ProfileKey, estimate: Nanos) {
        self.bump_epochs(key.model);
        self.seeds.insert(key, estimate);
    }

    /// Records a measured duration reported by a worker.
    pub fn record(&mut self, key: ProfileKey, measured: Nanos) {
        self.measurements += 1;
        self.bump_epochs(key.model);
        self.windows
            .entry(key)
            .or_insert_with(|| OrderStatWindow::new(self.window_size))
            .push(measured);
    }

    fn bump_epochs(&mut self, model: ModelId) {
        self.epoch += 1;
        *self.model_epochs.entry(model).or_insert(0) += 1;
    }

    /// The current estimate for a key: the rolling percentile if measurements
    /// exist, otherwise the seed, otherwise `None`.
    pub fn estimate(&self, key: ProfileKey) -> Option<Nanos> {
        if let Some(w) = self.windows.get(&key) {
            if let Some(p) = w.percentile(self.percentile) {
                return Some(p);
            }
        }
        self.seeds.get(&key).copied()
    }

    /// Like [`estimate`](Self::estimate) but falls back to a caller-provided
    /// default.
    pub fn estimate_or(&self, key: ProfileKey, default: Nanos) -> Nanos {
        self.estimate(key).unwrap_or(default)
    }

    /// Total number of measurements recorded.
    pub fn measurement_count(&self) -> u64 {
        self.measurements
    }

    /// A counter that advances whenever any estimate may have changed (a new
    /// measurement or seed). Callers that cache values derived from estimates
    /// compare epochs instead of re-reading every profile.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Like [`ActionProfiler::epoch`], but scoped to one model: advances only
    /// when one of *that model's* estimates may have changed, so a stream of
    /// measurements for other models does not invalidate caches derived from
    /// this one.
    pub fn model_epoch(&self, model: ModelId) -> u64 {
        self.model_epochs.get(&model).copied().unwrap_or(0)
    }

    /// Number of keys with at least a seed or a measurement.
    pub fn key_count(&self) -> usize {
        let mut keys: Vec<&ProfileKey> = self.seeds.keys().chain(self.windows.keys()).collect();
        keys.sort_unstable_by_key(|k| (k.model, k.batch, matches!(k.kind, ProfileKind::Load)));
        keys.dedup();
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_prefers_measurements_over_seed() {
        let mut p = ActionProfiler::new();
        let key = ProfileKey::exec(ModelId(1), 4);
        assert_eq!(p.estimate(key), None);
        p.seed(key, Nanos::from_millis(5));
        assert_eq!(p.estimate(key), Some(Nanos::from_millis(5)));
        p.record(key, Nanos::from_millis(6));
        assert_eq!(p.estimate(key), Some(Nanos::from_millis(6)));
        assert_eq!(p.measurement_count(), 1);
    }

    #[test]
    fn rolling_window_forgets_old_measurements() {
        let mut p = ActionProfiler::with_params(3, 99.0);
        let key = ProfileKey::load(ModelId(2));
        p.record(key, Nanos::from_millis(100));
        for _ in 0..3 {
            p.record(key, Nanos::from_millis(8));
        }
        // The 100 ms outlier has been pushed out of the window.
        assert_eq!(p.estimate(key), Some(Nanos::from_millis(8)));
    }

    #[test]
    fn high_percentile_tracks_the_slowest_recent_sample() {
        let mut p = ActionProfiler::new();
        let key = ProfileKey::exec(ModelId(3), 1);
        for us in [2_890u64, 2_900, 2_895, 2_910, 2_893] {
            p.record(key, Nanos::from_micros(us));
        }
        assert_eq!(p.estimate(key), Some(Nanos::from_micros(2_910)));
    }

    #[test]
    fn keys_are_stratified_by_model_kind_and_batch() {
        let mut p = ActionProfiler::new();
        p.record(ProfileKey::exec(ModelId(1), 1), Nanos::from_millis(3));
        p.record(ProfileKey::exec(ModelId(1), 16), Nanos::from_millis(16));
        p.record(ProfileKey::load(ModelId(1)), Nanos::from_millis(8));
        assert_eq!(
            p.estimate(ProfileKey::exec(ModelId(1), 1)),
            Some(Nanos::from_millis(3))
        );
        assert_eq!(
            p.estimate(ProfileKey::exec(ModelId(1), 16)),
            Some(Nanos::from_millis(16))
        );
        assert_eq!(
            p.estimate(ProfileKey::load(ModelId(1))),
            Some(Nanos::from_millis(8))
        );
        assert_eq!(p.estimate(ProfileKey::exec(ModelId(2), 1)), None);
        assert_eq!(p.key_count(), 3);
    }

    #[test]
    fn estimate_or_falls_back() {
        let p = ActionProfiler::new();
        assert_eq!(
            p.estimate_or(ProfileKey::load(ModelId(9)), Nanos::from_millis(10)),
            Nanos::from_millis(10)
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let _ = ActionProfiler::with_params(0, 99.0);
    }
}
