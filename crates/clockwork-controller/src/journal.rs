//! Change journal and self-profiling counters for incremental schedulers.
//!
//! The tick pipeline used to rebuild the world on every 1 ms tick. The
//! incremental core instead records *that something changed* (a dirty bit)
//! and *until when nothing can change on its own* (a clean-until horizon),
//! and skips the tick body whenever both say there is nothing to do.
//!
//! [`ChangeJournal`] is the tiny state machine behind that decision, and
//! [`SchedProfile`] is the counter block schedulers export so the harness
//! (and the `sched` object in the bench JSON artifacts) can see how much
//! work each tick actually did.

use clockwork_sim::time::Timestamp;

/// Dirty-bit + clean-horizon journal driving the early-out `on_tick`.
///
/// Writers ([`ChangeJournal::note_change`]) are the event-driven entry
/// points — request arrival, action result, fault, profile-epoch bump,
/// topology change. The scheduling pass calls
/// [`ChangeJournal::mark_clean_until`] when it finishes, recording the
/// earliest future instant at which pure time passage could make another
/// pass productive (an executor crossing into the lookahead horizon, a
/// deadline expiring, a cold-rejection aging out). A tick is skippable
/// exactly when no change was journaled *and* `now` is still before that
/// horizon — see [`ChangeJournal::needs_pass`].
#[derive(Clone, Debug)]
pub struct ChangeJournal {
    dirty: bool,
    clean_until: Timestamp,
}

impl Default for ChangeJournal {
    fn default() -> Self {
        ChangeJournal::new()
    }
}

impl ChangeJournal {
    /// A fresh journal: dirty, so the first pass always runs.
    pub fn new() -> Self {
        ChangeJournal {
            dirty: true,
            clean_until: Timestamp::ZERO,
        }
    }

    /// Records an externally-driven state change; the next tick must run a
    /// full pass.
    pub fn note_change(&mut self) {
        self.dirty = true;
    }

    /// Records that a full pass just completed and, absent further changes,
    /// no pass before `until` can produce different decisions. Pass
    /// [`Timestamp::MAX`] when the scheduler is quiescent (no time edge
    /// pending at all).
    pub fn mark_clean_until(&mut self, until: Timestamp) {
        self.dirty = false;
        self.clean_until = until;
    }

    /// Whether a tick at `now` must run the full pass.
    pub fn needs_pass(&self, now: Timestamp) -> bool {
        self.dirty || now >= self.clean_until
    }

    /// Whether any change was journaled since the last completed pass.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The recorded clean horizon ([`Timestamp::MAX`] when quiescent).
    pub fn clean_until(&self) -> Timestamp {
        self.clean_until
    }
}

/// Scheduler self-profiling counters, exported through
/// [`Scheduler::sched_profile`](crate::Scheduler::sched_profile) and folded
/// into run telemetry and the `sched` object of the bench JSON artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedProfile {
    /// Ticks that ran the full scheduling pass.
    pub ticks_full: u64,
    /// Ticks answered by the early-out (no change journaled, clean horizon
    /// not reached).
    pub ticks_skipped: u64,
    /// (model, GPU) candidate pairs examined while placing INFERs.
    pub candidates_scanned: u64,
    /// Per-model strategy-queue rebuilds (cache misses on queue or profile
    /// epoch).
    pub strategies_recomputed: u64,
    /// LOAD-priority list recomputations (once per pass plus one per
    /// residency-changing dispatch, instead of once per GPU slot).
    pub load_prio_recomputes: u64,
}

impl SchedProfile {
    /// Total ticks observed (full + skipped).
    pub fn ticks(&self) -> u64 {
        self.ticks_full + self.ticks_skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_starts_dirty_and_tracks_clean_horizon() {
        let mut j = ChangeJournal::new();
        assert!(j.needs_pass(Timestamp::ZERO), "first pass always runs");
        j.mark_clean_until(Timestamp::from_millis(5));
        assert!(!j.is_dirty());
        assert!(!j.needs_pass(Timestamp::from_millis(4)));
        assert!(
            j.needs_pass(Timestamp::from_millis(5)),
            "horizon is inclusive: at the edge the pass runs"
        );
        j.note_change();
        assert!(j.needs_pass(Timestamp::ZERO), "any change forces a pass");
        j.mark_clean_until(Timestamp::MAX);
        assert!(!j.needs_pass(Timestamp::from_secs(1_000_000)), "quiescent");
    }

    #[test]
    fn sched_profile_totals() {
        let p = SchedProfile {
            ticks_full: 3,
            ticks_skipped: 7,
            ..SchedProfile::default()
        };
        assert_eq!(p.ticks(), 10);
    }
}
