//! The `Scheduler` interface (§5.3).
//!
//! The controller separates mechanism from policy: a thin layer handles
//! networking, forwarding inputs, timestamping and timeouts, while all choice
//! is concentrated behind the [`Scheduler`] trait — `onRequest` and
//! `onResult` callbacks that may emit actions to workers and responses to
//! clients through a [`SchedulerCtx`]. Different scheduler implementations
//! (the Clockwork scheduler, the ablation schedulers, the baseline
//! disciplines) drop into the same harness.

use std::sync::Arc;

use clockwork_metrics::trace::TraceEvent;
use clockwork_model::{ModelId, ModelSpec};
use clockwork_sim::time::Timestamp;
use clockwork_worker::{Action, ActionId, ActionKind, GpuId, TimeWindow, WorkerId};

use clockwork_sim::time::Nanos;

use crate::journal::SchedProfile;
use crate::request::{InferenceRequest, Response};
use crate::worker_state::GpuRef;

/// What a tick actually did, reported back to the harness so telemetry can
/// distinguish productive passes from early-outs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickOutcome {
    /// The tick ran the full scheduling pass.
    Full,
    /// The tick returned immediately: nothing changed since the last pass
    /// and no time edge was crossed.
    Skipped,
}

/// The outbound channel a scheduler writes into during a callback.
#[derive(Debug, Default)]
pub struct SchedulerCtx {
    actions: Vec<(WorkerId, Action)>,
    responses: Vec<Response>,
    next_action_id: u64,
    tracing: bool,
    trace: Vec<TraceEvent>,
}

impl SchedulerCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        SchedulerCtx::default()
    }

    /// Mints a fresh action id.
    pub fn new_action_id(&mut self) -> ActionId {
        let id = ActionId(self.next_action_id);
        self.next_action_id += 1;
        id
    }

    /// Builds and queues an action for a worker, returning its id.
    pub fn send_action(
        &mut self,
        worker: WorkerId,
        gpu: GpuId,
        kind: ActionKind,
        window: TimeWindow,
        expected_duration: Nanos,
    ) -> ActionId {
        let id = self.new_action_id();
        self.actions.push((
            worker,
            Action {
                id,
                gpu,
                kind,
                window,
                expected_duration,
            },
        ));
        id
    }

    /// Queues an already-built action.
    pub fn send_prebuilt(&mut self, worker: WorkerId, action: Action) {
        self.actions.push((worker, action));
    }

    /// Queues a response to a client.
    pub fn send_response(&mut self, response: Response) {
        self.responses.push(response);
    }

    /// Number of queued actions.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Number of queued responses.
    pub fn response_count(&self) -> usize {
        self.responses.len()
    }

    /// Drains the queued actions (called by the controller harness).
    pub fn take_actions(&mut self) -> Vec<(WorkerId, Action)> {
        std::mem::take(&mut self.actions)
    }

    /// Drains the queued responses (called by the controller harness).
    pub fn take_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.responses)
    }

    /// Drains the queued actions into a caller-provided buffer, reusing its
    /// capacity (the steady-state event loop calls this once per event).
    pub fn drain_actions_into(&mut self, out: &mut Vec<(WorkerId, Action)>) {
        out.clear();
        std::mem::swap(&mut self.actions, out);
    }

    /// Drains the queued responses into a caller-provided buffer, reusing its
    /// capacity.
    pub fn drain_responses_into(&mut self, out: &mut Vec<Response>) {
        out.clear();
        std::mem::swap(&mut self.responses, out);
    }

    /// Enables or disables lifecycle tracing. Off by default; the harness
    /// flips this on when the experiment requests a trace.
    pub fn set_tracing(&mut self, tracing: bool) {
        self.tracing = tracing;
    }

    /// Whether lifecycle tracing is on. Schedulers check this before building
    /// a [`TraceEvent`], so the off path is one predictable branch.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Queues a lifecycle trace event. No-op while tracing is off, so call
    /// sites that pass a cheap event need no guard of their own.
    #[inline]
    pub fn trace(&mut self, event: TraceEvent) {
        if self.tracing {
            self.trace.push(event);
        }
    }

    /// Drains the queued trace events into a caller-provided buffer, reusing
    /// its capacity.
    pub fn drain_trace_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.clear();
        std::mem::swap(&mut self.trace, out);
    }
}

/// A scheduling policy plugged into the controller.
///
/// The harness owns mechanism (networking, timestamping, event delivery) and
/// a scheduler owns policy. Disciplines are constructed behind this trait as
/// `Box<dyn Scheduler>` — usually through a
/// [`SchedulerFactory`](crate::registry::SchedulerFactory) looked up in a
/// [`SchedulerRegistry`](crate::registry::SchedulerRegistry) — so the serving
/// system never needs to know the concrete set of disciplines.
pub trait Scheduler {
    /// Registers a GPU the scheduler may place work on. Called once per GPU
    /// at assembly time, and again at runtime when a new worker joins the
    /// fleet (`FaultKind::WorkerJoin`): a joining GPU must become schedulable
    /// as cold, empty capacity.
    fn add_gpu(&mut self, gpu_ref: GpuRef, total_pages: u64, page_size: u64);

    /// Registers a model the scheduler may serve. `load_seed` is the initial
    /// LOAD-duration estimate (typically the PCIe transfer time of the
    /// weights) used until real measurements arrive.
    fn add_model(&mut self, id: ModelId, spec: Arc<ModelSpec>, load_seed: Nanos);

    /// A client request arrived.
    fn on_request(&mut self, now: Timestamp, request: InferenceRequest, ctx: &mut SchedulerCtx);

    /// A worker reported the result of an action.
    fn on_result(
        &mut self,
        now: Timestamp,
        result: &clockwork_worker::ActionResult,
        ctx: &mut SchedulerCtx,
    );

    /// Periodic opportunity to top up worker schedules and expire requests.
    /// Returns whether the tick did real work or early-outed; schedulers
    /// without an incremental core simply return [`TickOutcome::Full`].
    fn on_tick(&mut self, now: Timestamp, ctx: &mut SchedulerCtx) -> TickOutcome;

    /// A fleet fault occurred (worker crash/restart/join, GPU
    /// failure/recovery, link degradation/partition). The scheduler must drop
    /// its view of dead capacity, resolve actions it will never hear back
    /// about, and re-admit recovered capacity as cold. Every discipline —
    /// Clockwork and the baselines alike — is fault-aware; there is
    /// deliberately no default implementation, so a new discipline cannot
    /// silently ignore churn. (Capacity added by a `WorkerJoin` is announced
    /// through [`Scheduler::add_gpu`] before this hook fires; most
    /// disciplines only need to re-run their dispatch pass here.)
    fn on_fault(
        &mut self,
        now: Timestamp,
        fault: &clockwork_sim::engine::FaultKind,
        ctx: &mut SchedulerCtx,
    );

    /// When the scheduler next wants `on_tick` to run, if at all. An
    /// incremental scheduler returns `None` while quiescent so idle ticks
    /// are never scheduled.
    fn next_tick(&self, now: Timestamp) -> Option<Timestamp>;

    /// The scheduler's self-profiling counters. Disciplines without an
    /// incremental core report the default (all-zero) profile.
    fn sched_profile(&self) -> SchedProfile {
        SchedProfile::default()
    }

    /// A short human-readable name (used in experiment output). Required so
    /// experiment output can never show an anonymous discipline.
    fn name(&self) -> &'static str;

    /// The scheduler as `Any`, for experiment code that needs to reach a
    /// concrete discipline's extra surface (e.g. the Clockwork scheduler's
    /// recorded predictions) behind the trait object.
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_model::ModelId;

    #[test]
    fn context_mints_unique_ids_and_drains() {
        let mut ctx = SchedulerCtx::new();
        let a = ctx.new_action_id();
        let b = ctx.new_action_id();
        assert_ne!(a, b);
        let id = ctx.send_action(
            WorkerId(1),
            GpuId(0),
            ActionKind::Load { model: ModelId(3) },
            TimeWindow::always(),
            Nanos::from_millis(8),
        );
        assert_ne!(id, b);
        assert_eq!(ctx.action_count(), 1);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].0, WorkerId(1));
        assert_eq!(actions[0].1.id, id);
        assert_eq!(ctx.action_count(), 0);
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn responses_queue_and_drain() {
        use crate::request::{RequestId, RequestOutcome};
        let mut ctx = SchedulerCtx::new();
        ctx.send_response(Response {
            request: RequestId(1),
            model: ModelId(1),
            arrival: Timestamp::ZERO,
            deadline: Timestamp::from_millis(100),
            outcome: RequestOutcome::Rejected {
                at: Timestamp::ZERO,
                reason: crate::request::RejectReason::UnknownModel,
            },
        });
        assert_eq!(ctx.response_count(), 1);
        assert_eq!(ctx.take_responses().len(), 1);
        assert_eq!(ctx.response_count(), 0);
    }
}
