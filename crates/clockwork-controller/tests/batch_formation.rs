//! Property tests for batch formation (`clockwork_controller::batching`).
//!
//! The safety claim behind SLO-aware batching is absolute: *no formed batch
//! may violate any member's deadline at the profiled batch cost*. The
//! strategy-queue build encodes that via the running minimum deadline over
//! the queue prefix each batch would serve, and the feasibility search must
//! preserve it even when measured profiles invert the usual
//! bigger-batch-takes-longer ordering. These tests drive both functions
//! with arbitrary queues, arbitrary (deliberately non-monotone) per-batch
//! estimates, and arbitrary probe instants, and check the deadline property
//! directly — plus the structural invariants the scheduler's binary search
//! relies on.

use proptest::prelude::*;

use clockwork_controller::batching::{amortized_drain_cost, build_strategies, largest_feasible};
use clockwork_sim::time::{Nanos, Timestamp};

/// Compiled batch-size ladders seen in the model zoo (always including 1).
fn batch_ladder() -> impl Strategy<Value = Vec<u32>> {
    (0usize..4).prop_map(|pick| match pick {
        0 => vec![1],
        1 => vec![1, 2],
        2 => vec![1, 2, 4, 8],
        _ => vec![1, 2, 4, 8, 16],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever entry the search returns, starting then and running for the
    /// estimated duration (plus the network allowance) meets the deadline
    /// of every request in the prefix the batch serves.
    #[test]
    fn no_formed_batch_violates_a_member_deadline(
        deadlines_us in proptest::collection::vec(1_000u64..200_000, 1..24),
        ladder in batch_ladder(),
        // Per-batch estimate factors: est(batch) = base * factor, where the
        // factor sequence is arbitrary — so larger batches may profile
        // FASTER than smaller ones (the non-monotone measured case).
        est_us in proptest::collection::vec(100u64..30_000, 5),
        probe_us in 0u64..250_000,
        allowance_us in 0u64..2_000,
    ) {
        let deadlines: Vec<Timestamp> = deadlines_us
            .iter()
            .map(|&us| Timestamp::ZERO + Nanos::from_micros(us))
            .collect();
        let est = |batch: u32| {
            // Index the factor table by the batch's position in the ladder.
            let idx = ladder.iter().position(|&b| b == batch).unwrap_or(0);
            Nanos::from_micros(est_us[idx.min(est_us.len() - 1)])
        };
        let allowance = Nanos::from_micros(allowance_us);
        let mut strategies = Vec::new();
        build_strategies(
            deadlines.iter().copied(),
            ladder.iter().copied(),
            deadlines.len() as u32,
            allowance,
            true,
            est,
            &mut strategies,
        );

        // Structural invariants the binary search needs.
        prop_assert!(
            strategies.windows(2).all(|w| w[0].0 < w[1].0),
            "entries ascend by batch size"
        );
        prop_assert!(
            strategies.windows(2).all(|w| w[0].2 >= w[1].2),
            "suffix-max key is non-increasing"
        );
        prop_assert!(
            strategies.iter().all(|&(b, _, _)| b as usize <= deadlines.len()),
            "no entry needs more requests than are queued"
        );

        let exec_start = Timestamp::ZERO + Nanos::from_micros(probe_us);
        if let Some((batch, required_start)) = largest_feasible(&strategies, exec_start) {
            prop_assert!(exec_start <= required_start, "chosen entry is feasible");
            let done = exec_start + est(batch) + allowance;
            for d in &deadlines[..batch as usize] {
                prop_assert!(
                    done <= *d,
                    "batch {} started at {:?} finishes {:?}, past member deadline {:?}",
                    batch, exec_start, done, d
                );
            }
        } else {
            // None means even batch 1 misses the front request's deadline.
            if let Some(&(b1, r1, _)) = strategies.first() {
                prop_assert_eq!(b1, 1);
                prop_assert!(exec_start > r1, "search refused a feasible batch 1");
            }
        }
    }

    /// The admission price never undercounts work: the greedy cover of the
    /// backlog costs at least one kernel per ceil(backlog / max_batch), and
    /// splitting it across more holders never increases it.
    #[test]
    fn amortized_cost_is_monotone_in_holders(
        backlog in 1u32..200,
        ladder in batch_ladder(),
        est_us in proptest::collection::vec(100u64..30_000, 5),
        holders in 1u32..8,
    ) {
        let est = |batch: u32| {
            let idx = ladder.iter().position(|&b| b == batch).unwrap_or(0);
            Nanos::from_micros(est_us[idx.min(est_us.len() - 1)])
        };
        let one = amortized_drain_cost(backlog, &ladder, holders, est);
        let more = amortized_drain_cost(backlog, &ladder, holders + 1, est);
        prop_assert!(more <= one, "extra holders must not raise the price");
        let single = amortized_drain_cost(backlog, &ladder, 1, est);
        let cheapest_kernel = ladder.iter().map(|&b| est(b)).min().unwrap();
        prop_assert!(
            single >= cheapest_kernel,
            "draining a non-empty backlog costs at least one kernel"
        );
    }
}
