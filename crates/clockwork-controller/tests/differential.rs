//! Differential test: the change-driven tick pipeline against the
//! rebuild-every-tick oracle.
//!
//! The incremental scheduler's whole correctness argument is "every tick the
//! journal skips would have been a no-op, and `next_tick` only prunes grid
//! points a full pass could not act on". This harness checks that claim the
//! blunt way: drive two copies of [`ClockworkScheduler`] through the same
//! random sequence of requests, synthesized results and fleet faults — one
//! gated exactly the way the facade gates it (`next_tick` + keep-earlier
//! tick reconciliation), the other running [`ClockworkScheduler::
//! run_full_pass`] at every point of the legacy fixed-cadence grid — and
//! require their emitted action and response streams to be byte-identical.
//!
//! The mini event loop here mirrors the facade's semantics precisely: a
//! single queued tick, kept when an earlier one is already pending, cancelled
//! on `None`, FIFO order within a timestamp. Results are synthesized from
//! each side's own actions (success at `window.earliest + expected_duration`)
//! so a divergence cannot cancel itself out.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use clockwork_controller::clockwork_scheduler::{ClockworkScheduler, ClockworkSchedulerConfig};
use clockwork_controller::request::{InferenceRequest, RequestId};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx};
use clockwork_controller::worker_state::GpuRef;
use clockwork_model::zoo::ModelZoo;
use clockwork_model::{ModelId, Tier};
use clockwork_sim::engine::FaultKind;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{
    Action, ActionKind, ActionOutcome, ActionResult, ActionTiming, GpuId, WorkerId,
};

const PAGE: u64 = 16 * 1024 * 1024;

/// One externally injected operation.
#[derive(Clone, Debug)]
enum ExternalOp {
    Request { model: u32, slo_us: u64 },
    GpuFail { worker: u32, gpu: u32 },
    GpuRecover { worker: u32, gpu: u32 },
    WorkerCrash { worker: u32 },
    WorkerRestart { worker: u32 },
}

fn external_op() -> impl Strategy<Value = ExternalOp> {
    // A selector in 0..10 rather than a weighted prop_oneof (the vendored
    // proptest has no weight support): 0-5 request, 6 fail, 7 recover,
    // 8 crash, 9 restart — requests dominate so most cases exercise real
    // scheduling.
    (0u32..10, 0u32..5, 500u64..50_000, 0u32..2, 0u32..2).prop_map(
        |(pick, model, slo_us, worker, gpu)| match pick {
            0..=5 => ExternalOp::Request { model, slo_us },
            6 => ExternalOp::GpuFail { worker, gpu },
            7 => ExternalOp::GpuRecover { worker, gpu },
            8 => ExternalOp::WorkerCrash { worker },
            _ => ExternalOp::WorkerRestart { worker },
        },
    )
}

/// Event kinds of the mini event loop.
enum Event {
    External(ExternalOp),
    Result(Box<ActionResult>),
    Tick,
}

/// How ticks are driven.
enum Cadence {
    /// The facade's contract: `next_tick` decides, skipped grid points
    /// early-out inside `on_tick`.
    Gated,
    /// The legacy rebuild-the-world cadence: a full pass at `now + interval`
    /// after every delivery, for as long as work is outstanding.
    Oracle,
}

/// Runs one scheduler through the op sequence and returns the serialized
/// action + response log.
fn run_side(cadence: Cadence, workers: u32, gpus: u32, ops: &[(u64, ExternalOp)]) -> Vec<String> {
    let zoo = ModelZoo::new();
    let spec = Arc::new(zoo.resnet50().clone());
    let mut sched = ClockworkScheduler::new(ClockworkSchedulerConfig::default());
    for w in 0..workers {
        for g in 0..gpus {
            sched.add_gpu(
                GpuRef {
                    worker: WorkerId(w),
                    gpu: GpuId(g),
                },
                810,
                PAGE,
            );
        }
    }
    // Register models 0..4; op model ids reach 4 so UnknownModel rejections
    // are exercised too.
    for m in 0..4u32 {
        sched.add_model(ModelId(m), Arc::clone(&spec), Nanos::from_millis(8));
    }

    // The queue mirrors the facade's: ordered by (time, push sequence),
    // cancellable by key — exactly one tick entry at a time.
    let mut queue: BTreeMap<(u64, u64), Event> = BTreeMap::new();
    let mut seq = 0u64;
    let mut push = |queue: &mut BTreeMap<(u64, u64), Event>, at: u64, event: Event| -> (u64, u64) {
        let key = (at, seq);
        seq += 1;
        queue.insert(key, event);
        key
    };
    let mut at = 0u64;
    for (dt_us, op) in ops {
        at += dt_us * 1_000;
        push(&mut queue, at, Event::External(op.clone()));
    }

    let mut ctx = SchedulerCtx::new();
    let mut log = Vec::new();
    let mut next_request = 0u64;
    let mut tick_key: Option<(u64, u64)> = None;
    let interval = ClockworkSchedulerConfig::default().tick_interval;

    let mut steps = 0u64;
    while let Some((&key, _)) = queue.iter().next() {
        steps += 1;
        assert!(steps < 200_000, "differential harness did not drain");
        let (at, _) = key;
        let now = Timestamp::from_nanos(at);
        let event = queue.remove(&key).expect("key just observed");
        match event {
            Event::External(op) => match op {
                ExternalOp::Request { model, slo_us } => {
                    let id = RequestId(next_request);
                    next_request += 1;
                    sched.on_request(
                        now,
                        InferenceRequest {
                            id,
                            model: ModelId(model),
                            arrival: now,
                            slo: Nanos::from_micros(slo_us),
                            tier: Tier::Strict,
                        },
                        &mut ctx,
                    );
                }
                ExternalOp::GpuFail { worker, gpu } => {
                    sched.on_fault(now, &FaultKind::GpuFail { worker, gpu }, &mut ctx)
                }
                ExternalOp::GpuRecover { worker, gpu } => {
                    sched.on_fault(now, &FaultKind::GpuRecover { worker, gpu }, &mut ctx)
                }
                ExternalOp::WorkerCrash { worker } => {
                    sched.on_fault(now, &FaultKind::WorkerCrash { worker }, &mut ctx)
                }
                ExternalOp::WorkerRestart { worker } => {
                    sched.on_fault(now, &FaultKind::WorkerRestart { worker }, &mut ctx)
                }
            },
            Event::Result(result) => sched.on_result(now, &result, &mut ctx),
            Event::Tick => {
                tick_key = None;
                match cadence {
                    Cadence::Gated => {
                        sched.on_tick(now, &mut ctx);
                    }
                    Cadence::Oracle => sched.run_full_pass(now, &mut ctx),
                }
            }
        }

        // Drain: log actions/responses and synthesize successful results from
        // this side's own actions.
        for (worker, action) in ctx.take_actions() {
            log.push(describe_action(now, worker, &action));
            let result = synthesize_result(now, worker, &action);
            let end = result.outcome_end();
            push(&mut queue, end, Event::Result(Box::new(result)));
        }
        for response in ctx.take_responses() {
            log.push(format!(
                "{at} response req={} model={} outcome={:?}",
                response.request.0, response.model.0, response.outcome
            ));
        }

        // Reconcile the single queued tick, mirroring the facade: keep an
        // earlier pending tick, replace a later one, cancel on None.
        let desired = match cadence {
            Cadence::Gated => sched.next_tick(now),
            Cadence::Oracle => sched.has_outstanding_work().then(|| now + interval),
        };
        match (desired, tick_key) {
            (Some(tick), Some((pending_at, _))) if pending_at <= tick.as_nanos() => {}
            (Some(tick), prev) => {
                if let Some(key) = prev {
                    queue.remove(&key);
                }
                tick_key = Some(push(&mut queue, tick.as_nanos(), Event::Tick));
            }
            (None, Some(key)) => {
                queue.remove(&key);
                tick_key = None;
            }
            (None, None) => {}
        }
    }
    log
}

fn describe_action(now: Timestamp, worker: WorkerId, action: &Action) -> String {
    let kind = match &action.kind {
        ActionKind::Load { model } => format!("LOAD model={}", model.0),
        ActionKind::Unload { model } => format!("UNLOAD model={}", model.0),
        ActionKind::Infer {
            model,
            batch,
            request_ids,
        } => format!("INFER model={} batch={batch} reqs={request_ids:?}", model.0),
    };
    format!(
        "{} action worker={} gpu={} window=[{},{}] dur={} {kind}",
        now.as_nanos(),
        worker.0,
        action.gpu.0,
        action.window.earliest.as_nanos(),
        action.window.latest.as_nanos(),
        action.expected_duration.as_nanos(),
    )
}

fn synthesize_result(now: Timestamp, worker: WorkerId, action: &Action) -> ActionResult {
    let (model, action_type, batch, request_ids) = match &action.kind {
        ActionKind::Load { model } => (*model, "LOAD", 1, Vec::new()),
        ActionKind::Unload { model } => (*model, "UNLOAD", 1, Vec::new()),
        ActionKind::Infer {
            model,
            batch,
            request_ids,
        } => (*model, "INFER", *batch, request_ids.clone()),
    };
    let start = action.window.earliest.max(now);
    ActionResult {
        action_id: action.id,
        worker,
        gpu: action.gpu,
        model,
        action_type,
        batch,
        request_ids,
        expected_duration: action.expected_duration,
        outcome: ActionOutcome::Success(ActionTiming {
            received: now,
            start,
            end: start + action.expected_duration,
            device_duration: action.expected_duration,
        }),
    }
}

trait OutcomeEnd {
    fn outcome_end(&self) -> u64;
}

impl OutcomeEnd for ActionResult {
    fn outcome_end(&self) -> u64 {
        match &self.outcome {
            ActionOutcome::Success(t) => t.end.as_nanos(),
            _ => unreachable!("harness only synthesizes successes"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The gated incremental pipeline and the rebuild-every-tick oracle make
    /// identical decisions on arbitrary request/result/fault sequences.
    #[test]
    fn gated_ticks_match_rebuild_per_tick_oracle(
        workers in 1u32..3,
        gpus in 1u32..3,
        ops in proptest::collection::vec((1u64..5_000, external_op()), 1..40),
    ) {
        let gated = run_side(Cadence::Gated, workers, gpus, &ops);
        let oracle = run_side(Cadence::Oracle, workers, gpus, &ops);
        prop_assert_eq!(&gated, &oracle,
            "incremental scheduler diverged from the rebuild-per-tick oracle");
    }
}

/// A dense burst against one GPU: deep queues, batching, deadline expiry —
/// the regime where the urgency index and strategy cache earn their keep.
#[test]
fn differential_dense_burst_single_gpu() {
    let ops: Vec<(u64, ExternalOp)> = (0..120)
        .map(|i| {
            (
                if i % 7 == 0 { 900 } else { 40 },
                ExternalOp::Request {
                    model: i % 4,
                    slo_us: 3_000 + (i as u64 % 9) * 2_500,
                },
            )
        })
        .collect();
    let gated = run_side(Cadence::Gated, 1, 1, &ops);
    let oracle = run_side(Cadence::Oracle, 1, 1, &ops);
    assert_eq!(gated, oracle);
    assert!(
        gated.iter().any(|l| l.contains("INFER")),
        "burst produced no INFERs — the scenario is vacuous"
    );
}
