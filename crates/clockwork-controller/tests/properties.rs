//! Property-based tests for the controller's pure state-tracking components.
//!
//! The scheduler's correctness rests on the controller's shadow copy of each
//! worker (pages, residency, executor availability) never drifting from what
//! the worker would compute itself, and on the rolling action profiler always
//! producing estimates bracketed by what was actually observed. These
//! invariants are checked over arbitrary operation sequences here; the
//! end-to-end behaviour of the full scheduler is covered by the system-level
//! tests in `tests/`.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use clockwork_controller::clockwork_scheduler::{ClockworkScheduler, ClockworkSchedulerConfig};
use clockwork_controller::profile::{ActionProfiler, ProfileKey};
use clockwork_controller::request::{InferenceRequest, RejectReason, RequestId, RequestOutcome};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx};
use clockwork_controller::worker_state::{GpuRef, GpuTrack, OutstandingAction, WorkerStateTracker};
use clockwork_model::zoo::ModelZoo;
use clockwork_model::{ModelId, Tier};
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::{ActionId, ActionKind, GpuId, WorkerId};

const PAGE: u64 = 16 * 1024 * 1024;

fn gref(worker: u32, gpu: u32) -> GpuRef {
    GpuRef {
        worker: WorkerId(worker),
        gpu: GpuId(gpu),
    }
}

// ----------------------------------------------------------------------
// ActionProfiler
// ----------------------------------------------------------------------

proptest! {
    #[test]
    fn profiler_estimate_is_bracketed_by_recent_observations(
        window in 1usize..20,
        percentile in 1.0f64..100.0,
        measurements in proptest::collection::vec(1u64..1_000_000_000, 1..100),
    ) {
        let mut profiler = ActionProfiler::with_params(window, percentile);
        let key = ProfileKey::exec(ModelId(1), 4);
        for &m in &measurements {
            profiler.record(key, Nanos::from_nanos(m));
        }
        let recent: Vec<u64> = measurements
            .iter()
            .rev()
            .take(window)
            .copied()
            .collect();
        let est = profiler.estimate(key).expect("measurements recorded");
        prop_assert!(est.as_nanos() >= *recent.iter().min().unwrap());
        prop_assert!(est.as_nanos() <= *recent.iter().max().unwrap());
        prop_assert_eq!(profiler.measurement_count(), measurements.len() as u64);
    }

    #[test]
    fn profiler_measurements_override_seeds_and_keys_are_independent(
        seed_ns in 1u64..1_000_000_000,
        measured_ns in 1u64..1_000_000_000,
    ) {
        let mut profiler = ActionProfiler::new();
        let infer_key = ProfileKey::exec(ModelId(7), 1);
        let load_key = ProfileKey::load(ModelId(7));
        prop_assert_eq!(profiler.estimate(infer_key), None);

        profiler.seed(infer_key, Nanos::from_nanos(seed_ns));
        prop_assert_eq!(profiler.estimate(infer_key), Some(Nanos::from_nanos(seed_ns)));
        // Seeding one key says nothing about the other.
        prop_assert_eq!(profiler.estimate(load_key), None);
        prop_assert_eq!(
            profiler.estimate_or(load_key, Nanos::from_millis(8)),
            Nanos::from_millis(8)
        );

        profiler.record(infer_key, Nanos::from_nanos(measured_ns));
        // A real measurement displaces the seed entirely.
        prop_assert_eq!(profiler.estimate(infer_key), Some(Nanos::from_nanos(measured_ns)));
    }

    #[test]
    fn profiler_p99_with_paper_window_is_close_to_worst_recent_case(
        measurements in proptest::collection::vec(1u64..1_000_000_000, 10..200),
    ) {
        // The paper's configuration: window of 10, 99th percentile. With only
        // ten samples the 99th percentile is the window maximum, which is why
        // Clockwork tends to over-predict slightly (§6.5).
        let mut profiler = ActionProfiler::new();
        let key = ProfileKey::exec(ModelId(3), 8);
        for &m in &measurements {
            profiler.record(key, Nanos::from_nanos(m));
        }
        let window_max = measurements.iter().rev().take(10).max().copied().unwrap();
        prop_assert_eq!(profiler.estimate(key), Some(Nanos::from_nanos(window_max)));
    }
}

// ----------------------------------------------------------------------
// GpuTrack / WorkerStateTracker
// ----------------------------------------------------------------------

/// One controller-side bookkeeping operation on a GPU track.
#[derive(Clone, Debug)]
enum TrackOp {
    LoadSent { model: u32, pages: u64 },
    LoadResult { model: u32, success: bool },
    InferSent { model: u32 },
    UnloadSent { model: u32 },
}

fn track_op() -> impl Strategy<Value = TrackOp> {
    prop_oneof![
        (0u32..16, 1u64..40).prop_map(|(model, pages)| TrackOp::LoadSent { model, pages }),
        (0u32..16, any::<bool>())
            .prop_map(|(model, success)| TrackOp::LoadResult { model, success }),
        (0u32..16).prop_map(|model| TrackOp::InferSent { model }),
        (0u32..16).prop_map(|model| TrackOp::UnloadSent { model }),
    ]
}

proptest! {
    #[test]
    fn gpu_track_conserves_pages_and_keeps_sets_disjoint(
        ops in proptest::collection::vec(track_op(), 0..200),
        total_pages in 16u64..512,
    ) {
        let mut track = GpuTrack::new(gref(0, 0), total_pages, PAGE);
        let mut now = Timestamp::ZERO;
        let mut next_action = 0u64;
        // Maps model -> the LOAD action id we last sent for it, so results
        // reference real outstanding actions the way the scheduler does.
        let mut pending_load: std::collections::HashMap<u32, ActionId> = Default::default();

        for op in ops {
            now += Nanos::from_micros(100);
            match op {
                TrackOp::LoadSent { model, pages } => {
                    // The scheduler only sends a LOAD when the model is not
                    // already resident or loading and enough pages are free.
                    let m = ModelId(model);
                    if track.has_or_loading(m) || pages > track.free_pages {
                        continue;
                    }
                    let id = ActionId(next_action);
                    next_action += 1;
                    track.note_load_sent(
                        OutstandingAction {
                            id,
                            model: m,
                            expected_completion: now + Nanos::from_millis(8),
                            is_load: true,
                        },
                        pages,
                        now,
                        Nanos::from_millis(8),
                    );
                    pending_load.insert(model, id);
                }
                TrackOp::LoadResult { model, success } => {
                    let m = ModelId(model);
                    let Some(id) = pending_load.remove(&model) else { continue };
                    track.note_load_result(id, m, success);
                    prop_assert_eq!(track.is_resident(m), success);
                }
                TrackOp::InferSent { model } => {
                    let m = ModelId(model);
                    if !track.is_resident(m) {
                        continue;
                    }
                    let id = ActionId(next_action);
                    next_action += 1;
                    let start = track.next_exec_slot(now);
                    prop_assert!(start >= now);
                    track.note_infer_sent(
                        OutstandingAction {
                            id,
                            model: m,
                            expected_completion: start + Nanos::from_millis(3),
                            is_load: false,
                        },
                        start,
                        Nanos::from_millis(3),
                    );
                    prop_assert!(track.next_exec_slot(now) >= start + Nanos::from_millis(3));
                }
                TrackOp::UnloadSent { model } => {
                    let m = ModelId(model);
                    // The scheduler never unloads a model that is still loading.
                    if track.loading.contains(&m) {
                        continue;
                    }
                    track.note_unload_sent(m);
                    pending_load.remove(&model);
                    prop_assert!(!track.is_resident(m));
                    prop_assert!(!track.has_or_loading(m));
                }
            }

            // Invariants that must hold after every operation.
            let held: u64 = track.pages_held.values().sum();
            prop_assert_eq!(track.free_pages + held, total_pages,
                "pages leaked or double-counted");
            prop_assert!(track.free_pages <= total_pages);
            prop_assert!(track.resident.is_disjoint(&track.loading),
                "a model cannot be both resident and loading");
            for m in track.resident.iter().chain(track.loading.iter()) {
                prop_assert!(track.pages_held.contains_key(m),
                    "resident/loading model {} holds no pages", m);
            }
            prop_assert!((0.0..=1.0).contains(&track.occupancy()));
        }
    }

    #[test]
    fn gpu_track_lru_candidate_is_least_recently_used_resident(
        touches in proptest::collection::vec((0u32..8, 0u64..1_000_000u64), 1..60),
        protect_model in 0u32..8,
    ) {
        let mut track = GpuTrack::new(gref(0, 0), 1024, PAGE);
        // Make all eight models resident.
        for m in 0..8u32 {
            let id = ActionId(m as u64);
            track.note_load_sent(
                OutstandingAction {
                    id,
                    model: ModelId(m),
                    expected_completion: Timestamp::from_millis(1),
                    is_load: true,
                },
                4,
                Timestamp::ZERO,
                Nanos::from_millis(1),
            );
            track.note_load_result(id, ModelId(m), true);
        }
        let mut last_used = [Timestamp::ZERO; 8];
        for (i, &(m, at)) in touches.iter().enumerate() {
            let start = Timestamp::from_nanos(at);
            track.note_infer_sent(
                OutstandingAction {
                    id: ActionId(100 + i as u64),
                    model: ModelId(m),
                    expected_completion: start + Nanos::from_millis(3),
                    is_load: false,
                },
                start,
                Nanos::from_millis(3),
            );
            // The track records the start time of the most recently
            // *scheduled* INFER, mirroring §5.3's "last used" bookkeeping.
            last_used[m as usize] = start;
        }
        let mut protect = HashSet::new();
        protect.insert(ModelId(protect_model));
        let candidate = track.lru_candidate(&protect).expect("seven unprotected residents");
        prop_assert_ne!(candidate, ModelId(protect_model));
        let expected = (0..8u32)
            .filter(|&m| m != protect_model)
            .min_by_key(|&m| (last_used[m as usize], ModelId(m)))
            .map(ModelId)
            .unwrap();
        prop_assert_eq!(candidate, expected);
    }

    #[test]
    fn tracker_routing_queries_are_consistent(
        loads in proptest::collection::vec((0u32..4, 0u32..2, 0u32..12), 0..60),
        probe_model in 0u32..12,
    ) {
        let mut tracker = WorkerStateTracker::new();
        for w in 0..4u32 {
            for g in 0..2u32 {
                tracker.add_gpu(gref(w, g), 256, PAGE);
            }
        }
        prop_assert_eq!(tracker.len(), 8);
        let mut next_id = 0u64;
        for &(w, g, m) in &loads {
            let r = gref(w, g);
            let track = tracker.get_mut(r).expect("gpu registered");
            if track.has_or_loading(ModelId(m)) || track.free_pages < 4 {
                continue;
            }
            let id = ActionId(next_id);
            next_id += 1;
            track.note_load_sent(
                OutstandingAction {
                    id,
                    model: ModelId(m),
                    expected_completion: Timestamp::from_millis(1),
                    is_load: true,
                },
                4,
                Timestamp::ZERO,
                Nanos::from_millis(1),
            );
            track.note_load_result(id, ModelId(m), true);
        }
        let probe = ModelId(probe_model);
        let holders = tracker.gpus_with_model(probe);
        prop_assert_eq!(tracker.model_available_somewhere(probe), !holders.is_empty());
        for r in &holders {
            prop_assert!(tracker.get(*r).unwrap().is_resident(probe));
        }
        for track in tracker.gpus() {
            if track.is_resident(probe) {
                prop_assert!(holders.contains(&track.gpu_ref));
            }
        }
        // The least-loaded GPU is one of the registered GPUs and has the
        // minimal next exec slot.
        let now = Timestamp::from_millis(5);
        let least = tracker.least_loaded_gpu(now).expect("gpus registered");
        let min_slot = tracker
            .gpus()
            .iter()
            .map(|t| t.next_exec_slot(now))
            .min()
            .unwrap();
        prop_assert_eq!(tracker.get(least).unwrap().next_exec_slot(now), min_slot);
    }
}

// ----------------------------------------------------------------------
// ClockworkScheduler black-box admission behaviour
// ----------------------------------------------------------------------

/// Drives the scheduler with `requests` (model, slo) pairs arriving together
/// at t = 1 ms and collects everything it emits over a handful of ticks,
/// without simulating any worker: LOADs are acknowledged as instantly
/// successful so INFER scheduling can proceed.
fn drive_scheduler(
    config: ClockworkSchedulerConfig,
    registered_models: u32,
    requests: &[(u32, Nanos)],
) -> (
    Vec<clockwork_worker::Action>,
    Vec<clockwork_controller::request::Response>,
) {
    let zoo = ModelZoo::new();
    let spec = Arc::new(zoo.resnet50().clone());
    let mut sched = ClockworkScheduler::new(config);
    sched.add_gpu(gref(0, 0), 1620, PAGE);
    for m in 0..registered_models {
        sched.add_model(m.into_model_id(), Arc::clone(&spec), Nanos::from_millis(8));
    }

    let mut ctx = SchedulerCtx::new();
    let mut actions = Vec::new();
    let mut responses = Vec::new();
    let arrival = Timestamp::from_millis(1);
    for (i, &(model, slo)) in requests.iter().enumerate() {
        sched.on_request(
            arrival,
            InferenceRequest {
                id: RequestId(i as u64),
                model: ModelId(model),
                arrival,
                slo,
                tier: Tier::Strict,
            },
            &mut ctx,
        );
    }
    let mut now = arrival;
    for _ in 0..50 {
        sched.on_tick(now, &mut ctx);
        let new_actions = ctx.take_actions();
        responses.extend(ctx.take_responses());
        for (worker, action) in new_actions {
            // Acknowledge LOADs immediately and successfully so the scheduler
            // can make progress; leave INFERs unanswered (we only inspect
            // what was scheduled, not completions).
            if let ActionKind::Load { model } = action.kind {
                let result = clockwork_worker::ActionResult {
                    action_id: action.id,
                    worker,
                    gpu: action.gpu,
                    model,
                    action_type: "LOAD",
                    batch: 1,
                    request_ids: Vec::new(),
                    expected_duration: action.expected_duration,
                    outcome: clockwork_worker::ActionOutcome::Success(
                        clockwork_worker::ActionTiming {
                            received: now,
                            start: action.window.earliest,
                            end: action.window.earliest + action.expected_duration,
                            device_duration: action.expected_duration,
                        },
                    ),
                };
                sched.on_result(now, &result, &mut ctx);
            }
            actions.push(action);
        }
        now += Nanos::from_millis(1);
    }
    responses.extend(ctx.take_responses());
    (actions, responses)
}

/// Helper so the proptest closure can name `ModelId` tersely.
trait IntoModelId {
    fn into_model_id(self) -> ModelId;
}

impl IntoModelId for u32 {
    fn into_model_id(self) -> ModelId {
        ModelId(self)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scheduler_rejects_unknown_models_and_emits_no_actions_for_them(
        unknown in 5u32..50,
        slo_ms in 1u64..1000,
    ) {
        let (actions, responses) = drive_scheduler(
            ClockworkSchedulerConfig::default(),
            4,
            &[(unknown, Nanos::from_millis(slo_ms))],
        );
        prop_assert!(actions.iter().all(|a| a.kind.model() != ModelId(unknown)));
        prop_assert_eq!(responses.len(), 1);
        match responses[0].outcome {
            RequestOutcome::Rejected { reason, .. } => {
                prop_assert_eq!(reason, RejectReason::UnknownModel);
            }
            RequestOutcome::Success { .. } => prop_assert!(false, "unknown model cannot succeed"),
        }
    }

    #[test]
    fn scheduler_admission_control_rejects_impossible_slos_without_wasting_work(
        slo_us in 1u64..2000,
        copies in 1usize..8,
    ) {
        // ResNet50 batch-1 execution alone is ~2.61 ms; an SLO well below
        // that can never be met, and Clockwork rejects it up-front (§4.1).
        let requests: Vec<(u32, Nanos)> = (0..copies).map(|_| (0, Nanos::from_micros(slo_us))).collect();
        let (actions, responses) = drive_scheduler(ClockworkSchedulerConfig::default(), 1, &requests);
        prop_assert!(actions.iter().all(|a| !a.kind.is_infer()),
            "scheduled an INFER that could never meet its SLO");
        prop_assert_eq!(responses.len(), copies);
        for r in &responses {
            match r.outcome {
                RequestOutcome::Rejected { reason, .. } => {
                    prop_assert!(
                        reason == RejectReason::CannotMeetSlo
                            || reason == RejectReason::DeadlineElapsed
                    );
                }
                RequestOutcome::Success { .. } => prop_assert!(false, "impossible SLO reported as met"),
            }
        }
    }

    #[test]
    fn scheduler_serves_each_request_at_most_once_with_supported_batches(
        per_model in proptest::collection::vec(1usize..12, 1..4),
        slo_ms in 50u64..500,
    ) {
        let zoo = ModelZoo::new();
        let max_batch = zoo.resnet50().max_batch();
        let mut requests = Vec::new();
        for (model, &count) in per_model.iter().enumerate() {
            for _ in 0..count {
                requests.push((model as u32, Nanos::from_millis(slo_ms)));
            }
        }
        let (actions, responses) =
            drive_scheduler(ClockworkSchedulerConfig::default(), per_model.len() as u32, &requests);

        let mut seen = HashSet::new();
        for a in &actions {
            prop_assert!(a.window.earliest <= a.window.latest);
            prop_assert!(a.expected_duration > Nanos::ZERO);
            if let ActionKind::Infer { model, batch, request_ids } = &a.kind {
                prop_assert!((model.0 as usize) < per_model.len(), "INFER for unregistered model");
                prop_assert!(*batch >= 1 && *batch <= max_batch);
                prop_assert!(zoo.resnet50().exec_latency(*batch).is_some(),
                    "batch size {} has no compiled kernel", batch);
                prop_assert!(!request_ids.is_empty());
                prop_assert!(request_ids.len() <= *batch as usize,
                    "batch {} smaller than its {} bundled requests", batch, request_ids.len());
                for r in request_ids {
                    prop_assert!(seen.insert(*r), "request {} scheduled twice", r);
                }
            }
        }
        // No request is answered more than once either.
        let mut answered = HashSet::new();
        for r in &responses {
            prop_assert!(answered.insert(r.request), "request {} answered twice", r.request);
        }
    }

    #[test]
    fn scheduler_without_batching_schedules_singleton_batches(
        count in 2usize..16,
        slo_ms in 50u64..200,
    ) {
        let config = ClockworkSchedulerConfig {
            batching: false,
            ..ClockworkSchedulerConfig::default()
        };
        let requests: Vec<(u32, Nanos)> = (0..count).map(|_| (0, Nanos::from_millis(slo_ms))).collect();
        let (actions, _) = drive_scheduler(config, 1, &requests);
        for a in &actions {
            if let ActionKind::Infer { request_ids, .. } = &a.kind {
                prop_assert_eq!(request_ids.len(), 1, "batching disabled but requests were bundled");
            }
        }
    }

    #[test]
    fn scheduler_only_infers_after_load_on_a_cold_gpu(
        count in 1usize..8,
        slo_ms in 50u64..200,
    ) {
        let requests: Vec<(u32, Nanos)> = (0..count).map(|_| (0, Nanos::from_millis(slo_ms))).collect();
        let (actions, _) = drive_scheduler(ClockworkSchedulerConfig::default(), 1, &requests);
        let first_infer = actions.iter().position(|a| a.kind.is_infer());
        let first_load = actions
            .iter()
            .position(|a| matches!(a.kind, ActionKind::Load { .. }));
        if let Some(infer_idx) = first_infer {
            let load_idx = first_load.expect("an INFER on a cold GPU requires a prior LOAD");
            prop_assert!(load_idx < infer_idx,
                "INFER was scheduled before any LOAD on a cold GPU");
        }
    }
}
