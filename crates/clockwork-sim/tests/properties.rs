//! Property-based tests for the simulation substrate.
//!
//! These exercise the invariants the rest of the system relies on: virtual
//! time arithmetic never goes backwards or wraps unexpectedly, the event
//! queue delivers in chronological order regardless of insertion order,
//! memory accounting conserves capacity, the PCIe link serialises transfers,
//! and the GPU timing model is deterministic given a seed.

use proptest::prelude::*;

use clockwork_sim::engine::{EventQueue, SimClock};
use clockwork_sim::gpu::{ConcurrencyModel, ExecNoise, GpuSpec, GpuTimingModel};
use clockwork_sim::memory::MemoryPool;
use clockwork_sim::network::{NetworkConfig, NetworkModel};
use clockwork_sim::pcie::{LinkScheduler, PcieLink};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_sim::variance::{ExternalVariance, VarianceConfig};

// Bound raw nanosecond values well below u64::MAX so additive properties are
// exercised without overflow; one day of virtual time is far beyond any
// experiment in the repository.
const DAY_NS: u64 = 86_400_000_000_000;

fn nanos() -> impl Strategy<Value = Nanos> {
    (0u64..DAY_NS).prop_map(Nanos::from_nanos)
}

fn timestamp() -> impl Strategy<Value = Timestamp> {
    (0u64..DAY_NS).prop_map(Timestamp::from_nanos)
}

proptest! {
    // ------------------------------------------------------------------
    // Nanos / Timestamp arithmetic
    // ------------------------------------------------------------------

    #[test]
    fn nanos_add_is_commutative(a in nanos(), b in nanos()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn nanos_add_then_sub_roundtrips(a in nanos(), b in nanos()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn nanos_saturating_sub_never_underflows(a in nanos(), b in nanos()) {
        let d = a.saturating_sub(b);
        if a >= b {
            prop_assert_eq!(d, a - b);
        } else {
            prop_assert_eq!(d, Nanos::ZERO);
        }
    }

    #[test]
    fn nanos_saturating_add_is_at_least_each_operand(a in nanos(), b in nanos()) {
        let s = a.saturating_add(b);
        prop_assert!(s >= a);
        prop_assert!(s >= b);
    }

    #[test]
    fn nanos_millis_roundtrip(ms in 0u64..86_400_000) {
        prop_assert_eq!(Nanos::from_millis(ms).as_nanos(), ms * 1_000_000);
        let approx = Nanos::from_millis(ms).as_millis_f64();
        prop_assert!((approx - ms as f64).abs() < 1e-6);
    }

    #[test]
    fn nanos_mul_f64_is_monotone_in_factor(a in nanos(), f in 0.0f64..4.0, g in 0.0f64..4.0) {
        let (lo, hi) = if f <= g { (f, g) } else { (g, f) };
        prop_assert!(a.mul_f64(lo) <= a.mul_f64(hi));
    }

    #[test]
    fn nanos_min_max_bracket_operands(a in nanos(), b in nanos()) {
        let lo = a.min(b);
        let hi = a.max(b);
        prop_assert!(lo <= hi);
        prop_assert!(lo == a || lo == b);
        prop_assert!(hi == a || hi == b);
        prop_assert_eq!(lo + hi, a + b);
    }

    #[test]
    fn nanos_div_mul_is_bounded(a in nanos(), k in 1u64..1000) {
        // Integer division truncates, so (a / k) * k never exceeds a and is
        // within k - 1 nanoseconds of it.
        let back = (a / k) * k;
        prop_assert!(back <= a);
        prop_assert!(a - back < Nanos::from_nanos(k));
    }

    #[test]
    fn timestamp_advance_then_since_roundtrips(t in timestamp(), d in nanos()) {
        let later = t + d;
        prop_assert_eq!(later.since(t), d);
        prop_assert_eq!(later - t, d);
        prop_assert!(later >= t);
    }

    #[test]
    fn timestamp_ordering_is_preserved_by_translation(a in timestamp(), b in timestamp(), d in nanos()) {
        prop_assert_eq!(a <= b, a + d <= b + d);
    }

    #[test]
    fn timestamp_since_earlier_is_zero_saturating(a in timestamp(), b in timestamp()) {
        if a <= b {
            prop_assert_eq!(a.since(b), Nanos::ZERO);
        } else {
            prop_assert_eq!(a.since(b), a - b);
        }
    }

    // ------------------------------------------------------------------
    // Event queue and clock
    // ------------------------------------------------------------------

    #[test]
    fn event_queue_pops_in_chronological_order(times in proptest::collection::vec(0u64..DAY_NS, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Timestamp::from_nanos(*t), i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut last = Timestamp::ZERO;
        let mut popped = 0usize;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn event_queue_equal_times_pop_in_fifo_order(n in 1usize..100, t in 0u64..DAY_NS) {
        let mut q = EventQueue::new();
        let at = Timestamp::from_nanos(t);
        for i in 0..n {
            q.push(at, i);
        }
        let mut expected = 0usize;
        while let Some((_, payload)) = q.pop() {
            prop_assert_eq!(payload, expected);
            expected += 1;
        }
        prop_assert_eq!(expected, n);
    }

    #[test]
    fn event_queue_cancel_removes_exactly_one(times in proptest::collection::vec(0u64..DAY_NS, 1..100), pick in any::<prop::sample::Index>()) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| q.push(Timestamp::from_nanos(*t), i))
            .collect();
        let victim = pick.index(ids.len());
        prop_assert!(q.cancel(ids[victim]));
        // Cancelling twice is a no-op.
        prop_assert!(!q.cancel(ids[victim]));
        let mut seen = Vec::new();
        while let Some((_, payload)) = q.pop() {
            seen.push(payload);
        }
        prop_assert_eq!(seen.len(), times.len() - 1);
        prop_assert!(!seen.contains(&victim));
    }

    #[test]
    fn event_queue_reschedule_is_cancel_then_push(
        times in proptest::collection::vec(0u64..DAY_NS, 1..100),
        pick in any::<prop::sample::Index>(),
        new_time in 0u64..DAY_NS,
    ) {
        // Two queues fed identically except one uses `reschedule` and the
        // other the explicit cancel + push it is documented to equal.
        let mut via_reschedule = EventQueue::new();
        let mut via_cancel_push = EventQueue::new();
        let mut ids_a = Vec::new();
        let mut ids_b = Vec::new();
        for (i, t) in times.iter().enumerate() {
            ids_a.push(via_reschedule.push(Timestamp::from_nanos(*t), i));
            ids_b.push(via_cancel_push.push(Timestamp::from_nanos(*t), i));
        }
        let victim = pick.index(times.len());
        let moved = times.len();
        let at = Timestamp::from_nanos(new_time);
        via_reschedule.reschedule(ids_a[victim], at, moved);
        via_cancel_push.cancel(ids_b[victim]);
        via_cancel_push.push(at, moved);
        prop_assert_eq!(via_reschedule.len(), via_cancel_push.len());
        prop_assert_eq!(via_reschedule.cancelled_total(), via_cancel_push.cancelled_total());
        // Exactly-once delivery: the superseded payload never surfaces, the
        // replacement surfaces exactly once, everything else is untouched,
        // and both queues drain in the identical order.
        let drain = |q: &mut EventQueue<usize>| {
            let mut seen = Vec::new();
            while let Some((t, p)) = q.pop() {
                seen.push((t, p));
            }
            seen
        };
        let seen_a = drain(&mut via_reschedule);
        let seen_b = drain(&mut via_cancel_push);
        prop_assert_eq!(&seen_a, &seen_b);
        prop_assert_eq!(seen_a.len(), times.len());
        prop_assert_eq!(seen_a.iter().filter(|(_, p)| *p == moved).count(), 1);
        prop_assert_eq!(seen_a.iter().filter(|(_, p)| *p == victim).count(), 0);
        prop_assert_eq!(
            via_reschedule.pushed_total(),
            via_reschedule.delivered_total() + via_reschedule.cancelled_total()
        );
    }

    #[test]
    fn event_queue_counters_conserve_under_arbitrary_ops(
        ops in proptest::collection::vec((0u64..DAY_NS, 0u8..4), 1..200),
    ) {
        // Interleave pushes, pops, cancels and reschedules arbitrarily; the
        // conservation identity pushed == delivered + cancelled + live must
        // hold after every operation.
        let mut q = EventQueue::new();
        let mut live_ids: Vec<_> = Vec::new();
        for (t, op) in ops {
            let at = Timestamp::from_nanos(t);
            match op {
                0 => live_ids.push(q.push(at, ())),
                1 => {
                    q.pop();
                }
                2 => {
                    if let Some(id) = live_ids.pop() {
                        q.cancel(id);
                    }
                }
                _ => {
                    if let Some(id) = live_ids.pop() {
                        live_ids.push(q.reschedule(id, at, ()));
                    }
                }
            }
            prop_assert_eq!(
                q.pushed_total(),
                q.delivered_total() + q.cancelled_total() + q.len() as u64
            );
        }
    }

    #[test]
    fn event_queue_pop_due_never_returns_future_events(
        times in proptest::collection::vec(0u64..DAY_NS, 1..100),
        cutoff in 0u64..DAY_NS,
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Timestamp::from_nanos(*t), i);
        }
        let now = Timestamp::from_nanos(cutoff);
        let mut due = 0usize;
        while let Some((at, _)) = q.pop_due(now) {
            prop_assert!(at <= now);
            due += 1;
        }
        let expected = times.iter().filter(|t| Timestamp::from_nanos(**t) <= now).count();
        prop_assert_eq!(due, expected);
        // Everything left is strictly in the future.
        if let Some(next) = q.peek_time() {
            prop_assert!(next > now);
        }
    }

    #[test]
    fn sim_clock_is_monotone_under_arbitrary_advances(steps in proptest::collection::vec(0u64..DAY_NS, 0..200)) {
        let mut clock = SimClock::new();
        let mut prev = clock.now();
        for s in steps {
            clock.advance_to(Timestamp::from_nanos(s));
            prop_assert!(clock.now() >= prev);
            prop_assert!(clock.now() >= Timestamp::from_nanos(s).min(clock.now()));
            prev = clock.now();
        }
    }

    // ------------------------------------------------------------------
    // Memory accounting
    // ------------------------------------------------------------------

    #[test]
    fn memory_pool_conserves_capacity(
        capacity in 1u64..1u64 << 40,
        ops in proptest::collection::vec((any::<bool>(), 1u64..1u64 << 32), 0..200),
    ) {
        let mut pool = MemoryPool::new(capacity);
        let mut live: Vec<u64> = Vec::new();
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let fits = pool.fits(bytes);
                match pool.allocate(bytes) {
                    Ok(()) => {
                        prop_assert!(fits);
                        live.push(bytes);
                    }
                    Err(_) => prop_assert!(!fits),
                }
            } else if let Some(bytes) = live.pop() {
                pool.release(bytes);
            }
            let used: u64 = live.iter().sum();
            prop_assert_eq!(pool.used(), used);
            prop_assert_eq!(pool.available(), capacity - used);
            prop_assert!(pool.used() <= pool.capacity());
            prop_assert!(pool.peak() >= pool.used());
            prop_assert!((0.0..=1.0).contains(&pool.occupancy()));
        }
    }

    // ------------------------------------------------------------------
    // PCIe link
    // ------------------------------------------------------------------

    #[test]
    fn pcie_duration_is_monotone_and_roughly_linear(a in 1u64..1u64 << 30, b in 1u64..1u64 << 30) {
        let link = PcieLink::v100_pcie3();
        let da = link.transfer_duration(a);
        let db = link.transfer_duration(b);
        if a <= b {
            prop_assert!(da <= db);
        }
        let dsum = link.transfer_duration(a + b);
        let parts = da + db;
        // Linear up to per-transfer fixed overhead and nanosecond rounding.
        let tolerance = Nanos::from_micros(200);
        let diff = if dsum > parts { dsum - parts } else { parts - dsum };
        prop_assert!(diff <= tolerance, "non-linear transfer time: {} vs {}", dsum, parts);
    }

    #[test]
    fn pcie_scheduler_serialises_transfers(
        reqs in proptest::collection::vec((0u64..DAY_NS, 1u64..1u64 << 28), 1..100),
    ) {
        let link = PcieLink::v100_pcie3();
        let mut sched = LinkScheduler::new();
        let mut last_completion = Timestamp::ZERO;
        let mut total = Nanos::ZERO;
        let mut bytes_total = 0u64;
        // Requests must be offered in non-decreasing arrival order, as the
        // worker does.
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, bytes) in sorted {
            let now = Timestamp::from_nanos(t);
            let duration = link.transfer_duration(bytes);
            let (start, end) = sched.schedule(now, duration, bytes);
            prop_assert!(start >= now, "transfer started before it was requested");
            prop_assert!(start >= last_completion, "transfers overlapped on the link");
            prop_assert_eq!(end, start + duration);
            last_completion = end;
            total += duration;
            bytes_total += bytes;
            prop_assert_eq!(sched.busy_until(), end);
        }
        prop_assert_eq!(sched.total_busy(), total);
        prop_assert_eq!(sched.bytes_moved(), bytes_total);
        prop_assert_eq!(sched.transfer_count(), reqs.len() as u64);
        let u = sched.utilization(last_completion);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    // ------------------------------------------------------------------
    // GPU timing model
    // ------------------------------------------------------------------

    #[test]
    fn concurrency_model_gain_is_bounded_and_monotone(c in 1u32..64) {
        let m = ConcurrencyModel::default();
        let f = m.throughput_factor(c);
        prop_assert!(f >= 1.0);
        prop_assert!(f <= 1.0 + m.max_throughput_gain + 1e-9);
        prop_assert!(m.throughput_factor(c + 1) >= f);
        prop_assert!(m.latency_sigma(c + 1) >= m.latency_sigma(c));
    }

    #[test]
    fn concurrency_median_latency_never_beats_isolated(base_us in 100u64..100_000, c in 1u32..64) {
        let m = ConcurrencyModel::default();
        let base = Nanos::from_micros(base_us);
        prop_assert!(m.median_latency(base, c) >= base);
    }

    #[test]
    fn noiseless_gpu_reproduces_base_latency_exactly(base_us in 1u64..1_000_000, seed in any::<u64>()) {
        let mut spec = GpuSpec::tesla_v100();
        spec.exec_noise = ExecNoise::none();
        let mut gpu = GpuTimingModel::new(spec, SimRng::seeded(seed));
        let base = Nanos::from_micros(base_us);
        for _ in 0..10 {
            prop_assert_eq!(gpu.exec_duration(base), base);
        }
    }

    #[test]
    fn gpu_timing_is_deterministic_given_seed(base_us in 1u64..1_000_000, seed in any::<u64>()) {
        let base = Nanos::from_micros(base_us);
        let mk = || GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(seed));
        let mut a = mk();
        let mut b = mk();
        for _ in 0..32 {
            prop_assert_eq!(a.exec_duration(base), b.exec_duration(base));
        }
    }

    #[test]
    fn gpu_occupancy_is_serial_and_monotone(
        reqs in proptest::collection::vec((0u64..DAY_NS, 1u64..50_000_000u64), 1..100),
    ) {
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(7));
        let mut sorted = reqs;
        sorted.sort_by_key(|(t, _)| *t);
        let mut last_end = Timestamp::ZERO;
        let mut total = Nanos::ZERO;
        for (t, dur_ns) in sorted {
            let start = Timestamp::from_nanos(t).max(gpu.busy_until());
            let d = Nanos::from_nanos(dur_ns);
            let end = gpu.occupy(start, d);
            prop_assert_eq!(end, start + d);
            prop_assert!(start >= last_end);
            prop_assert_eq!(gpu.busy_until(), end);
            last_end = end;
            total += d;
        }
        prop_assert_eq!(gpu.total_busy(), total);
        let u = gpu.utilization(last_end);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    // ------------------------------------------------------------------
    // RNG
    // ------------------------------------------------------------------

    #[test]
    fn rng_uniform_stays_in_unit_interval(seed in any::<u64>()) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..256 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rng_uniform_range_respects_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.001f64..1e6) {
        let mut rng = SimRng::seeded(seed);
        let hi = lo + width;
        for _ in 0..64 {
            let x = rng.uniform_range(lo, hi);
            prop_assert!(x >= lo && x < hi + 1e-9);
        }
    }

    #[test]
    fn rng_uniform_u64_is_below_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..64 {
            prop_assert!(rng.uniform_u64(bound) < bound);
        }
    }

    #[test]
    fn rng_is_deterministic_and_streams_are_independent(seed in any::<u64>()) {
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed);
        let seq_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&seq_a, &seq_b);

        let mut derived = SimRng::seeded(seed).derive(1);
        let seq_d: Vec<u64> = (0..32).map(|_| derived.next_u64()).collect();
        prop_assert_ne!(seq_a, seq_d);
    }

    #[test]
    fn rng_shuffle_preserves_multiset(seed in any::<u64>(), mut items in proptest::collection::vec(0u32..1000, 0..200)) {
        let mut rng = SimRng::seeded(seed);
        let mut shuffled = items.clone();
        rng.shuffle(&mut shuffled);
        items.sort_unstable();
        shuffled.sort_unstable();
        prop_assert_eq!(items, shuffled);
    }

    #[test]
    fn rng_poisson_gap_is_finite_for_positive_rates(seed in any::<u64>(), rate in 0.1f64..100_000.0) {
        let mut rng = SimRng::seeded(seed);
        for _ in 0..32 {
            let gap = rng.poisson_gap(rate);
            // Gaps are bounded: never the "no arrivals" sentinel, and far
            // below a day for the rates the workload generators use.
            prop_assert!(gap < Nanos::from_secs(86_400));
        }
        // A non-positive rate means no arrivals at all.
        prop_assert_eq!(rng.poisson_gap(0.0), Nanos::MAX);
    }

    // ------------------------------------------------------------------
    // External variance and network
    // ------------------------------------------------------------------

    #[test]
    fn disabled_variance_never_perturbs(base_us in 1u64..1_000_000, at in 0u64..DAY_NS) {
        let mut v = ExternalVariance::disabled();
        let base = Nanos::from_micros(base_us);
        prop_assert_eq!(v.perturb(Timestamp::from_nanos(at), base), base);
        prop_assert_eq!(v.spikes_injected(), 0);
    }

    #[test]
    fn hostile_variance_only_adds_latency(seed in any::<u64>(), base_us in 1u64..1_000_000, at in 0u64..DAY_NS) {
        let mut v = ExternalVariance::new(VarianceConfig::hostile(), SimRng::seeded(seed));
        let base = Nanos::from_micros(base_us);
        for i in 0..16u64 {
            let now = Timestamp::from_nanos(at) + Nanos::from_millis(i);
            prop_assert!(v.perturb(now, base) >= base);
        }
    }

    #[test]
    fn ideal_network_delay_is_exactly_base_latency(lat_us in 0u64..100_000, bytes in 0u64..1u64 << 20) {
        let mut net = NetworkModel::new(NetworkConfig::ideal(Nanos::from_micros(lat_us)), SimRng::seeded(1));
        prop_assert_eq!(net.delay(bytes), Nanos::from_micros(lat_us));
    }

    #[test]
    fn network_accounting_counts_every_message(msgs in proptest::collection::vec(0u64..1u64 << 20, 0..100)) {
        let mut net = NetworkModel::new(NetworkConfig::zero(), SimRng::seeded(2));
        for &b in &msgs {
            let _ = net.delay(b);
        }
        prop_assert_eq!(net.message_count(), msgs.len() as u64);
        prop_assert_eq!(net.bytes_carried(), msgs.iter().sum::<u64>());
    }
}
