//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit across runs and platforms, so
//! the simulation uses its own small PCG-XSH-RR 64/32 generator instead of a
//! thread-local or OS-seeded RNG. The generator is intentionally minimal: the
//! simulation only needs uniform samples, exponential inter-arrival times
//! (Poisson processes), and normal/lognormal noise factors.

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// A deterministic PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// Each component of the simulation owns its own `SimRng`, typically derived
/// from a root seed with [`SimRng::derive`], so that adding RNG consumers to
/// one component does not perturb the random streams seen by others.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl SimRng {
    /// Creates a generator from a seed and a stream identifier.
    ///
    /// Different stream identifiers with the same seed produce statistically
    /// independent sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        SimRng::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Derives an independent child generator, keyed by `tag`.
    ///
    /// This is how per-model / per-worker / per-client streams are created
    /// from a single experiment seed.
    pub fn derive(&self, tag: u64) -> SimRng {
        // Mix the tag through SplitMix64 so sequential tags land far apart.
        let mut z = self.state ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::new(z, tag.wrapping_add(0x1405_7b7e))
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform index in `[0, len)`. Returns 0 when `len` is 0.
    pub fn index(&mut self, len: usize) -> usize {
        self.uniform_u64(len as u64) as usize
    }

    /// A Bernoulli sample with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            let u2 = self.uniform();
            if u1 > f64::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// A lognormal multiplicative factor with median 1.0 and the given sigma.
    ///
    /// This is the shape used for execution-time noise: tiny sigma produces
    /// the near-deterministic latencies of Fig. 2a.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }

    /// An exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// An exponentially distributed inter-arrival gap for a Poisson process
    /// with the given rate (events per second).
    pub fn poisson_gap(&mut self, rate_per_sec: f64) -> Nanos {
        if rate_per_sec <= 0.0 {
            return Nanos::MAX;
        }
        Nanos::from_secs_f64(self.exponential(1.0 / rate_per_sec))
    }

    /// A Poisson-distributed count with the given mean (Knuth's algorithm for
    /// small means, normal approximation for large means).
    pub fn poisson_count(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = self.normal_with(mean, mean.sqrt());
            return if v < 0.0 { 0 } else { v.round() as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a random element of a slice, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_produces_independent_streams() {
        let root = SimRng::seeded(7);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
        // Deriving with the same tag twice gives the same stream.
        let mut c = root.derive(1);
        let mut d = root.derive(1);
        for _ in 0..16 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_roughly_half() {
        let mut rng = SimRng::seeded(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.uniform()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn uniform_u64_respects_bound() {
        let mut rng = SimRng::seeded(11);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.uniform_u64(bound) < bound);
            }
        }
        assert_eq!(rng.uniform_u64(0), 0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::seeded(13);
        let n = 100_000;
        let mean_target = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn poisson_count_mean_matches() {
        let mut rng = SimRng::seeded(17);
        for mean_target in [0.5f64, 3.0, 20.0, 200.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson_count(mean_target)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - mean_target).abs() < mean_target.max(1.0) * 0.05,
                "target {mean_target} got {mean}"
            );
        }
    }

    #[test]
    fn poisson_gap_rate_matches() {
        let mut rng = SimRng::seeded(19);
        let rate = 1000.0; // 1000 requests per second => mean gap 1 ms.
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.poisson_gap(rate).as_secs_f64()).sum();
        let mean_gap = total / n as f64;
        assert!((mean_gap - 0.001).abs() < 0.0001, "mean gap {mean_gap}");
        assert_eq!(rng.poisson_gap(0.0), Nanos::MAX);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seeded(23);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_factor_median_near_one() {
        let mut rng = SimRng::seeded(29);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.lognormal_factor(0.1)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn chance_probability() {
        let mut rng = SimRng::seeded(31);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seeded(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::seeded(41);
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
    }
}
