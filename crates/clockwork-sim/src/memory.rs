//! Host and device memory capacity accounting.
//!
//! The paper's workers hold *all* models in host memory (768 GB fits
//! thousands of models) and treat the much smaller GPU memory (≤32 GB) as a
//! cache managed explicitly by the controller. This module provides the plain
//! capacity bookkeeping both sides use; the paged weights cache itself lives
//! in `clockwork-worker`, because paging is part of the worker's contract.

use serde::{Deserialize, Serialize};

/// Error returned when an allocation does not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfMemory {
    /// Bytes requested by the failed allocation.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A fixed-capacity memory pool with simple byte accounting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Creates a pool sized in gibibytes.
    pub fn with_gib(gib: u64) -> Self {
        MemoryPool::new(gib * 1024 * 1024 * 1024)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Highest allocation watermark observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }

    /// Whether an allocation of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Allocates `bytes`, failing if they do not fit.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if !self.fits(bytes) {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        if self.used > self.peak {
            self.peak = self.used;
        }
        Ok(())
    }

    /// Releases `bytes`. Releasing more than is allocated clamps to zero.
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut pool = MemoryPool::new(1000);
        assert!(pool.allocate(400).is_ok());
        assert!(pool.allocate(600).is_ok());
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.peak(), 1000);
        let err = pool.allocate(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(err.available, 0);
        pool.release(500);
        assert_eq!(pool.used(), 500);
        assert!(pool.allocate(500).is_ok());
    }

    #[test]
    fn release_clamps_at_zero() {
        let mut pool = MemoryPool::new(100);
        pool.allocate(50).unwrap();
        pool.release(80);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn occupancy_and_fits() {
        let mut pool = MemoryPool::new(200);
        assert_eq!(pool.occupancy(), 0.0);
        pool.allocate(50).unwrap();
        assert!((pool.occupancy() - 0.25).abs() < 1e-12);
        assert!(pool.fits(150));
        assert!(!pool.fits(151));
        let empty = MemoryPool::new(0);
        assert_eq!(empty.occupancy(), 1.0);
    }

    #[test]
    fn gib_constructor() {
        let pool = MemoryPool::with_gib(768);
        assert_eq!(pool.capacity(), 768 * 1024 * 1024 * 1024);
    }

    #[test]
    fn error_display() {
        let e = OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("requested 10"));
    }
}
