//! Discrete-event simulation core.
//!
//! The experiments in the paper run for minutes to hours of wall-clock time;
//! we replay them in virtual time instead. [`EventQueue`] is a priority queue
//! of timestamped events with deterministic FIFO tie-breaking, and
//! [`SimClock`] tracks the current virtual instant.
//!
//! Higher layers (the system assembly in the `clockwork` crate) define their
//! own event payload type and drive the loop:
//!
//! ```
//! use clockwork_sim::engine::EventQueue;
//! use clockwork_sim::time::{Nanos, Timestamp};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push(Timestamp::from_millis(5), Ev::Tick(2));
//! q.push(Timestamp::from_millis(1), Ev::Tick(1));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, Timestamp::from_millis(1));
//! assert_eq!(ev, Ev::Tick(1));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::time::{Nanos, Timestamp};

/// A fleet-churn fault delivered by the simulation.
///
/// Faults are part of the simulated world, not of the system under test: a
/// production fleet *will* lose GPUs and whole workers, and links between the
/// controller and workers *will* degrade or partition. Higher layers compile
/// a fault plan into timestamped `FaultKind` events on their event queue and
/// react to each one (drop in-flight work, invalidate residency state,
/// re-admit recovered capacity cold).
///
/// Identifiers are raw indices — the worker's index in the fleet and the GPU's
/// index within that worker — because the sim layer sits below the
/// worker/controller vocabulary. Faults naming workers or GPUs that do not
/// exist are ignored by the layers above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// One GPU fails: its weights cache and in-flight actions are lost.
    GpuFail {
        /// Fleet index of the worker owning the GPU.
        worker: u32,
        /// GPU index within the worker.
        gpu: u32,
    },
    /// A failed GPU comes back, with an empty (cold) weights cache.
    GpuRecover {
        /// Fleet index of the worker owning the GPU.
        worker: u32,
        /// GPU index within the worker.
        gpu: u32,
    },
    /// The whole worker process crashes: every GPU's cache and every queued
    /// or in-flight action is lost.
    WorkerCrash {
        /// Fleet index of the crashed worker.
        worker: u32,
    },
    /// A crashed worker restarts with cold page caches on every GPU.
    WorkerRestart {
        /// Fleet index of the restarting worker.
        worker: u32,
    },
    /// The controller↔worker link degrades: message delays are multiplied by
    /// `factor_milli / 1000` (integer math keeps the simulation exact).
    LinkDegrade {
        /// Fleet index of the affected worker.
        worker: u32,
        /// Delay multiplier in thousandths (4000 = 4× slower).
        factor_milli: u32,
    },
    /// The link returns to its healthy delay.
    LinkRestore {
        /// Fleet index of the affected worker.
        worker: u32,
    },
    /// The controller↔worker link partitions: messages in either direction
    /// are held (not lost) until the partition heals.
    PartitionStart {
        /// Fleet index of the partitioned worker.
        worker: u32,
    },
    /// The partition heals; held messages are delivered.
    PartitionEnd {
        /// Fleet index of the partitioned worker.
        worker: u32,
    },
    /// A brand-new worker joins the fleet at runtime (elastic scale-up). The
    /// worker is admitted cold: empty page caches, no residency, no history.
    /// Joins naming a fleet index that already exists are ignored.
    WorkerJoin {
        /// Fleet index the new worker will occupy.
        worker: u32,
    },
}

impl FaultKind {
    /// The fleet index of the worker this fault concerns.
    pub fn worker(&self) -> u32 {
        match *self {
            FaultKind::GpuFail { worker, .. }
            | FaultKind::GpuRecover { worker, .. }
            | FaultKind::WorkerCrash { worker }
            | FaultKind::WorkerRestart { worker }
            | FaultKind::LinkDegrade { worker, .. }
            | FaultKind::LinkRestore { worker }
            | FaultKind::PartitionStart { worker }
            | FaultKind::PartitionEnd { worker }
            | FaultKind::WorkerJoin { worker } => worker,
        }
    }

    /// A short snake_case label for telemetry and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::GpuFail { .. } => "gpu_fail",
            FaultKind::GpuRecover { .. } => "gpu_recover",
            FaultKind::WorkerCrash { .. } => "worker_crash",
            FaultKind::WorkerRestart { .. } => "worker_restart",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::LinkRestore { .. } => "link_restore",
            FaultKind::PartitionStart { .. } => "partition_start",
            FaultKind::PartitionEnd { .. } => "partition_end",
            FaultKind::WorkerJoin { .. } => "worker_join",
        }
    }

    /// A stable numeric code per variant, used when folding fault events into
    /// determinism digests.
    pub fn digest_code(&self) -> u64 {
        match self {
            FaultKind::GpuFail { .. } => 1,
            FaultKind::GpuRecover { .. } => 2,
            FaultKind::WorkerCrash { .. } => 3,
            FaultKind::WorkerRestart { .. } => 4,
            FaultKind::LinkDegrade { .. } => 5,
            FaultKind::LinkRestore { .. } => 6,
            FaultKind::PartitionStart { .. } => 7,
            FaultKind::PartitionEnd { .. } => 8,
            FaultKind::WorkerJoin { .. } => 9,
        }
    }

    /// The variant's auxiliary payload (GPU index or delay factor; 0 for
    /// worker-level faults), used alongside [`FaultKind::digest_code`].
    pub fn aux(&self) -> u64 {
        match *self {
            FaultKind::GpuFail { gpu, .. } | FaultKind::GpuRecover { gpu, .. } => u64::from(gpu),
            FaultKind::LinkDegrade { factor_milli, .. } => u64::from(factor_milli),
            _ => 0,
        }
    }

    /// Whether this fault restores capacity or connectivity rather than
    /// removing it.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            FaultKind::GpuRecover { .. }
                | FaultKind::WorkerRestart { .. }
                | FaultKind::LinkRestore { .. }
                | FaultKind::PartitionEnd { .. }
        )
    }
}

/// A handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (seq) for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable priority queue of timestamped events.
///
/// Event ids are dense (0, 1, 2, …), so liveness is tracked in a bitset of
/// *dead* (delivered or cancelled) ids rather than a hash set of live ones:
/// pushes touch only the heap, cancellation flips one bit (the tombstone),
/// and delivery skips tombstoned entries when they surface. This removes a
/// hash insert + remove from every scheduled event — the dominant constant
/// factor of the simulation loop at fleet scale — at the cost of one bit per
/// event ever scheduled.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    next_id: u64,
    /// Bit `i` is set once event `i` has been delivered or cancelled.
    dead: Vec<u64>,
    /// Number of scheduled events that are neither delivered nor cancelled.
    live: usize,
    /// Events delivered by `pop` so far.
    delivered: u64,
    /// Events cancelled before delivery so far.
    cancelled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            dead: Vec::new(),
            live: 0,
            delivered: 0,
            cancelled: 0,
        }
    }

    fn is_dead(&self, id: EventId) -> bool {
        let (word, bit) = (id.0 / 64, id.0 % 64);
        self.dead
            .get(word as usize)
            .is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Marks an id dead; returns `false` if it already was.
    fn mark_dead(&mut self, id: EventId) -> bool {
        let (word, bit) = ((id.0 / 64) as usize, id.0 % 64);
        if word >= self.dead.len() {
            self.dead.resize(word + 1, 0);
        }
        let fresh = self.dead[word] & (1 << bit) == 0;
        self.dead[word] |= 1 << bit;
        fresh
    }

    /// Schedules an event at an absolute virtual time.
    pub fn push(&mut self, at: Timestamp, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Schedules a batch of events in one call.
    ///
    /// Equivalent to pushing each `(at, payload)` pair in order, but reserves
    /// heap space up front so bulk submissions (e.g. replaying a pre-generated
    /// trace) do not grow the heap one event at a time.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (Timestamp, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.heap.reserve(lower);
        for (at, payload) in events {
            self.push(at, payload);
        }
    }

    /// Schedules an event `delay` after `now`.
    pub fn push_after(&mut self, now: Timestamp, delay: Nanos, payload: E) -> EventId {
        self.push(now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet been delivered or cancelled.
    /// The entry stays in the heap as a tombstone and is discarded when it
    /// surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false; // never scheduled
        }
        if self.mark_dead(id) {
            self.live -= 1;
            self.cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Moves a scheduled event: cancels `prev` (a no-op if it was already
    /// delivered or cancelled) and schedules `payload` at `at` in its place,
    /// returning the new handle.
    ///
    /// This is the decrease-key of the tombstone scheme — the superseded
    /// entry stays in the heap as a tombstone instead of being sifted out, so
    /// a reschedule costs one bitset flip plus one push. Equivalent to
    /// `cancel(prev)` followed by `push(at, payload)`; at most one of the two
    /// entries is ever delivered.
    pub fn reschedule(&mut self, prev: EventId, at: Timestamp, payload: E) -> EventId {
        self.cancel(prev);
        self.push(at, payload)
    }

    /// Removes and returns the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.mark_dead(ev.id) {
                self.live -= 1;
                self.delivered += 1;
                return Some((ev.at, ev.payload));
            }
        }
        None
    }

    /// Removes and returns the earliest event if it is scheduled at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<(Timestamp, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the earliest live event, without removing it.
    pub fn peek_time(&mut self) -> Option<Timestamp> {
        while let Some(ev) = self.heap.peek() {
            if self.is_dead(ev.id) {
                self.heap.pop();
                continue;
            }
            return Some(ev.at);
        }
        None
    }

    /// Number of live (not yet delivered, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled on this queue.
    ///
    /// The counters satisfy `pushed_total == delivered_total +
    /// cancelled_total + len()` at every instant — the conservation identity
    /// the perf harnesses assert over a whole run.
    pub fn pushed_total(&self) -> u64 {
        self.next_id
    }

    /// Total events delivered by [`EventQueue::pop`].
    pub fn delivered_total(&self) -> u64 {
        self.delivered
    }

    /// Total events cancelled before delivery.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled
    }
}

/// The virtual clock of a simulation.
///
/// The clock only moves forward; [`SimClock::advance_to`] with an earlier
/// timestamp is a no-op, which makes it safe to advance from out-of-order
/// notification sources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock {
            now: Timestamp::ZERO,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock to `t` if `t` is in the future.
    pub fn advance_to(&mut self, t: Timestamp) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Advances the clock by a duration and returns the new time.
    pub fn advance_by(&mut self, d: Nanos) -> Timestamp {
        self.now += d;
        self.now
    }
}

/// A simple driver that pops events in time order and hands them to a handler
/// together with the advancing clock.
///
/// This is sufficient for self-contained simulations (unit tests, workload
/// generators); the full system in the `clockwork` crate implements its own
/// loop because it interleaves several event sources.
pub struct SimDriver<E> {
    /// The event queue that drives the simulation.
    pub queue: EventQueue<E>,
    /// The simulation clock, advanced as events are delivered.
    pub clock: SimClock,
}

impl<E> Default for SimDriver<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SimDriver<E> {
    /// Creates an empty driver at time zero.
    pub fn new() -> Self {
        SimDriver {
            queue: EventQueue::new(),
            clock: SimClock::new(),
        }
    }

    /// Runs until the queue is empty or `until` is reached, delivering each
    /// event to `handler`. The handler may push further events.
    pub fn run_until<F>(&mut self, until: Timestamp, mut handler: F) -> usize
    where
        F: FnMut(Timestamp, E, &mut EventQueue<E>),
    {
        let mut delivered = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.clock.advance_to(t);
            handler(t, ev, &mut self.queue);
            delivered += 1;
        }
        self.clock.advance_to(until.min(Timestamp::MAX));
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_millis(30), "c");
        q.push(Timestamp::from_millis(10), "a");
        q.push(Timestamp::from_millis(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_removes_events() {
        let mut q = EventQueue::new();
        let a = q.push(Timestamp::from_millis(1), "a");
        let b = q.push(Timestamp::from_millis(2), "b");
        q.push(Timestamp::from_millis(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(!q.cancel(a), "cancelling a delivered event is a no-op");
        assert!(!q.cancel(EventId(999)), "unknown ids are rejected");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Timestamp::from_millis(1), 1);
        q.push(Timestamp::from_millis(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Timestamp::from_millis(2)));
    }

    #[test]
    fn push_batch_matches_individual_pushes() {
        let mut q = EventQueue::new();
        q.push_batch((0..50u32).map(|i| (Timestamp::from_millis(u64::from(100 - i)), i)));
        assert_eq!(q.len(), 50);
        let mut seen = Vec::new();
        while let Some((_, ev)) = q.pop() {
            seen.push(ev);
        }
        // Earliest timestamps first: pushed in descending time order.
        let expected: Vec<u32> = (0..50).rev().collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn cancel_after_delivery_and_unknown_ids_are_rejected() {
        let mut q = EventQueue::new();
        let a = q.push(Timestamp::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(!q.cancel(a), "delivered events cannot be cancelled");
        assert!(!q.cancel(EventId(u64::MAX)), "unknown ids are rejected");
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_supersedes_the_previous_entry() {
        let mut q = EventQueue::new();
        let a = q.push(Timestamp::from_millis(50), "late");
        q.push(Timestamp::from_millis(20), "other");
        let b = q.reschedule(a, Timestamp::from_millis(5), "early");
        assert_ne!(a, b);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap(), (Timestamp::from_millis(5), "early"));
        assert_eq!(q.pop().unwrap().1, "other");
        assert!(q.pop().is_none(), "the superseded entry is never delivered");
        // Rescheduling a delivered event degenerates to a plain push.
        let c = q.reschedule(b, Timestamp::from_millis(9), "again");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(c));
    }

    #[test]
    fn counters_satisfy_conservation() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10u64)
            .map(|i| q.push(Timestamp::from_millis(i), i))
            .collect();
        assert!(q.cancel(ids[3]));
        let moved = q.reschedule(ids[7], Timestamp::from_millis(99), 77);
        assert_eq!(q.pushed_total(), 11);
        assert_eq!(q.cancelled_total(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.delivered_total(), 9);
        assert_eq!(
            q.pushed_total(),
            q.delivered_total() + q.cancelled_total() + q.len() as u64
        );
        assert!(!q.cancel(moved), "already delivered");
    }

    #[test]
    fn pop_due_only_returns_past_events() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_millis(10), 1);
        assert!(q.pop_due(Timestamp::from_millis(5)).is_none());
        assert!(q.pop_due(Timestamp::from_millis(10)).is_some());
    }

    #[test]
    fn push_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.push_after(Timestamp::from_millis(10), Nanos::from_millis(5), ());
        assert_eq!(q.peek_time(), Some(Timestamp::from_millis(15)));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(Timestamp::from_millis(10));
        c.advance_to(Timestamp::from_millis(5));
        assert_eq!(c.now(), Timestamp::from_millis(10));
        assert_eq!(
            c.advance_by(Nanos::from_millis(3)),
            Timestamp::from_millis(13)
        );
    }

    #[test]
    fn driver_delivers_in_order_and_supports_cascade() {
        let mut d: SimDriver<u32> = SimDriver::new();
        d.queue.push(Timestamp::from_millis(1), 1);
        d.queue.push(Timestamp::from_millis(3), 3);
        let mut seen = Vec::new();
        let n = d.run_until(Timestamp::from_secs(1), |t, ev, q| {
            seen.push((t, ev));
            if ev == 1 {
                q.push(t + Nanos::from_millis(1), 2);
            }
        });
        assert_eq!(n, 3);
        assert_eq!(
            seen,
            vec![
                (Timestamp::from_millis(1), 1),
                (Timestamp::from_millis(2), 2),
                (Timestamp::from_millis(3), 3),
            ]
        );
        assert_eq!(d.clock.now(), Timestamp::from_secs(1));
    }

    #[test]
    fn driver_stops_at_until() {
        let mut d: SimDriver<u32> = SimDriver::new();
        d.queue.push(Timestamp::from_millis(1), 1);
        d.queue.push(Timestamp::from_millis(100), 2);
        let n = d.run_until(Timestamp::from_millis(50), |_, _, _| {});
        assert_eq!(n, 1);
        assert_eq!(d.queue.len(), 1);
    }
}
