//! Virtual time primitives.
//!
//! The whole workspace uses virtual time: [`Nanos`] is a duration in
//! nanoseconds and [`Timestamp`] is an instant measured from the start of the
//! simulation. Both are thin wrappers around `u64`, cheap to copy and totally
//! ordered, so they can be used directly as keys in the event queue.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration in nanoseconds of virtual time.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable duration; used as "effectively infinite".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(m: u64) -> Self {
        Nanos(m * 60 * 1_000_000_000)
    }

    /// Creates a duration from a floating point number of milliseconds.
    ///
    /// Negative values saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Nanos(to_nanos_u64(ms * 1e6))
    }

    /// Creates a duration from a floating point number of microseconds.
    ///
    /// Negative values saturate to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Nanos(to_nanos_u64(us * 1e3))
    }

    /// Creates a duration from a floating point number of seconds.
    ///
    /// Negative values saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos(to_nanos_u64(s * 1e9))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed as floating point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed as floating point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed as floating point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by a floating point factor, saturating at zero.
    pub fn mul_f64(self, factor: f64) -> Nanos {
        Nanos(to_nanos_u64(self.0 as f64 * factor))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

fn to_nanos_u64(v: f64) -> u64 {
    if v.is_nan() || v <= 0.0 {
        0
    } else if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.round() as u64
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs.max(1))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

/// An instant of virtual time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The simulation start instant.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        Timestamp(ns)
    }

    /// Creates a timestamp a given number of milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000_000)
    }

    /// Creates a timestamp a given number of seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The elapsed duration since an earlier instant (saturating at zero).
    pub const fn since(self, earlier: Timestamp) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: Nanos) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", Nanos(self.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", Nanos(self.0))
    }
}

impl Add<Nanos> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Nanos) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Nanos> for Timestamp {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub<Nanos> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Nanos) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Nanos;
    fn sub(self, rhs: Timestamp) -> Nanos {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_minutes(2).as_nanos(), 120_000_000_000);
        assert_eq!(Nanos::from_millis_f64(2.5).as_nanos(), 2_500_000);
        assert_eq!(Nanos::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(Nanos::from_secs_f64(0.001).as_nanos(), 1_000_000);
    }

    #[test]
    fn nanos_negative_float_saturates() {
        assert_eq!(Nanos::from_millis_f64(-5.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(1e30), Nanos::MAX);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_millis(3);
        let b = Nanos::from_millis(2);
        assert_eq!(a + b, Nanos::from_millis(5));
        assert_eq!(a - b, Nanos::from_millis(1));
        assert_eq!(b - a, Nanos::ZERO, "subtraction saturates");
        assert_eq!(a * 2, Nanos::from_millis(6));
        assert_eq!(a / 3, Nanos::from_millis(1));
        assert_eq!(a.mul_f64(0.5), Nanos::from_micros(1500));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn nanos_division_by_zero_is_safe() {
        assert_eq!(Nanos::from_millis(10) / 0, Nanos::from_millis(10));
    }

    #[test]
    fn nanos_sum() {
        let total: Nanos = (1..=4u64).map(Nanos::from_millis).sum();
        assert_eq!(total, Nanos::from_millis(10));
    }

    #[test]
    fn nanos_display() {
        assert_eq!(format!("{}", Nanos::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(5)), "5.000s");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_millis(10);
        let t1 = t0 + Nanos::from_millis(5);
        assert_eq!(t1, Timestamp::from_millis(15));
        assert_eq!(t1.since(t0), Nanos::from_millis(5));
        assert_eq!(t0.since(t1), Nanos::ZERO, "since saturates");
        assert_eq!(t1 - t0, Nanos::from_millis(5));
        assert_eq!(t1 - Nanos::from_millis(3), Timestamp::from_millis(12));
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp::from_millis(1) < Timestamp::from_millis(2));
        assert!(Timestamp::MAX > Timestamp::from_secs(1_000_000));
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = Nanos::from_micros(12_345);
        assert!((d.as_millis_f64() - 12.345).abs() < 1e-9);
        assert!((d.as_micros_f64() - 12_345.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.012_345).abs() < 1e-12);
        let t = Timestamp::from_millis(2_500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 2_500.0).abs() < 1e-9);
    }
}
