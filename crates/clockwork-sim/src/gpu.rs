//! GPU execution timing model.
//!
//! The paper's foundational observation (§2, Fig. 2) is twofold:
//!
//! 1. A single DNN inference executed alone on a GPU is essentially
//!    deterministic: across 11 million ResNet50 inferences on a V100, the
//!    99.99th-percentile latency was within 0.03 % of the median.
//! 2. As soon as the GPU is given *choices* — several CUDA kernels submitted
//!    concurrently — throughput improves by at most ~25 % while tail latency
//!    inflates by roughly two orders of magnitude.
//!
//! [`GpuTimingModel`] reproduces property (1): it turns a base execution
//! latency (taken from the model's profile) into a measured latency by
//! applying a tiny lognormal noise factor plus an extremely rare spike.
//! [`ConcurrencyModel`] reproduces property (2) and exists so that the Fig. 2b
//! experiment and the best-effort baselines can show what happens when
//! one-at-a-time execution is abandoned.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::{Nanos, Timestamp};

/// Static description of a simulated GPU device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human readable device name.
    pub name: String,
    /// Total device memory in bytes (V100: 32 GiB).
    pub device_memory: u64,
    /// Noise applied to isolated kernel executions.
    pub exec_noise: ExecNoise,
    /// Behaviour when multiple kernels execute concurrently.
    pub concurrency: ConcurrencyModel,
}

impl GpuSpec {
    /// A simulated NVIDIA Tesla V100 with 32 GiB of device memory, the GPU
    /// used throughout the paper's evaluation.
    pub fn tesla_v100() -> Self {
        GpuSpec {
            name: "Tesla V100 (simulated)".to_string(),
            device_memory: 32 * 1024 * 1024 * 1024,
            exec_noise: ExecNoise::default(),
            concurrency: ConcurrencyModel::default(),
        }
    }

    /// A smaller GPU, useful in tests that want to hit memory pressure
    /// without thousands of models.
    pub fn small(device_memory: u64) -> Self {
        GpuSpec {
            name: "small test GPU".to_string(),
            device_memory,
            exec_noise: ExecNoise::default(),
            concurrency: ConcurrencyModel::default(),
        }
    }
}

/// Noise model for isolated (one-at-a-time) kernel execution.
///
/// Default values are calibrated to Fig. 2a: the latency distribution is so
/// tight that the 99.99th percentile sits within 0.03 % of the median, with
/// extremely rare multi-millisecond outliers caused by external factors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecNoise {
    /// Sigma of the multiplicative lognormal noise (median factor is 1.0).
    pub sigma: f64,
    /// Probability that a single execution experiences an external spike.
    pub spike_probability: f64,
    /// Maximum additional delay of a spike.
    pub max_spike: Nanos,
}

impl Default for ExecNoise {
    fn default() -> Self {
        ExecNoise {
            sigma: 0.000_08,
            spike_probability: 2e-6,
            max_spike: Nanos::from_millis(20),
        }
    }
}

impl ExecNoise {
    /// A completely noiseless model, useful for exact-value unit tests.
    pub fn none() -> Self {
        ExecNoise {
            sigma: 0.0,
            spike_probability: 0.0,
            max_spike: Nanos::ZERO,
        }
    }
}

/// Behaviour of the GPU's (proprietary, undocumented) hardware scheduler when
/// several kernels are resident at once.
///
/// Calibrated to Fig. 2b: relative to one-at-a-time execution, concurrency 16
/// gains roughly 25 % throughput while median latency rises by more than an
/// order of magnitude and the variance explodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyModel {
    /// Maximum throughput gain from concurrent execution (0.25 = +25 %).
    pub max_throughput_gain: f64,
    /// Concurrency level at which half of the maximum gain is reached.
    pub half_gain_concurrency: f64,
    /// Lognormal sigma of per-kernel latency at concurrency 2; grows with
    /// concurrency.
    pub interference_sigma: f64,
}

impl Default for ConcurrencyModel {
    fn default() -> Self {
        ConcurrencyModel {
            max_throughput_gain: 0.25,
            half_gain_concurrency: 2.0,
            interference_sigma: 0.35,
        }
    }
}

impl ConcurrencyModel {
    /// The aggregate throughput factor at a given concurrency level, relative
    /// to one-at-a-time execution (1.0 at concurrency 1, asymptotically
    /// `1 + max_throughput_gain`).
    pub fn throughput_factor(&self, concurrency: u32) -> f64 {
        if concurrency <= 1 {
            return 1.0;
        }
        let extra = (concurrency - 1) as f64;
        1.0 + self.max_throughput_gain * extra / (extra + self.half_gain_concurrency)
    }

    /// The lognormal sigma applied to an individual kernel's latency at a
    /// given concurrency level.
    pub fn latency_sigma(&self, concurrency: u32) -> f64 {
        if concurrency <= 1 {
            return 0.0;
        }
        self.interference_sigma * ((concurrency as f64).ln() / 2f64.ln()).sqrt()
    }

    /// The expected (median) latency of one kernel when `concurrency` kernels
    /// with base latency `base` time-share the GPU.
    pub fn median_latency(&self, base: Nanos, concurrency: u32) -> Nanos {
        if concurrency <= 1 {
            return base;
        }
        let factor = concurrency as f64 / self.throughput_factor(concurrency);
        base.mul_f64(factor)
    }
}

/// The timing model of a single GPU: turns base latencies into "measured"
/// latencies.
///
/// The model is deterministic given its seed; all randomness flows through the
/// owned [`SimRng`].
#[derive(Clone, Debug)]
pub struct GpuTimingModel {
    spec: GpuSpec,
    rng: SimRng,
    busy_until: Timestamp,
    busy_accum: Nanos,
}

impl GpuTimingModel {
    /// Creates a timing model for the given device, seeded deterministically.
    pub fn new(spec: GpuSpec, rng: SimRng) -> Self {
        GpuTimingModel {
            spec,
            rng,
            busy_until: Timestamp::ZERO,
            busy_accum: Nanos::ZERO,
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Samples the measured duration of a single isolated kernel execution
    /// with the given base latency.
    pub fn exec_duration(&mut self, base: Nanos) -> Nanos {
        let noise = &self.spec.exec_noise;
        let mut d = if noise.sigma > 0.0 {
            base.mul_f64(self.rng.lognormal_factor(noise.sigma))
        } else {
            base
        };
        if noise.spike_probability > 0.0 && self.rng.chance(noise.spike_probability) {
            let spike = noise.max_spike.mul_f64(self.rng.uniform());
            d += spike;
        }
        d
    }

    /// Samples the measured duration of one kernel when it shares the GPU
    /// with `concurrency - 1` other kernels (used by Fig. 2b and the
    /// best-effort baselines).
    pub fn exec_duration_concurrent(&mut self, base: Nanos, concurrency: u32) -> Nanos {
        let median = self.spec.concurrency.median_latency(base, concurrency);
        let sigma = self.spec.concurrency.latency_sigma(concurrency);
        let mut d = if sigma > 0.0 {
            median.mul_f64(self.rng.lognormal_factor(sigma))
        } else {
            median
        };
        // Isolated-execution noise still applies underneath.
        d = self.exec_duration(d);
        d
    }

    /// Marks the device busy for `[start, start + duration)` and returns the
    /// completion time. Used for utilization accounting.
    pub fn occupy(&mut self, start: Timestamp, duration: Nanos) -> Timestamp {
        let end = start + duration;
        if end > self.busy_until {
            self.busy_until = end;
        }
        self.busy_accum += duration;
        end
    }

    /// The earliest time at which the device is free given everything that
    /// has been `occupy`-ed so far.
    pub fn busy_until(&self) -> Timestamp {
        self.busy_until
    }

    /// Total busy time accumulated so far.
    pub fn total_busy(&self) -> Nanos {
        self.busy_accum
    }

    /// Utilization over `[0, now]` as a fraction in `[0, 1]`.
    pub fn utilization(&self, now: Timestamp) -> f64 {
        if now == Timestamp::ZERO {
            return 0.0;
        }
        (self.busy_accum.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(noise: ExecNoise) -> GpuTimingModel {
        let spec = GpuSpec {
            exec_noise: noise,
            ..GpuSpec::tesla_v100()
        };
        GpuTimingModel::new(spec, SimRng::seeded(1))
    }

    #[test]
    fn v100_spec_has_32gb() {
        let spec = GpuSpec::tesla_v100();
        assert_eq!(spec.device_memory, 32 * 1024 * 1024 * 1024);
    }

    #[test]
    fn noiseless_execution_is_exact() {
        let mut gpu = model(ExecNoise::none());
        let base = Nanos::from_micros(2895);
        for _ in 0..100 {
            assert_eq!(gpu.exec_duration(base), base);
        }
    }

    #[test]
    fn isolated_execution_is_nearly_deterministic() {
        // Reproduces the Fig. 2a property: p99.99 within ~0.1 % of median.
        let mut gpu = model(ExecNoise {
            spike_probability: 0.0,
            ..ExecNoise::default()
        });
        let base = Nanos::from_micros(2895);
        let mut samples: Vec<u64> = (0..100_000)
            .map(|_| gpu.exec_duration(base).as_nanos())
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        let p9999 = samples[(samples.len() as f64 * 0.9999) as usize] as f64;
        let rel = (p9999 - median) / median;
        assert!(rel < 0.002, "relative tail spread was {rel}");
    }

    #[test]
    fn spikes_are_rare_but_possible() {
        let mut gpu = model(ExecNoise {
            sigma: 0.0,
            spike_probability: 0.01,
            max_spike: Nanos::from_millis(10),
        });
        let base = Nanos::from_millis(3);
        let n = 20_000;
        let spikes = (0..n)
            .filter(|_| gpu.exec_duration(base) > base + Nanos::from_micros(1))
            .count();
        let rate = spikes as f64 / n as f64;
        assert!(rate > 0.003 && rate < 0.03, "spike rate {rate}");
    }

    #[test]
    fn concurrency_gains_bounded_throughput() {
        let cm = ConcurrencyModel::default();
        assert!((cm.throughput_factor(1) - 1.0).abs() < 1e-12);
        assert!(cm.throughput_factor(2) > 1.0);
        assert!(cm.throughput_factor(16) < 1.26);
        assert!(cm.throughput_factor(16) > cm.throughput_factor(4));
    }

    #[test]
    fn concurrency_inflates_latency_and_variance() {
        // Reproduces the Fig. 2b property: large latency increase and much
        // wider distribution under concurrency.
        let spec = GpuSpec::tesla_v100();
        let mut gpu = GpuTimingModel::new(spec, SimRng::seeded(2));
        let base = Nanos::from_micros(2895);

        let solo: Vec<f64> = (0..5_000)
            .map(|_| gpu.exec_duration(base).as_millis_f64())
            .collect();
        let conc: Vec<f64> = (0..5_000)
            .map(|_| gpu.exec_duration_concurrent(base, 16).as_millis_f64())
            .collect();

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let spread = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[(s.len() as f64 * 0.99) as usize] - s[s.len() / 2]
        };
        assert!(mean(&conc) > 5.0 * mean(&solo), "latency should inflate");
        assert!(
            spread(&conc) > 50.0 * spread(&solo).max(1e-6),
            "variability should explode: solo {} conc {}",
            spread(&solo),
            spread(&conc)
        );
    }

    #[test]
    fn concurrent_median_latency_scales_with_concurrency() {
        let cm = ConcurrencyModel::default();
        let base = Nanos::from_millis(3);
        let m1 = cm.median_latency(base, 1);
        let m4 = cm.median_latency(base, 4);
        let m16 = cm.median_latency(base, 16);
        assert_eq!(m1, base);
        assert!(m4 > base * 3);
        assert!(m16 > m4 * 3);
    }

    #[test]
    fn occupancy_accounting() {
        let mut gpu = model(ExecNoise::none());
        let t0 = Timestamp::from_millis(10);
        let end = gpu.occupy(t0, Nanos::from_millis(5));
        assert_eq!(end, Timestamp::from_millis(15));
        assert_eq!(gpu.busy_until(), Timestamp::from_millis(15));
        gpu.occupy(Timestamp::from_millis(12), Nanos::from_millis(1));
        assert_eq!(gpu.busy_until(), Timestamp::from_millis(15));
        assert_eq!(gpu.total_busy(), Nanos::from_millis(6));
        let util = gpu.utilization(Timestamp::from_millis(20));
        assert!((util - 0.3).abs() < 1e-9);
        assert_eq!(gpu.utilization(Timestamp::ZERO), 0.0);
    }

    #[test]
    fn timing_model_is_reproducible() {
        let mut a = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(9));
        let mut b = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(9));
        for _ in 0..1000 {
            assert_eq!(
                a.exec_duration(Nanos::from_millis(3)),
                b.exec_duration(Nanos::from_millis(3))
            );
        }
    }
}
