//! PCIe host↔device transfer model.
//!
//! Model weights must be copied from host memory to GPU memory before an
//! inference can run. The paper reports that this transfer (≈8.3 ms for
//! ResNet50's 102 MB of weights) usually takes *longer* than the inference
//! itself (≈2.9 ms), which is why GPU memory is treated as a cache and LOAD
//! actions are first-class citizens.
//!
//! [`PcieLink`] converts transfer sizes into durations using a fixed
//! per-transfer overhead plus a bandwidth term, with the default bandwidth
//! calibrated so that the "Transfer (ms)" column of Appendix A is reproduced
//! from the "Weights (MB)" column. [`LinkScheduler`] serialises transfers in
//! FIFO order, which is how PCIe saturation (Fig. 6d) emerges.

use serde::{Deserialize, Serialize};

use crate::time::{Nanos, Timestamp};

/// Bytes per mebibyte, the unit the Appendix A table uses for weights.
pub const MIB: u64 = 1024 * 1024;

/// A point-to-point host↔device link with fixed overhead and finite bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer latency (driver + DMA setup).
    pub per_transfer_overhead: Nanos,
}

impl Default for PcieLink {
    fn default() -> Self {
        Self::v100_pcie3()
    }
}

impl PcieLink {
    /// The effective PCIe 3.0 x16 link of the paper's testbed.
    ///
    /// Calibrated against Appendix A: 102.3 MB of ResNet50 weights transfer in
    /// ≈8.33 ms, i.e. ≈12.9 GB/s effective with a small fixed overhead.
    pub fn v100_pcie3() -> Self {
        PcieLink {
            bandwidth_bytes_per_sec: 12.9e9,
            per_transfer_overhead: Nanos::from_micros(15),
        }
    }

    /// A link with the given bandwidth in GB/s and no fixed overhead.
    pub fn with_bandwidth_gbps(gbps: f64) -> Self {
        PcieLink {
            bandwidth_bytes_per_sec: gbps * 1e9,
            per_transfer_overhead: Nanos::ZERO,
        }
    }

    /// Duration of a transfer of `bytes` bytes on an otherwise idle link.
    pub fn transfer_duration(&self, bytes: u64) -> Nanos {
        if self.bandwidth_bytes_per_sec <= 0.0 {
            return Nanos::MAX;
        }
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec;
        self.per_transfer_overhead + Nanos::from_secs_f64(secs)
    }

    /// Duration of transferring a weights blob expressed in mebibytes, the
    /// unit used by the Appendix A model table.
    pub fn transfer_duration_mib(&self, mib: f64) -> Nanos {
        self.transfer_duration((mib * MIB as f64) as u64)
    }
}

/// FIFO serialisation of transfers on a single link direction.
///
/// The scheduler tracks when the link next becomes free and accumulates busy
/// time for utilization reporting (Fig. 6d plots PCIe utilization).
#[derive(Clone, Debug, Default)]
pub struct LinkScheduler {
    busy_until: Timestamp,
    busy_accum: Nanos,
    transfers: u64,
    bytes_moved: u64,
}

impl LinkScheduler {
    /// Creates an idle link scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a transfer requested at `now` taking `duration`, returning
    /// its `(start, end)` interval. Transfers are serialised FIFO.
    pub fn schedule(
        &mut self,
        now: Timestamp,
        duration: Nanos,
        bytes: u64,
    ) -> (Timestamp, Timestamp) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_accum += duration;
        self.transfers += 1;
        self.bytes_moved += bytes;
        (start, end)
    }

    /// The time at which the link next becomes free.
    pub fn busy_until(&self) -> Timestamp {
        self.busy_until
    }

    /// The queueing delay a transfer requested at `now` would experience.
    pub fn queue_delay(&self, now: Timestamp) -> Nanos {
        self.busy_until.since(now)
    }

    /// Total busy time accumulated so far.
    pub fn total_busy(&self) -> Nanos {
        self.busy_accum
    }

    /// Number of transfers scheduled so far.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Utilization over `[0, now]` as a fraction in `[0, 1]`.
    pub fn utilization(&self, now: Timestamp) -> f64 {
        if now == Timestamp::ZERO {
            return 0.0;
        }
        (self.busy_accum.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_transfer_matches_appendix_a() {
        // Appendix A: resnet50_v1 weighs 102.3 MB and transfers in 8.33 ms.
        let link = PcieLink::v100_pcie3();
        let d = link.transfer_duration_mib(102.3);
        let ms = d.as_millis_f64();
        assert!((ms - 8.33).abs() < 0.15, "transfer took {ms} ms");
    }

    #[test]
    fn small_and_large_models_bracket_the_table() {
        let link = PcieLink::v100_pcie3();
        // googlenet: 26.5 MB -> 2.16 ms; se_resnext101_64x4d: 352.5 MB -> 28.75 ms.
        let small = link.transfer_duration_mib(26.5).as_millis_f64();
        let large = link.transfer_duration_mib(352.5).as_millis_f64();
        assert!((small - 2.16).abs() < 0.1, "small {small}");
        assert!((large - 28.75).abs() < 0.6, "large {large}");
    }

    #[test]
    fn transfer_duration_is_monotonic_in_size() {
        let link = PcieLink::v100_pcie3();
        let mut prev = Nanos::ZERO;
        for mb in [1u64, 10, 50, 100, 200, 400] {
            let d = link.transfer_duration(mb * MIB);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn zero_bandwidth_is_infinite() {
        let link = PcieLink {
            bandwidth_bytes_per_sec: 0.0,
            per_transfer_overhead: Nanos::ZERO,
        };
        assert_eq!(link.transfer_duration(100), Nanos::MAX);
    }

    #[test]
    fn custom_bandwidth_constructor() {
        let link = PcieLink::with_bandwidth_gbps(10.0);
        let d = link.transfer_duration(10_000_000_000);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn link_scheduler_serialises_fifo() {
        let mut sched = LinkScheduler::new();
        let t0 = Timestamp::from_millis(0);
        let (s1, e1) = sched.schedule(t0, Nanos::from_millis(10), 100);
        let (s2, e2) = sched.schedule(t0, Nanos::from_millis(5), 50);
        assert_eq!(s1, t0);
        assert_eq!(e1, Timestamp::from_millis(10));
        assert_eq!(s2, Timestamp::from_millis(10), "second transfer queues");
        assert_eq!(e2, Timestamp::from_millis(15));
        assert_eq!(sched.transfer_count(), 2);
        assert_eq!(sched.bytes_moved(), 150);
        assert_eq!(sched.queue_delay(t0), Nanos::from_millis(15));
    }

    #[test]
    fn link_scheduler_idles_between_transfers() {
        let mut sched = LinkScheduler::new();
        sched.schedule(Timestamp::from_millis(0), Nanos::from_millis(5), 1);
        let (s, e) = sched.schedule(Timestamp::from_millis(100), Nanos::from_millis(5), 1);
        assert_eq!(s, Timestamp::from_millis(100));
        assert_eq!(e, Timestamp::from_millis(105));
        assert_eq!(sched.total_busy(), Nanos::from_millis(10));
        let util = sched.utilization(Timestamp::from_millis(105));
        assert!((util - 10.0 / 105.0).abs() < 1e-9);
    }
}
