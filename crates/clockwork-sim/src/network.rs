//! Simulated datacenter network between clients, controller and workers.
//!
//! The paper's testbed connects its 12 servers with 2×10 Gbps Ethernet on a
//! shared network and notes (§7) that occasional network latency spikes of
//! dozens of milliseconds had negligible impact because the system has
//! latency headroom. The model here is intentionally simple: a fixed one-way
//! base latency, a serialisation term from message size and link bandwidth,
//! small lognormal jitter, and rare configurable spikes.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::Nanos;

/// Configuration of the network delay model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way base latency between any two machines.
    pub base_latency: Nanos,
    /// Link bandwidth in bytes per second (10 Gbps ≈ 1.25e9 B/s).
    pub bandwidth_bytes_per_sec: f64,
    /// Lognormal sigma applied to the base latency.
    pub jitter_sigma: f64,
    /// Probability that a message experiences a latency spike.
    pub spike_probability: f64,
    /// Maximum additional delay of a spike.
    pub max_spike: Nanos,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            base_latency: Nanos::from_micros(100),
            bandwidth_bytes_per_sec: 1.25e9,
            jitter_sigma: 0.05,
            spike_probability: 1e-5,
            max_spike: Nanos::from_millis(30),
        }
    }
}

impl NetworkConfig {
    /// An idealised network with a fixed latency and no jitter or spikes,
    /// useful for tests that need exact timings.
    pub fn ideal(latency: Nanos) -> Self {
        NetworkConfig {
            base_latency: latency,
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter_sigma: 0.0,
            spike_probability: 0.0,
            max_spike: Nanos::ZERO,
        }
    }

    /// A zero-latency network, useful when network time should not factor
    /// into an experiment at all.
    pub fn zero() -> Self {
        Self::ideal(Nanos::ZERO)
    }
}

/// Samples message delivery delays according to a [`NetworkConfig`].
#[derive(Clone, Debug)]
pub struct NetworkModel {
    config: NetworkConfig,
    rng: SimRng,
    messages: u64,
    bytes: u64,
}

impl NetworkModel {
    /// Creates a network model with the given configuration and RNG.
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        NetworkModel {
            config,
            rng,
            messages: 0,
            bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Samples the one-way delay of a message of `bytes` bytes.
    pub fn delay(&mut self, bytes: u64) -> Nanos {
        self.messages += 1;
        self.bytes += bytes;
        let cfg = &self.config;
        let mut d = if cfg.jitter_sigma > 0.0 {
            cfg.base_latency
                .mul_f64(self.rng.lognormal_factor(cfg.jitter_sigma))
        } else {
            cfg.base_latency
        };
        if cfg.bandwidth_bytes_per_sec.is_finite() && cfg.bandwidth_bytes_per_sec > 0.0 {
            d += Nanos::from_secs_f64(bytes as f64 / cfg.bandwidth_bytes_per_sec);
        }
        if cfg.spike_probability > 0.0 && self.rng.chance(cfg.spike_probability) {
            d += cfg.max_spike.mul_f64(self.rng.uniform());
        }
        d
    }

    /// Number of messages delays have been sampled for.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Total bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_is_exact() {
        let mut net = NetworkModel::new(
            NetworkConfig::ideal(Nanos::from_micros(100)),
            SimRng::seeded(1),
        );
        for _ in 0..100 {
            assert_eq!(net.delay(1_000_000), Nanos::from_micros(100));
        }
        assert_eq!(net.message_count(), 100);
        assert_eq!(net.bytes_carried(), 100_000_000);
    }

    #[test]
    fn zero_network_has_no_delay() {
        let mut net = NetworkModel::new(NetworkConfig::zero(), SimRng::seeded(1));
        assert_eq!(net.delay(10_000), Nanos::ZERO);
    }

    #[test]
    fn size_contributes_serialisation_delay() {
        let cfg = NetworkConfig {
            jitter_sigma: 0.0,
            spike_probability: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg, SimRng::seeded(2));
        let small = net.delay(1_000);
        let large = net.delay(12_500_000); // 10 ms at 1.25 GB/s.
        assert!(large > small + Nanos::from_millis(9));
    }

    #[test]
    fn jitter_stays_near_base_latency() {
        let mut net = NetworkModel::new(NetworkConfig::default(), SimRng::seeded(3));
        let base = NetworkConfig::default().base_latency.as_micros_f64();
        for _ in 0..10_000 {
            let d = net.delay(100).as_micros_f64();
            assert!(d > base * 0.5 && d < base * 3.0 + 30_000.0, "delay {d}us");
        }
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let cfg = NetworkConfig {
            jitter_sigma: 0.0,
            spike_probability: 0.02,
            max_spike: Nanos::from_millis(30),
            bandwidth_bytes_per_sec: f64::INFINITY,
            base_latency: Nanos::from_micros(100),
        };
        let mut net = NetworkModel::new(cfg, SimRng::seeded(4));
        let n = 50_000;
        let spikes = (0..n)
            .filter(|_| net.delay(10) > Nanos::from_micros(200))
            .count();
        let rate = spikes as f64 / n as f64;
        assert!(rate > 0.01 && rate < 0.03, "spike rate {rate}");
    }
}
