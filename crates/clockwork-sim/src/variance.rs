//! External interference injection (challenge C3 of the paper).
//!
//! Even after consolidating every internal choice, external factors remain
//! outside the controller's purview: thermal throttling, shared-network
//! contention, background daemons on the worker host. The paper's answer is
//! to build tolerance into the system — narrow-but-not-too-narrow action
//! windows, immediate rejection of late actions, and continually refreshed
//! latency profiles.
//!
//! [`ExternalVariance`] is the single knob through which this kind of
//! unpredictability enters the simulation. Experiments that stress
//! mis-prediction handling (Fig. 9) enable it explicitly; everything else
//! keeps the default, almost-quiet profile.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::{Nanos, Timestamp};

/// Configuration for external interference.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VarianceConfig {
    /// Probability that any individual operation is hit by a transient delay
    /// spike (e.g. an OS scheduling hiccup on the worker host).
    pub spike_probability: f64,
    /// Maximum duration of a transient spike.
    pub max_spike: Nanos,
    /// Mean interval between thermal-throttle windows. `None` disables
    /// throttling entirely.
    pub throttle_mean_interval: Option<Nanos>,
    /// Duration of each throttle window.
    pub throttle_duration: Nanos,
    /// Multiplicative slow-down applied to operations inside a throttle
    /// window (1.0 means no slow-down).
    pub throttle_factor: f64,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            spike_probability: 1e-5,
            max_spike: Nanos::from_millis(15),
            throttle_mean_interval: None,
            throttle_duration: Nanos::from_secs(2),
            throttle_factor: 1.10,
        }
    }
}

impl VarianceConfig {
    /// No external interference at all: fully deterministic workers.
    pub fn none() -> Self {
        VarianceConfig {
            spike_probability: 0.0,
            max_spike: Nanos::ZERO,
            throttle_mean_interval: None,
            throttle_duration: Nanos::ZERO,
            throttle_factor: 1.0,
        }
    }

    /// A deliberately hostile environment, used by robustness tests and the
    /// prediction-error experiment (Fig. 9).
    pub fn hostile() -> Self {
        VarianceConfig {
            spike_probability: 5e-4,
            max_spike: Nanos::from_millis(20),
            throttle_mean_interval: Some(Nanos::from_secs(60)),
            throttle_duration: Nanos::from_secs(3),
            throttle_factor: 1.15,
        }
    }
}

/// Stateful sampler of external interference for one worker host.
#[derive(Clone, Debug)]
pub struct ExternalVariance {
    config: VarianceConfig,
    rng: SimRng,
    throttle_until: Timestamp,
    next_throttle: Timestamp,
    spikes_injected: u64,
    throttle_windows: u64,
}

impl ExternalVariance {
    /// Creates a sampler with the given configuration.
    pub fn new(config: VarianceConfig, mut rng: SimRng) -> Self {
        let next_throttle = match config.throttle_mean_interval {
            Some(mean) => {
                Timestamp::ZERO + Nanos::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            None => Timestamp::MAX,
        };
        ExternalVariance {
            config,
            rng,
            throttle_until: Timestamp::ZERO,
            next_throttle,
            spikes_injected: 0,
            throttle_windows: 0,
        }
    }

    /// Creates a sampler that never perturbs anything.
    pub fn disabled() -> Self {
        ExternalVariance::new(VarianceConfig::none(), SimRng::seeded(0))
    }

    /// The configuration in use.
    pub fn config(&self) -> &VarianceConfig {
        &self.config
    }

    /// Applies external interference to an operation of nominal duration
    /// `base` starting at `now`, returning the perturbed duration.
    pub fn perturb(&mut self, now: Timestamp, base: Nanos) -> Nanos {
        self.advance_throttle_state(now);
        let mut d = base;
        if now < self.throttle_until && self.config.throttle_factor > 1.0 {
            d = d.mul_f64(self.config.throttle_factor);
        }
        if self.config.spike_probability > 0.0 && self.rng.chance(self.config.spike_probability) {
            d += self.config.max_spike.mul_f64(self.rng.uniform());
            self.spikes_injected += 1;
        }
        d
    }

    /// Whether the host is currently inside a thermal-throttle window.
    pub fn is_throttled(&mut self, now: Timestamp) -> bool {
        self.advance_throttle_state(now);
        now < self.throttle_until
    }

    /// Number of spikes injected so far.
    pub fn spikes_injected(&self) -> u64 {
        self.spikes_injected
    }

    /// Number of throttle windows entered so far.
    pub fn throttle_windows(&self) -> u64 {
        self.throttle_windows
    }

    fn advance_throttle_state(&mut self, now: Timestamp) {
        let Some(mean) = self.config.throttle_mean_interval else {
            return;
        };
        while now >= self.next_throttle {
            self.throttle_until = self.next_throttle + self.config.throttle_duration;
            self.throttle_windows += 1;
            let gap = Nanos::from_secs_f64(self.rng.exponential(mean.as_secs_f64()))
                .max(Nanos::from_millis(1));
            self.next_throttle = self.throttle_until + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_variance_never_perturbs() {
        let mut v = ExternalVariance::disabled();
        let base = Nanos::from_millis(5);
        for i in 0..1000 {
            assert_eq!(v.perturb(Timestamp::from_millis(i), base), base);
        }
        assert_eq!(v.spikes_injected(), 0);
        assert_eq!(v.throttle_windows(), 0);
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let cfg = VarianceConfig {
            spike_probability: 0.01,
            max_spike: Nanos::from_millis(10),
            throttle_mean_interval: None,
            ..VarianceConfig::none()
        };
        let mut v = ExternalVariance::new(cfg, SimRng::seeded(7));
        let base = Nanos::from_millis(3);
        let n = 50_000;
        let mut spiked = 0;
        for i in 0..n {
            if v.perturb(Timestamp::from_millis(i), base) > base {
                spiked += 1;
            }
        }
        let rate = spiked as f64 / n as f64;
        assert!(rate > 0.005 && rate < 0.02, "spike rate {rate}");
        assert_eq!(v.spikes_injected(), spiked);
    }

    #[test]
    fn throttle_windows_slow_operations_down() {
        let cfg = VarianceConfig {
            spike_probability: 0.0,
            max_spike: Nanos::ZERO,
            throttle_mean_interval: Some(Nanos::from_secs(10)),
            throttle_duration: Nanos::from_secs(2),
            throttle_factor: 1.5,
        };
        let mut v = ExternalVariance::new(cfg, SimRng::seeded(11));
        let base = Nanos::from_millis(10);
        let mut slowed = 0u64;
        let mut total = 0u64;
        // Walk an hour of virtual time in 100 ms steps.
        for step in 0..36_000u64 {
            let now = Timestamp::from_millis(step * 100);
            let d = v.perturb(now, base);
            total += 1;
            if d > base {
                slowed += 1;
                assert_eq!(d, base.mul_f64(1.5));
            }
        }
        assert!(
            v.throttle_windows() > 100,
            "windows {}",
            v.throttle_windows()
        );
        let frac = slowed as f64 / total as f64;
        // Roughly duration / (duration + mean interval) ≈ 2/12 of time throttled.
        assert!(frac > 0.08 && frac < 0.30, "throttled fraction {frac}");
    }

    #[test]
    fn is_throttled_tracks_windows() {
        let cfg = VarianceConfig {
            throttle_mean_interval: Some(Nanos::from_secs(5)),
            throttle_duration: Nanos::from_secs(1),
            throttle_factor: 1.2,
            spike_probability: 0.0,
            max_spike: Nanos::ZERO,
        };
        let mut v = ExternalVariance::new(cfg, SimRng::seeded(13));
        let mut saw_throttled = false;
        let mut saw_clear = false;
        for s in 0..600 {
            let now = Timestamp::from_millis(s * 100);
            if v.is_throttled(now) {
                saw_throttled = true;
            } else {
                saw_clear = true;
            }
        }
        assert!(saw_throttled && saw_clear);
    }

    #[test]
    fn hostile_profile_is_noisier_than_default() {
        let hostile = VarianceConfig::hostile();
        let default = VarianceConfig::default();
        assert!(hostile.spike_probability > default.spike_probability);
        assert!(hostile.throttle_mean_interval.is_some());
    }
}
