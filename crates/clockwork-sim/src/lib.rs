//! Simulation substrate for Clockwork-RS.
//!
//! The Clockwork paper ran on real hardware (NVIDIA V100 GPUs, PCIe 3.0,
//! a 12-machine cluster). This crate provides the synthetic equivalents that
//! the rest of the workspace is built on:
//!
//! * [`time`] — virtual time ([`Nanos`] durations and [`Timestamp`] instants).
//! * [`rng`] — a small, fully deterministic PCG-based random number generator
//!   so every experiment is reproducible bit-for-bit.
//! * [`engine`] — a discrete-event simulation core ([`EventQueue`],
//!   [`SimClock`]) that lets hours of trace be replayed in seconds.
//! * [`gpu`] — a GPU timing model with the paper's key property: one-at-a-time
//!   kernel execution is deterministic, concurrent execution gains a little
//!   throughput but loses predictability (Fig. 2b).
//! * [`pcie`] — a bandwidth-modelled host↔device transfer link.
//! * [`memory`] — host and device memory capacity accounting.
//! * [`network`] — a latency/bandwidth model for controller↔worker messages.
//! * [`variance`] — explicit injection of external interference (the paper's
//!   challenge C3): latency spikes and thermal-throttle windows.
//!
//! All components are pure state machines over explicit `now` arguments; no
//! wall-clock time or global state is consulted anywhere, which is what makes
//! the higher layers unit-testable and the experiments deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod gpu;
pub mod memory;
pub mod network;
pub mod pcie;
pub mod rng;
pub mod time;
pub mod variance;

pub use engine::{EventQueue, SimClock};
pub use gpu::{GpuSpec, GpuTimingModel};
pub use memory::MemoryPool;
pub use network::NetworkModel;
pub use pcie::PcieLink;
pub use rng::SimRng;
pub use time::{Nanos, Timestamp};
