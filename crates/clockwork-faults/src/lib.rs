//! Deterministic fault-injection plans for fleet churn.
//!
//! The paper's claim is graceful, *predictable* degradation — which only
//! means something if the fleet actually degrades. This crate builds
//! [`FaultPlan`]s: timestamped schedules of [`FaultKind`] events (GPU
//! failure/recovery, worker crash/restart with a cold page cache, link
//! degradation and partition windows) that the serving system compiles into
//! simulation events.
//!
//! Plans are pure data and a pure function of their inputs: a scripted plan
//! is exactly the events its builder calls describe, and a randomized churn
//! plan ([`FaultPlan::random_churn`]) is a deterministic function of its
//! [`ChurnConfig`] — same config, same seed, same plan, same simulation,
//! same digest. That determinism is what turns "chaos testing" into a
//! reproducible experiment.
//!
//! Every serving discipline is fault-aware: the Clockwork scheduler resolves
//! outstanding work on dead capacity and re-admits recovered capacity cold,
//! and the baseline disciplines route the same events through their worker
//! state tracker — so any plan can be combined with any discipline, which is
//! what makes an apples-to-apples chaos comparison possible.
//!
//! Plans can also *grow* the fleet: [`FaultPlan::join_worker`] admits a
//! brand-new cold worker at runtime (elastic scale-up), the inverse of the
//! crash/recovery path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

pub use clockwork_sim::engine::FaultKind;
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires.
    pub at: Timestamp,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fleet faults.
///
/// Events are kept sorted by timestamp (stable for ties: the order the
/// builder calls inserted them), so compiling a plan into an event queue
/// preserves a well-defined, reproducible delivery order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every system).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one fault, keeping the schedule sorted (stable for equal times).
    pub fn push(&mut self, at: Timestamp, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: Timestamp, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Appends every event of another plan.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        for e in other.events {
            self.push(e.at, e.kind);
        }
        self
    }

    /// Crashes a worker at `at`.
    pub fn crash_worker(self, at: Timestamp, worker: u32) -> Self {
        self.with(at, FaultKind::WorkerCrash { worker })
    }

    /// Restarts a crashed worker at `at` (cold page caches).
    pub fn restart_worker(self, at: Timestamp, worker: u32) -> Self {
        self.with(at, FaultKind::WorkerRestart { worker })
    }

    /// Crashes a worker at `at` and restarts it `downtime` later.
    pub fn crash_worker_for(self, at: Timestamp, worker: u32, downtime: Nanos) -> Self {
        self.crash_worker(at, worker)
            .restart_worker(at + downtime, worker)
    }

    /// Admits a brand-new cold worker at `at` (elastic scale-up). `worker`
    /// is the fleet index the new machine will occupy; a join naming an
    /// index that already exists is ignored by the serving system.
    pub fn join_worker(self, at: Timestamp, worker: u32) -> Self {
        self.with(at, FaultKind::WorkerJoin { worker })
    }

    /// Fails one GPU at `at`.
    pub fn fail_gpu(self, at: Timestamp, worker: u32, gpu: u32) -> Self {
        self.with(at, FaultKind::GpuFail { worker, gpu })
    }

    /// Recovers a failed GPU at `at` (cold weights cache).
    pub fn recover_gpu(self, at: Timestamp, worker: u32, gpu: u32) -> Self {
        self.with(at, FaultKind::GpuRecover { worker, gpu })
    }

    /// Fails one GPU at `at` and recovers it `downtime` later.
    pub fn fail_gpu_for(self, at: Timestamp, worker: u32, gpu: u32, downtime: Nanos) -> Self {
        self.fail_gpu(at, worker, gpu)
            .recover_gpu(at + downtime, worker, gpu)
    }

    /// Multiplies a worker's controller↔worker delays by `factor` from `at`.
    ///
    /// The factor is stored in thousandths; values below 0.001 clamp to it.
    pub fn degrade_link(self, at: Timestamp, worker: u32, factor: f64) -> Self {
        let factor_milli = (factor * 1000.0).round().max(1.0) as u32;
        self.with(
            at,
            FaultKind::LinkDegrade {
                worker,
                factor_milli,
            },
        )
    }

    /// Restores a worker's link to its healthy delay at `at`.
    pub fn restore_link(self, at: Timestamp, worker: u32) -> Self {
        self.with(at, FaultKind::LinkRestore { worker })
    }

    /// Degrades a worker's link for a window, then restores it.
    pub fn degrade_link_for(self, at: Timestamp, worker: u32, factor: f64, span: Nanos) -> Self {
        self.degrade_link(at, worker, factor)
            .restore_link(at + span, worker)
    }

    /// Partitions a worker from the controller over `[at, at + span)`.
    /// Messages in flight during the window are held and delivered when the
    /// partition heals, not lost.
    pub fn partition(self, at: Timestamp, worker: u32, span: Nanos) -> Self {
        self.with(at, FaultKind::PartitionStart { worker })
            .with(at + span, FaultKind::PartitionEnd { worker })
    }

    /// A correlated rack failure: every worker in `rack` crashes
    /// *simultaneously* at `at` (shared power/ToR loss) and restarts
    /// `downtime` later — and because the rack's shared uplink comes back
    /// before it is fully resynchronized, each member's link runs degraded
    /// by `link_factor` for another `downtime / 2` after the restart.
    ///
    /// Duplicate worker indices in `rack` are ignored (first occurrence
    /// wins), so duration-scaled presets that derive rack membership by
    /// `i % workers` stay well-formed on tiny fleets.
    pub fn rack_failure(
        mut self,
        at: Timestamp,
        rack: &[u32],
        link_factor: f64,
        downtime: Nanos,
    ) -> Self {
        let mut seen: Vec<u32> = Vec::with_capacity(rack.len());
        let resync = Nanos::from_nanos(downtime.as_nanos() / 2);
        for &worker in rack {
            if seen.contains(&worker) {
                continue;
            }
            seen.push(worker);
            self = self
                .crash_worker_for(at, worker, downtime)
                .degrade_link_for(at + downtime, worker, link_factor, resync);
        }
        self
    }

    /// The time of the first scheduled fault, if any.
    pub fn first_at(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.at)
    }

    /// The time of the last scheduled event, if any.
    pub fn last_at(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.at)
    }

    /// The time of the last *recovery* event (restart / recover / restore /
    /// heal), if any — the instant after which the fleet should be whole.
    pub fn last_recovery_at(&self) -> Option<Timestamp> {
        self.events
            .iter()
            .filter(|e| e.kind.is_recovery())
            .map(|e| e.at)
            .max()
    }

    /// Number of `WorkerCrash` events.
    pub fn worker_crashes(&self) -> usize {
        self.count(|k| matches!(k, FaultKind::WorkerCrash { .. }))
    }

    /// Number of `GpuFail` events.
    pub fn gpu_failures(&self) -> usize {
        self.count(|k| matches!(k, FaultKind::GpuFail { .. }))
    }

    /// Number of `PartitionStart` events.
    pub fn partitions(&self) -> usize {
        self.count(|k| matches!(k, FaultKind::PartitionStart { .. }))
    }

    /// Number of `LinkDegrade` events.
    pub fn link_degradations(&self) -> usize {
        self.count(|k| matches!(k, FaultKind::LinkDegrade { .. }))
    }

    /// Number of `WorkerJoin` events.
    pub fn worker_joins(&self) -> usize {
        self.count(|k| matches!(k, FaultKind::WorkerJoin { .. }))
    }

    fn count(&self, pred: impl Fn(&FaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Generates a randomized-but-deterministic churn plan: same config ⇒
    /// same plan, byte for byte.
    ///
    /// Fault onsets are drawn uniformly from `[start, start + spread)` where
    /// `spread = duration - max_downtime`, and every fault recovers after a
    /// downtime drawn from `[min_downtime, max_downtime]`, so the fleet is
    /// whole again no later than `start + duration`. Worker crashes pick
    /// distinct workers (wrapping if more crashes than workers are asked
    /// for); GPU failures pick (worker, gpu) pairs uniformly.
    pub fn random_churn(config: &ChurnConfig) -> FaultPlan {
        let mut rng = SimRng::seeded(config.seed).derive(0xFA17);
        let mut plan = FaultPlan::new();
        if config.workers == 0 || config.gpus_per_worker == 0 {
            return plan;
        }
        let spread = config.duration.saturating_sub(config.max_downtime);
        let onset = |rng: &mut SimRng| {
            config.start + Nanos::from_nanos(rng.uniform_u64(spread.as_nanos().max(1)))
        };
        let downtime = |rng: &mut SimRng| {
            let lo = config.min_downtime.as_nanos();
            let hi = config.max_downtime.as_nanos().max(lo + 1);
            Nanos::from_nanos(lo + rng.uniform_u64(hi - lo))
        };
        // Distinct victims while possible (single base draw, stride 1);
        // wrap beyond the fleet size.
        let crash_base = rng.uniform_u64(u64::from(config.workers)) as u32;
        for i in 0..config.worker_crashes {
            let worker = (crash_base + i) % config.workers;
            let at = onset(&mut rng);
            let down = downtime(&mut rng);
            plan = plan.crash_worker_for(at, worker, down);
        }
        for _ in 0..config.gpu_failures {
            let worker = rng.uniform_u64(u64::from(config.workers)) as u32;
            let gpu = rng.uniform_u64(u64::from(config.gpus_per_worker)) as u32;
            let at = onset(&mut rng);
            let down = downtime(&mut rng);
            plan = plan.fail_gpu_for(at, worker, gpu, down);
        }
        for _ in 0..config.link_degradations {
            let worker = rng.uniform_u64(u64::from(config.workers)) as u32;
            let factor = rng.uniform_range(2.0, 8.0);
            let at = onset(&mut rng);
            let span = downtime(&mut rng);
            plan = plan.degrade_link_for(at, worker, factor, span);
        }
        for _ in 0..config.partitions {
            let worker = rng.uniform_u64(u64::from(config.workers)) as u32;
            let at = onset(&mut rng);
            let span = downtime(&mut rng);
            plan = plan.partition(at, worker, span);
        }
        plan
    }
}

/// Configuration of a randomized churn plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of workers in the fleet.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Earliest fault onset.
    pub start: Timestamp,
    /// Window within which every fault fires *and recovers*.
    pub duration: Nanos,
    /// Number of worker crash/restart pairs.
    pub worker_crashes: u32,
    /// Number of GPU fail/recover pairs.
    pub gpu_failures: u32,
    /// Number of link degrade/restore pairs.
    pub link_degradations: u32,
    /// Number of partition windows.
    pub partitions: u32,
    /// Minimum downtime of each fault.
    pub min_downtime: Nanos,
    /// Maximum downtime of each fault.
    pub max_downtime: Nanos,
    /// RNG seed; the plan is a pure function of this config.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            workers: 1,
            gpus_per_worker: 1,
            start: Timestamp::from_secs(10),
            duration: Nanos::from_secs(60),
            worker_crashes: 1,
            gpu_failures: 2,
            link_degradations: 1,
            partitions: 1,
            min_downtime: Nanos::from_secs(2),
            max_downtime: Nanos::from_secs(10),
            seed: 2020,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn empty_plan_is_default() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.first_at(), None);
        assert_eq!(plan.last_recovery_at(), None);
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn events_stay_sorted_with_stable_ties() {
        let plan = FaultPlan::new()
            .crash_worker(ms(50), 1)
            .fail_gpu(ms(10), 0, 2)
            .restart_worker(ms(50), 1)
            .recover_gpu(ms(30), 0, 2);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // Equal timestamps keep insertion order: crash before restart.
        let at50: Vec<&FaultKind> = plan
            .events()
            .iter()
            .filter(|e| e.at == ms(50))
            .map(|e| &e.kind)
            .collect();
        assert!(matches!(at50[0], FaultKind::WorkerCrash { worker: 1 }));
        assert!(matches!(at50[1], FaultKind::WorkerRestart { worker: 1 }));
    }

    #[test]
    fn paired_builders_schedule_fault_and_recovery() {
        let plan = FaultPlan::new()
            .crash_worker_for(ms(100), 3, Nanos::from_millis(40))
            .fail_gpu_for(ms(120), 0, 1, Nanos::from_millis(10))
            .degrade_link_for(ms(10), 2, 4.0, Nanos::from_millis(500))
            .partition(ms(200), 4, Nanos::from_millis(50));
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.worker_crashes(), 1);
        assert_eq!(plan.gpu_failures(), 1);
        assert_eq!(plan.partitions(), 1);
        assert_eq!(plan.link_degradations(), 1);
        assert_eq!(plan.first_at(), Some(ms(10)));
        assert_eq!(plan.last_recovery_at(), Some(ms(510)));
        let degrade = plan
            .events()
            .iter()
            .find(|e| matches!(e.kind, FaultKind::LinkDegrade { .. }))
            .unwrap();
        assert!(
            matches!(
                degrade.kind,
                FaultKind::LinkDegrade {
                    factor_milli: 4000,
                    worker: 2
                }
            ),
            "{degrade:?}"
        );
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = FaultPlan::new().crash_worker(ms(10), 0);
        let b = FaultPlan::new()
            .crash_worker(ms(5), 1)
            .restart_worker(ms(20), 1);
        let merged = a.merge(b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.first_at(), Some(ms(5)));
        assert_eq!(merged.last_at(), Some(ms(20)));
    }

    #[test]
    fn random_churn_is_deterministic_and_bounded() {
        let config = ChurnConfig {
            workers: 20,
            gpus_per_worker: 4,
            start: Timestamp::from_secs(30),
            duration: Nanos::from_secs(60),
            worker_crashes: 3,
            gpu_failures: 5,
            link_degradations: 2,
            partitions: 2,
            min_downtime: Nanos::from_secs(1),
            max_downtime: Nanos::from_secs(8),
            seed: 99,
        };
        let a = FaultPlan::random_churn(&config);
        let b = FaultPlan::random_churn(&config);
        assert_eq!(a, b, "same config must yield the same plan");
        assert_eq!(a.worker_crashes(), 3);
        assert_eq!(a.gpu_failures(), 5);
        // Every event lands inside [start, start + duration].
        for e in a.events() {
            assert!(e.at >= config.start, "{e:?}");
            assert!(e.at <= config.start + config.duration, "{e:?}");
            assert!(e.kind.worker() < config.workers, "{e:?}");
            if let FaultKind::GpuFail { gpu, .. } | FaultKind::GpuRecover { gpu, .. } = e.kind {
                assert!(gpu < config.gpus_per_worker, "{e:?}");
            }
        }
        // Every fault has a matching recovery.
        let recoveries = a.events().iter().filter(|e| e.kind.is_recovery()).count();
        assert_eq!(recoveries * 2, a.len());
        // Crash victims are distinct while the fleet has room for that.
        let mut victims: Vec<u32> = a
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::WorkerCrash { worker } => Some(worker),
                _ => None,
            })
            .collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 3, "crash victims must be distinct");
        let other_seed = FaultPlan::random_churn(&ChurnConfig {
            seed: 100,
            ..config
        });
        assert_ne!(a, other_seed, "different seeds should differ");
    }

    #[test]
    fn degenerate_churn_configs_yield_empty_plans() {
        let config = ChurnConfig {
            workers: 0,
            ..ChurnConfig::default()
        };
        assert!(FaultPlan::random_churn(&config).is_empty());
    }

    #[test]
    fn rack_failure_is_a_correlated_crash_plus_degraded_resync() {
        let at = Timestamp::from_millis(100);
        let downtime = Nanos::from_millis(40);
        let plan = FaultPlan::new().rack_failure(at, &[3, 4, 5], 4.0, downtime);

        // Three simultaneous crashes, three restarts, three degrade/restore
        // pairs — nothing else.
        assert_eq!(plan.worker_crashes(), 3);
        assert_eq!(plan.link_degradations(), 3);
        assert_eq!(plan.len(), 12);
        let crash_times: Vec<Timestamp> = plan
            .events()
            .iter()
            .filter_map(|e| matches!(e.kind, FaultKind::WorkerCrash { .. }).then_some(e.at))
            .collect();
        assert_eq!(crash_times, vec![at; 3], "the rack dies as one");

        // Every member restarts at at+downtime, immediately entering its
        // degraded-resync window, which lasts downtime/2.
        for worker in [3u32, 4, 5] {
            assert!(plan.events().contains(&FaultEvent {
                at: at + downtime,
                kind: FaultKind::WorkerRestart { worker }
            }));
            assert!(plan.events().contains(&FaultEvent {
                at: at + downtime,
                kind: FaultKind::LinkDegrade {
                    worker,
                    factor_milli: 4000
                }
            }));
            assert!(plan.events().contains(&FaultEvent {
                at: at + downtime + Nanos::from_millis(20),
                kind: FaultKind::LinkRestore { worker }
            }));
        }
        assert_eq!(
            plan.last_recovery_at(),
            Some(at + downtime + Nanos::from_millis(20))
        );

        // Duplicate members collapse to one fault set each.
        let dup = FaultPlan::new().rack_failure(at, &[7, 7, 7], 2.0, downtime);
        assert_eq!(dup.worker_crashes(), 1);
        assert_eq!(dup.len(), 4);
    }
}
