//! DNN model abstractions for Clockwork-RS.
//!
//! Clockwork does not execute arbitrary user code: users upload models in an
//! abstract exchange format (ONNX/NNEF in the paper), the system compiles
//! them with TVM, and the serving layer only ever deals with the compiled
//! artifacts — a weights blob, per-batch-size kernels with known execution
//! latency, and static memory requirements (§5.1).
//!
//! This crate provides the equivalent pipeline:
//!
//! * [`spec`] — [`ModelSpec`]: the per-model facts the serving system needs
//!   (IO sizes, weight size, per-batch execution latency profile).
//! * [`zoo`] — the 60+ model table of Appendix A, transcribed from the paper,
//!   used as ground truth by the simulator and the experiments.
//! * [`source`] — an abstract, ONNX-like model description
//!   ([`source::ModelSource`]) that users "upload".
//! * [`compiler`] — a deterministic TVM-stand-in that turns a
//!   [`source::ModelSource`] into a [`compiler::CompiledModel`]: weights
//!   blob descriptor, per-batch kernels, and a static memory plan.
//! * [`profiler`] — the brief profiling step that produces seed estimates of
//!   execution time for the controller.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiler;
pub mod profiler;
pub mod source;
pub mod spec;
pub mod tier;
pub mod zoo;

pub use compiler::{CompiledModel, Compiler};
pub use spec::{BatchProfile, ModelId, ModelSpec};
pub use tier::Tier;
pub use zoo::ModelZoo;
