//! The model compiler (the reproduction's stand-in for TVM).
//!
//! §5.1 of the paper: "For models provided to Clockwork (e.g. in ONNX form),
//! we compile a binary representation using TVM and postprocess the model to
//! produce: weights, kernels (for batch sizes 1, 2, 4, 8, 16), memory
//! metadata, and profiling data."
//!
//! [`Compiler::compile`] performs the equivalent transformation on a
//! [`ModelSource`]: it derives the weights blob size, estimates per-batch
//! execution latency from FLOP and memory-traffic counts using a simple
//! roofline model of the target GPU, computes the static workspace
//! requirement, and packages everything as a [`CompiledModel`]. The result is
//! deterministic — compiling the same source twice yields identical
//! artifacts — which is exactly the property Clockwork relies on.

use serde::{Deserialize, Serialize};

use clockwork_sim::time::Nanos;

use crate::source::ModelSource;
use crate::spec::{BatchProfile, ModelSpec, DEFAULT_BATCH_SIZES};

/// Characteristics of the GPU the compiler targets.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuTarget {
    /// Sustainable compute throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Sustainable device memory bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Fixed per-kernel-launch overhead.
    pub launch_overhead: Nanos,
    /// Efficiency factor applied to the roofline estimate (real kernels do
    /// not reach peak throughput).
    pub efficiency: f64,
}

impl Default for GpuTarget {
    fn default() -> Self {
        Self::tesla_v100()
    }
}

impl GpuTarget {
    /// A Tesla V100 target: ~14 TFLOP/s FP32, ~900 GB/s HBM2.
    pub fn tesla_v100() -> Self {
        GpuTarget {
            flops_per_sec: 14.0e12,
            memory_bandwidth: 900.0e9,
            launch_overhead: Nanos::from_micros(30),
            efficiency: 0.55,
        }
    }
}

/// A compiled kernel for one batch size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// The batch size this kernel was specialised for.
    pub batch: u32,
    /// Estimated execution latency on the target GPU.
    pub estimated_latency: Nanos,
    /// Workspace bytes required while this kernel executes.
    pub workspace_bytes: u64,
}

/// The static memory plan of a compiled model (§5.1 "memory metadata").
///
/// Models never allocate memory at runtime; the compiler pre-computes every
/// requirement so the worker can pass pre-allocated pointers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Bytes of weights that must be resident in device memory.
    pub weights_bytes: u64,
    /// Transient workspace bytes needed during execution (batch 16).
    pub workspace_bytes: u64,
    /// Input tensor bytes per request.
    pub input_bytes: u64,
    /// Output tensor bytes per request.
    pub output_bytes: u64,
}

/// A deterministic description of the weights blob produced by compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightsBlob {
    /// Size in bytes.
    pub bytes: u64,
    /// A deterministic checksum standing in for the blob contents.
    pub checksum: u64,
}

/// The output of compiling a [`ModelSource`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// The serving-facing specification (IO sizes, weights, batch latencies).
    pub spec: ModelSpec,
    /// One kernel per compiled batch size.
    pub kernels: Vec<Kernel>,
    /// The weights blob descriptor.
    pub weights: WeightsBlob,
    /// The static memory plan.
    pub memory_plan: MemoryPlan,
}

impl CompiledModel {
    /// The kernel for an exact batch size, if compiled.
    pub fn kernel(&self, batch: u32) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.batch == batch)
    }
}

/// The model compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    target: GpuTarget,
}

impl Compiler {
    /// Creates a compiler for the default (V100) target.
    pub fn new() -> Self {
        Compiler {
            target: GpuTarget::default(),
        }
    }

    /// Creates a compiler for a specific GPU target.
    pub fn for_target(target: GpuTarget) -> Self {
        Compiler { target }
    }

    /// The target this compiler generates kernels for.
    pub fn target(&self) -> &GpuTarget {
        &self.target
    }

    /// Estimates the execution latency of one batch using a roofline model:
    /// the kernel is bound by whichever of compute and memory traffic takes
    /// longer, discounted by an efficiency factor, plus per-layer launch
    /// overhead. Batching amortises weight traffic and launch overhead, which
    /// is why larger batches have better per-request cost — the same shape as
    /// the Appendix A table.
    fn estimate_latency(&self, source: &ModelSource, batch: u32) -> Nanos {
        let batch_f = f64::from(batch.max(1));
        let flops = source.flops() as f64 * batch_f;
        let weight_traffic = source.weights_bytes() as f64; // read once per batch
        let activation_traffic =
            (source.peak_activation_bytes() as f64 * 2.0 + source.input_bytes() as f64) * batch_f;
        let compute_secs = flops / (self.target.flops_per_sec * self.target.efficiency);
        let memory_secs = (weight_traffic + activation_traffic)
            / (self.target.memory_bandwidth * self.target.efficiency);
        let bound = compute_secs.max(memory_secs);
        let launches = source.layers.len() as u64;
        Nanos::from_secs_f64(bound) + self.target.launch_overhead * launches
    }

    /// Compiles a model source for the default batch sizes.
    pub fn compile(&self, source: &ModelSource) -> CompiledModel {
        self.compile_for_batches(source, &DEFAULT_BATCH_SIZES)
    }

    /// Compiles a model source for explicit batch sizes.
    pub fn compile_for_batches(&self, source: &ModelSource, batches: &[u32]) -> CompiledModel {
        let workspace = source.peak_activation_bytes().max(1024) * 2;
        let kernels: Vec<Kernel> = batches
            .iter()
            .map(|&batch| Kernel {
                batch,
                estimated_latency: self.estimate_latency(source, batch),
                workspace_bytes: workspace * u64::from(batch.max(1)),
            })
            .collect();
        // `ModelSpec::batch_profiles` is documented as sorted by batch size
        // and the scheduler's strategy builder relies on it; callers may pass
        // `batches` in any order.
        let mut batch_profiles: Vec<BatchProfile> = kernels
            .iter()
            .map(|k| BatchProfile {
                batch: k.batch,
                latency: k.estimated_latency,
            })
            .collect();
        batch_profiles.sort_by_key(|p| p.batch);
        let spec = ModelSpec {
            name: source.name.clone(),
            family: "user".to_string(),
            input_kb: source.input_bytes() as f64 / 1024.0,
            output_kb: source.output_bytes() as f64 / 1024.0,
            weights_mb: source.weights_bytes() as f64 / (1024.0 * 1024.0),
            workspace_bytes: kernels.last().map(|k| k.workspace_bytes).unwrap_or(0),
            batch_profiles,
        };
        let memory_plan = MemoryPlan {
            weights_bytes: source.weights_bytes(),
            workspace_bytes: spec.workspace_bytes,
            input_bytes: source.input_bytes(),
            output_bytes: source.output_bytes(),
        };
        CompiledModel {
            weights: WeightsBlob {
                bytes: source.weights_bytes(),
                checksum: checksum(source),
            },
            kernels,
            memory_plan,
            spec,
        }
    }
}

/// A deterministic FNV-1a style checksum over the source structure, standing
/// in for the contents of the compiled weights blob.
fn checksum(source: &ModelSource) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    };
    for b in source.name.as_bytes() {
        mix(u64::from(*b));
    }
    mix(source.input_elements);
    mix(source.output_elements);
    for layer in &source.layers {
        mix(layer.parameter_count());
        mix(layer.flops());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_is_deterministic() {
        let src = ModelSource::resnet_like("det", 4);
        let c = Compiler::new();
        let a = c.compile(&src);
        let b = c.compile(&src);
        assert_eq!(a, b);
    }

    #[test]
    fn different_sources_have_different_checksums() {
        let c = Compiler::new();
        let a = c.compile(&ModelSource::resnet_like("a", 3));
        let b = c.compile(&ModelSource::resnet_like("b", 4));
        assert_ne!(a.weights.checksum, b.weights.checksum);
    }

    #[test]
    fn default_batch_sizes_are_compiled() {
        let src = ModelSource::mlp("mlp", 256, &[512, 512], 10);
        let compiled = Compiler::new().compile(&src);
        assert_eq!(compiled.kernels.len(), 5);
        assert_eq!(compiled.spec.supported_batches(), vec![1, 2, 4, 8, 16]);
        assert!(compiled.kernel(4).is_some());
        assert!(compiled.kernel(3).is_none());
    }

    #[test]
    fn latency_grows_with_batch_but_sublinearly() {
        let src = ModelSource::resnet_like("r", 4);
        let compiled = Compiler::new().compile(&src);
        let l1 = compiled.kernel(1).unwrap().estimated_latency;
        let l16 = compiled.kernel(16).unwrap().estimated_latency;
        assert!(l16 > l1, "larger batches take longer");
        assert!(l16 < l1 * 16, "batching must amortise: b1 {l1} b16 {l16}");
    }

    #[test]
    fn estimated_latencies_are_in_a_realistic_range() {
        // A ResNet-scale model should land in the single-digit millisecond
        // range at batch 1 on a V100-like target, matching Appendix A.
        let src = ModelSource::resnet_like("realism", 4);
        let compiled = Compiler::new().compile(&src);
        let ms = compiled
            .kernel(1)
            .unwrap()
            .estimated_latency
            .as_millis_f64();
        assert!(ms > 0.3 && ms < 60.0, "batch-1 latency {ms} ms");
    }

    #[test]
    fn memory_plan_matches_source() {
        let src = ModelSource::resnet_like("mem", 3);
        let compiled = Compiler::new().compile(&src);
        assert_eq!(compiled.memory_plan.weights_bytes, src.weights_bytes());
        assert_eq!(compiled.memory_plan.input_bytes, src.input_bytes());
        assert_eq!(compiled.memory_plan.output_bytes, src.output_bytes());
        assert!(compiled.memory_plan.workspace_bytes > 0);
        assert_eq!(compiled.weights.bytes, src.weights_bytes());
    }

    #[test]
    fn spec_round_trips_sizes() {
        let src = ModelSource::mlp("sizes", 1024, &[2048], 100);
        let compiled = Compiler::new().compile(&src);
        assert_eq!(compiled.spec.input_bytes(), src.input_bytes());
        assert_eq!(compiled.spec.output_bytes(), src.output_bytes());
        assert_eq!(compiled.spec.weights_bytes(), src.weights_bytes());
    }

    #[test]
    fn custom_batch_sizes() {
        let src = ModelSource::mlp("custom", 64, &[128], 8);
        let compiled = Compiler::new().compile_for_batches(&src, &[1, 32]);
        assert_eq!(compiled.spec.supported_batches(), vec![1, 32]);
    }

    #[test]
    fn bigger_models_take_longer() {
        let c = Compiler::new();
        let small = c.compile(&ModelSource::resnet_like("small", 2));
        let large = c.compile(&ModelSource::resnet_like("large", 5));
        assert!(
            large.kernel(1).unwrap().estimated_latency > small.kernel(1).unwrap().estimated_latency
        );
    }
}
