//! Model specifications.
//!
//! A [`ModelSpec`] carries everything the serving system needs to know about
//! a model without ever looking inside it: the size of its input and output
//! tensors, the size of its weights blob, and the measured execution latency
//! for each compiled batch size. This mirrors §5.1 of the paper, where models
//! are post-processed into weights, kernels (for batch sizes 1, 2, 4, 8, 16),
//! static memory metadata, and seed profiling data.

use serde::{Deserialize, Serialize};

use clockwork_sim::pcie::PcieLink;
use clockwork_sim::time::Nanos;

/// The batch sizes Clockwork compiles kernels for by default (§5.1).
pub const DEFAULT_BATCH_SIZES: [u32; 5] = [1, 2, 4, 8, 16];

/// Identifier of a model *instance* registered with the serving system.
///
/// Experiments frequently register many instances of the same underlying
/// model (e.g. 15 copies of ResNet50 in Fig. 5, 3 601 copies in Fig. 6); each
/// instance gets its own id, weights, and cache residency.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ModelId(pub u32);

impl ModelId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Execution latency of a model at one batch size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// The batch size this kernel was compiled for.
    pub batch: u32,
    /// Measured execution latency of the kernel at this batch size.
    pub latency: Nanos,
}

/// Static description of a servable model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name, e.g. `resnet50_v1`.
    pub name: String,
    /// Model family, e.g. `ResNet`.
    pub family: String,
    /// Input tensor size in kilobytes.
    pub input_kb: f64,
    /// Output tensor size in kilobytes.
    pub output_kb: f64,
    /// Weights blob size in mebibytes.
    pub weights_mb: f64,
    /// Transient workspace memory required during execution, in bytes.
    pub workspace_bytes: u64,
    /// Per-batch-size execution latencies, sorted by batch size.
    pub batch_profiles: Vec<BatchProfile>,
}

impl ModelSpec {
    /// Creates a spec from per-batch latencies given in milliseconds, the
    /// unit used by the Appendix A table. Batch profiles are sorted by batch
    /// size.
    pub fn from_millis(
        name: &str,
        family: &str,
        input_kb: f64,
        output_kb: f64,
        weights_mb: f64,
        batch_latencies_ms: &[(u32, f64)],
    ) -> Self {
        let mut batch_profiles: Vec<BatchProfile> = batch_latencies_ms
            .iter()
            .map(|&(batch, ms)| BatchProfile {
                batch,
                latency: Nanos::from_millis_f64(ms),
            })
            .collect();
        batch_profiles.sort_by_key(|p| p.batch);
        ModelSpec {
            name: name.to_string(),
            family: family.to_string(),
            input_kb,
            output_kb,
            weights_mb,
            workspace_bytes: 0,
            batch_profiles,
        }
    }

    /// Input tensor size in bytes.
    pub fn input_bytes(&self) -> u64 {
        (self.input_kb * 1024.0).round() as u64
    }

    /// Output tensor size in bytes.
    pub fn output_bytes(&self) -> u64 {
        (self.output_kb * 1024.0).round() as u64
    }

    /// Weights blob size in bytes.
    pub fn weights_bytes(&self) -> u64 {
        (self.weights_mb * 1024.0 * 1024.0).round() as u64
    }

    /// The batch sizes this model has kernels for, in ascending order.
    pub fn supported_batches(&self) -> Vec<u32> {
        self.batch_profiles.iter().map(|p| p.batch).collect()
    }

    /// The largest supported batch size (0 if no kernels exist).
    pub fn max_batch(&self) -> u32 {
        self.batch_profiles.last().map(|p| p.batch).unwrap_or(0)
    }

    /// Execution latency at an exactly supported batch size.
    pub fn exec_latency(&self, batch: u32) -> Option<Nanos> {
        self.batch_profiles
            .iter()
            .find(|p| p.batch == batch)
            .map(|p| p.latency)
    }

    /// Execution latency of the smallest supported batch size that can serve
    /// `count` requests, together with that batch size.
    ///
    /// Returns `None` if `count` is zero or exceeds the largest kernel.
    pub fn batch_for_count(&self, count: u32) -> Option<BatchProfile> {
        if count == 0 {
            return None;
        }
        self.batch_profiles
            .iter()
            .copied()
            .find(|p| p.batch >= count)
    }

    /// The largest batch size whose execution latency fits within `budget`,
    /// if any.
    pub fn largest_batch_within(&self, budget: Nanos) -> Option<BatchProfile> {
        self.batch_profiles
            .iter()
            .copied()
            .filter(|p| p.latency <= budget)
            .max_by_key(|p| p.batch)
    }

    /// Per-request execution cost at a given batch size (latency divided by
    /// batch), used by the load scheduler's demand estimates.
    pub fn per_request_cost(&self, batch: u32) -> Option<Nanos> {
        self.exec_latency(batch)
            .map(|l| l / u64::from(batch.max(1)))
    }

    /// Number of fixed-size pages needed to hold the weights.
    pub fn weights_pages(&self, page_size: u64) -> u64 {
        if page_size == 0 {
            return 0;
        }
        self.weights_bytes().div_ceil(page_size)
    }

    /// Duration of copying the weights over a PCIe link.
    pub fn weights_transfer_duration(&self, link: &PcieLink) -> Nanos {
        link.transfer_duration(self.weights_bytes())
    }

    /// Duration of copying one input tensor over a PCIe link.
    pub fn input_transfer_duration(&self, link: &PcieLink) -> Nanos {
        link.transfer_duration(self.input_bytes())
    }

    /// Duration of copying one output tensor over a PCIe link.
    pub fn output_transfer_duration(&self, link: &PcieLink) -> Nanos {
        link.transfer_duration(self.output_bytes())
    }

    /// Throughput in requests per second when executing back-to-back batches
    /// of the given size (ignores loads and IO, which overlap execution).
    pub fn throughput_at_batch(&self, batch: u32) -> Option<f64> {
        let latency = self.exec_latency(batch)?;
        if latency.is_zero() {
            return None;
        }
        Some(batch as f64 / latency.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet50() -> ModelSpec {
        ModelSpec::from_millis(
            "resnet50_v1",
            "ResNet",
            602.0,
            4.0,
            102.3,
            &[(1, 2.61), (2, 3.78), (4, 5.61), (8, 9.13), (16, 15.67)],
        )
    }

    #[test]
    fn sizes_convert_to_bytes() {
        let m = resnet50();
        assert_eq!(m.input_bytes(), 616_448);
        assert_eq!(m.output_bytes(), 4_096);
        assert_eq!(m.weights_bytes(), 107_269_325); // 102.3 MiB
    }

    #[test]
    fn batch_profiles_are_sorted_even_if_given_unsorted() {
        let m = ModelSpec::from_millis("x", "X", 1.0, 1.0, 1.0, &[(8, 8.0), (1, 1.0), (4, 4.0)]);
        assert_eq!(m.supported_batches(), vec![1, 4, 8]);
        assert_eq!(m.max_batch(), 8);
    }

    #[test]
    fn exec_latency_lookup() {
        let m = resnet50();
        assert_eq!(m.exec_latency(1), Some(Nanos::from_micros(2_610)));
        assert_eq!(m.exec_latency(16), Some(Nanos::from_micros(15_670)));
        assert_eq!(m.exec_latency(3), None);
    }

    #[test]
    fn batch_for_count_picks_smallest_sufficient() {
        let m = resnet50();
        assert_eq!(m.batch_for_count(1).unwrap().batch, 1);
        assert_eq!(m.batch_for_count(3).unwrap().batch, 4);
        assert_eq!(m.batch_for_count(16).unwrap().batch, 16);
        assert!(m.batch_for_count(17).is_none());
        assert!(m.batch_for_count(0).is_none());
    }

    #[test]
    fn largest_batch_within_budget() {
        let m = resnet50();
        assert_eq!(
            m.largest_batch_within(Nanos::from_millis(10))
                .unwrap()
                .batch,
            8
        );
        assert_eq!(
            m.largest_batch_within(Nanos::from_millis(100))
                .unwrap()
                .batch,
            16
        );
        assert!(m.largest_batch_within(Nanos::from_micros(100)).is_none());
    }

    #[test]
    fn per_request_cost_decreases_with_batching() {
        let m = resnet50();
        let c1 = m.per_request_cost(1).unwrap();
        let c16 = m.per_request_cost(16).unwrap();
        assert!(c16 < c1, "batching should amortise cost");
    }

    #[test]
    fn weights_pages_round_up() {
        let m = resnet50();
        let page = 16 * 1024 * 1024;
        // 102.3 MiB over 16 MiB pages -> 7 pages.
        assert_eq!(m.weights_pages(page), 7);
        assert_eq!(m.weights_pages(0), 0);
    }

    #[test]
    fn transfer_durations_use_link() {
        let m = resnet50();
        let link = PcieLink::v100_pcie3();
        let w = m.weights_transfer_duration(&link).as_millis_f64();
        assert!((w - 8.33).abs() < 0.2, "weights transfer {w} ms");
        let i = m.input_transfer_duration(&link);
        let o = m.output_transfer_duration(&link);
        assert!(i < Nanos::from_millis(1), "input transfer {i}");
        assert!(o < i);
    }

    #[test]
    fn throughput_at_batch() {
        let m = resnet50();
        let t1 = m.throughput_at_batch(1).unwrap();
        let t16 = m.throughput_at_batch(16).unwrap();
        assert!((t1 - 383.1).abs() < 1.0, "b1 throughput {t1}");
        assert!(t16 > 1000.0, "b16 throughput {t16}");
        assert!(m.throughput_at_batch(3).is_none());
    }

    #[test]
    fn model_id_display() {
        assert_eq!(ModelId(42).to_string(), "m42");
        assert_eq!(ModelId(42).index(), 42);
    }
}
