//! Abstract model descriptions (the "ONNX/NNEF" of the reproduction).
//!
//! Clockwork's users never ship executable code; they upload a model in an
//! abstract exchange format which the operator compiles (§5.1, §7 Security).
//! [`ModelSource`] plays that role here: a declarative list of layers with
//! shapes, from which the [`crate::compiler`] derives weights sizes, FLOP
//! counts, workspace requirements and estimated execution latencies.

use serde::{Deserialize, Serialize};

/// A layer of a [`ModelSource`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution over `input_hw` spatial dims.
    Conv2d {
        /// Input channel count.
        in_channels: u32,
        /// Output channel count.
        out_channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride (same in both dimensions).
        stride: u32,
        /// Input spatial size (height = width).
        input_hw: u32,
    },
    /// Fully connected layer.
    Dense {
        /// Input feature count.
        in_features: u32,
        /// Output feature count.
        out_features: u32,
    },
    /// Pooling layer (no weights); reduces spatial dims by `factor`.
    Pool {
        /// Channel count.
        channels: u32,
        /// Input spatial size.
        input_hw: u32,
        /// Downscaling factor.
        factor: u32,
    },
    /// Batch normalisation over `channels` feature maps of size `input_hw`².
    BatchNorm {
        /// Channel count.
        channels: u32,
        /// Spatial size.
        input_hw: u32,
    },
    /// Elementwise activation over `elements` values (no weights).
    Activation {
        /// Number of elements transformed.
        elements: u64,
    },
}

impl Layer {
    /// Number of trainable parameters in this layer.
    pub fn parameter_count(&self) -> u64 {
        match *self {
            Layer::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                u64::from(in_channels) * u64::from(out_channels) * u64::from(kernel * kernel)
                    + u64::from(out_channels)
            }
            Layer::Dense {
                in_features,
                out_features,
            } => u64::from(in_features) * u64::from(out_features) + u64::from(out_features),
            Layer::BatchNorm { channels, .. } => 2 * u64::from(channels),
            Layer::Pool { .. } | Layer::Activation { .. } => 0,
        }
    }

    /// Floating point operations for a single input (batch size 1).
    pub fn flops(&self) -> u64 {
        match *self {
            Layer::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                input_hw,
            } => {
                let out_hw = (input_hw / stride.max(1)).max(1) as u64;
                2 * u64::from(in_channels)
                    * u64::from(out_channels)
                    * u64::from(kernel * kernel)
                    * out_hw
                    * out_hw
            }
            Layer::Dense {
                in_features,
                out_features,
            } => 2 * u64::from(in_features) * u64::from(out_features),
            Layer::Pool {
                channels,
                input_hw,
                factor,
            } => {
                u64::from(channels)
                    * u64::from(input_hw)
                    * u64::from(input_hw)
                    * u64::from(factor.max(1))
            }
            Layer::BatchNorm { channels, input_hw } => {
                4 * u64::from(channels) * u64::from(input_hw) * u64::from(input_hw)
            }
            Layer::Activation { elements } => elements,
        }
    }

    /// Bytes of intermediate activation produced by this layer for batch 1
    /// (used to size the workspace).
    pub fn activation_bytes(&self) -> u64 {
        let elements: u64 = match *self {
            Layer::Conv2d {
                out_channels,
                stride,
                input_hw,
                ..
            } => {
                let out_hw = (input_hw / stride.max(1)).max(1) as u64;
                u64::from(out_channels) * out_hw * out_hw
            }
            Layer::Dense { out_features, .. } => u64::from(out_features),
            Layer::Pool {
                channels,
                input_hw,
                factor,
            } => {
                let out_hw = (input_hw / factor.max(1)).max(1) as u64;
                u64::from(channels) * out_hw * out_hw
            }
            Layer::BatchNorm { channels, input_hw } => {
                u64::from(channels) * u64::from(input_hw) * u64::from(input_hw)
            }
            Layer::Activation { elements } => elements,
        };
        elements * 4 // f32 activations
    }
}

/// An abstract model uploaded by a user.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSource {
    /// Model name.
    pub name: String,
    /// Input tensor element count (per request).
    pub input_elements: u64,
    /// Output tensor element count (per request).
    pub output_elements: u64,
    /// The layers, in execution order.
    pub layers: Vec<Layer>,
}

impl ModelSource {
    /// Total trainable parameters.
    pub fn parameter_count(&self) -> u64 {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Weights blob size in bytes (f32 parameters).
    pub fn weights_bytes(&self) -> u64 {
        self.parameter_count() * 4
    }

    /// FLOPs per inference at batch size 1.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Input tensor size in bytes (f32).
    pub fn input_bytes(&self) -> u64 {
        self.input_elements * 4
    }

    /// Output tensor size in bytes (f32).
    pub fn output_bytes(&self) -> u64 {
        self.output_elements * 4
    }

    /// Largest intermediate activation, in bytes, for batch 1.
    pub fn peak_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(Layer::activation_bytes)
            .max()
            .unwrap_or(0)
    }

    /// A small synthetic convolutional classifier roughly the shape of an
    /// ImageNet ResNet with the given number of residual-style stages.
    pub fn resnet_like(name: &str, stages: u32) -> Self {
        let mut layers = vec![Layer::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 7,
            stride: 2,
            input_hw: 224,
        }];
        let mut channels = 64u32;
        let mut hw = 56u32;
        for stage in 0..stages {
            let out = (channels * 2).min(2048);
            for _ in 0..2 {
                layers.push(Layer::Conv2d {
                    in_channels: channels,
                    out_channels: out,
                    kernel: 3,
                    stride: 1,
                    input_hw: hw,
                });
                layers.push(Layer::BatchNorm {
                    channels: out,
                    input_hw: hw,
                });
                layers.push(Layer::Activation {
                    elements: u64::from(out) * u64::from(hw) * u64::from(hw),
                });
                channels = out;
            }
            if stage + 1 < stages && hw > 7 {
                layers.push(Layer::Pool {
                    channels,
                    input_hw: hw,
                    factor: 2,
                });
                hw /= 2;
            }
        }
        layers.push(Layer::Pool {
            channels,
            input_hw: hw,
            factor: hw.max(1),
        });
        layers.push(Layer::Dense {
            in_features: channels,
            out_features: 1000,
        });
        ModelSource {
            name: name.to_string(),
            input_elements: 3 * 224 * 224,
            output_elements: 1000,
            layers,
        }
    }

    /// A small multi-layer perceptron, the kind of cheap model used for
    /// recommendation or fraud-detection workloads.
    pub fn mlp(name: &str, input: u32, hidden: &[u32], output: u32) -> Self {
        let mut layers = Vec::new();
        let mut prev = input;
        for &h in hidden {
            layers.push(Layer::Dense {
                in_features: prev,
                out_features: h,
            });
            layers.push(Layer::Activation {
                elements: u64::from(h),
            });
            prev = h;
        }
        layers.push(Layer::Dense {
            in_features: prev,
            out_features: output,
        });
        ModelSource {
            name: name.to_string(),
            input_elements: u64::from(input),
            output_elements: u64::from(output),
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layer_parameters_and_flops() {
        let l = Layer::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 7,
            stride: 2,
            input_hw: 224,
        };
        assert_eq!(l.parameter_count(), 3 * 64 * 49 + 64);
        assert_eq!(l.flops(), 2 * 3 * 64 * 49 * 112 * 112);
        assert_eq!(l.activation_bytes(), 64 * 112 * 112 * 4);
    }

    #[test]
    fn dense_layer_parameters_and_flops() {
        let l = Layer::Dense {
            in_features: 2048,
            out_features: 1000,
        };
        assert_eq!(l.parameter_count(), 2048 * 1000 + 1000);
        assert_eq!(l.flops(), 2 * 2048 * 1000);
    }

    #[test]
    fn parameterless_layers() {
        let pool = Layer::Pool {
            channels: 64,
            input_hw: 56,
            factor: 2,
        };
        let act = Layer::Activation { elements: 1000 };
        assert_eq!(pool.parameter_count(), 0);
        assert_eq!(act.parameter_count(), 0);
        assert!(pool.flops() > 0);
        assert_eq!(act.flops(), 1000);
    }

    #[test]
    fn resnet_like_has_realistic_scale() {
        let m = ModelSource::resnet_like("synthetic_resnet", 4);
        // Tens of millions of parameters and a few GFLOPs, like real ResNets.
        assert!(m.parameter_count() > 10_000_000, "{}", m.parameter_count());
        assert!(m.parameter_count() < 500_000_000);
        assert!(m.flops() > 1_000_000_000, "{}", m.flops());
        assert_eq!(m.output_elements, 1000);
        assert!(m.weights_bytes() > 40_000_000);
        assert!(m.peak_activation_bytes() > 0);
    }

    #[test]
    fn mlp_scales_with_hidden_layers() {
        let small = ModelSource::mlp("small", 128, &[256], 10);
        let large = ModelSource::mlp("large", 128, &[1024, 1024, 1024], 10);
        assert!(large.parameter_count() > small.parameter_count() * 5);
        assert_eq!(small.input_bytes(), 128 * 4);
        assert_eq!(small.output_bytes(), 40);
    }

    #[test]
    fn deeper_resnets_cost_more() {
        let shallow = ModelSource::resnet_like("a", 2);
        let deep = ModelSource::resnet_like("b", 5);
        assert!(deep.flops() > shallow.flops());
        assert!(deep.parameter_count() > shallow.parameter_count());
    }
}
