//! The model zoo of Appendix A.
//!
//! The paper's evaluation uses 61 model varieties sourced from the ONNX Model
//! Zoo and the GluonCV Model Zoo, compiled with TVM v0.7 for the Tesla V100,
//! and lists every one of them in Appendix A together with IO sizes, weight
//! sizes, measured PCIe transfer times and GPU execution latencies at batch
//! sizes 1–16. That table is the ground truth for the simulator: the
//! execution latencies seed the GPU timing model and the weight sizes drive
//! LOAD costs and memory pressure.
//!
//! [`ZOO_TABLE`] is the table transcribed verbatim; [`ModelZoo`] turns rows
//! into [`ModelSpec`]s and provides the selections used by the experiments.

use crate::spec::ModelSpec;

/// One row of the Appendix A table:
/// `(family, name, input kB, output kB, weights MB, measured transfer ms,
///   latency ms at batch 1, 2, 4, 8, 16)`.
pub type ZooRow = (&'static str, &'static str, f64, f64, f64, f64, [f64; 5]);

/// The Appendix A model table.
pub const ZOO_TABLE: &[ZooRow] = &[
    (
        "DenseNet",
        "densenet121",
        602.0,
        4.0,
        31.8,
        2.59,
        [3.80, 4.52, 6.55, 10.22, 17.91],
    ),
    (
        "DenseNet",
        "densenet161",
        602.0,
        4.0,
        114.7,
        9.33,
        [7.66, 10.11, 15.13, 23.94, 40.04],
    ),
    (
        "DenseNet",
        "densenet169",
        602.0,
        4.0,
        56.5,
        4.50,
        [5.18, 6.29, 8.57, 12.82, 21.85],
    ),
    (
        "DenseNet",
        "densenet201",
        602.0,
        4.0,
        80.0,
        6.52,
        [6.84, 8.45, 11.95, 18.30, 31.03],
    ),
    (
        "DLA",
        "dla34",
        602.0,
        4.0,
        64.9,
        5.29,
        [3.06, 4.77, 7.11, 10.66, 15.98],
    ),
    (
        "GoogLeNet",
        "googlenet",
        602.0,
        4.0,
        26.5,
        2.16,
        [1.54, 1.94, 2.69, 4.19, 7.11],
    ),
    (
        "Inception v3",
        "inceptionv3",
        1073.0,
        4.0,
        95.3,
        7.77,
        [4.46, 6.85, 10.99, 16.45, 26.17],
    ),
    (
        "Inception v3",
        "xception",
        602.0,
        4.0,
        159.3,
        12.99,
        [4.49, 6.64, 10.46, 18.53, 34.55],
    ),
    (
        "Mobile Pose",
        "mobile_pose_mobilenet1.0",
        590.0,
        209.0,
        20.0,
        1.63,
        [0.99, 1.72, 2.99, 5.67, 10.78],
    ),
    (
        "Mobile Pose",
        "mobile_pose_mobilenetv3",
        590.0,
        209.0,
        19.0,
        1.55,
        [1.29, 1.92, 3.13, 5.71, 11.62],
    ),
    (
        "Mobile Pose",
        "mobile_pose_resnet18_v1",
        590.0,
        209.0,
        51.4,
        4.19,
        [1.43, 2.25, 3.52, 6.29, 11.46],
    ),
    (
        "Mobile Pose",
        "mobile_pose_resnet50_v1",
        590.0,
        209.0,
        102.2,
        8.31,
        [3.29, 5.42, 9.00, 16.28, 29.92],
    ),
    (
        "Mobile Pose",
        "simple_pose_resnet18_v1b",
        590.0,
        209.0,
        61.5,
        5.00,
        [2.46, 3.62, 6.67, 10.70, 18.98],
    ),
    (
        "ResNeSt",
        "resnest14",
        602.0,
        4.0,
        42.4,
        3.45,
        [2.70, 4.07, 6.72, 12.61, 22.91],
    ),
    (
        "ResNeSt",
        "resnest26",
        602.0,
        4.0,
        68.2,
        5.56,
        [4.30, 6.07, 9.85, 18.26, 32.52],
    ),
    (
        "ResNeSt",
        "resnest50",
        602.0,
        4.0,
        109.8,
        8.93,
        [6.96, 9.47, 14.27, 29.94, 56.02],
    ),
    (
        "ResNeSt",
        "resnest101",
        602.0,
        4.0,
        192.9,
        15.71,
        [12.31, 16.23, 25.79, 44.65, 78.17],
    ),
    (
        "ResNet",
        "resnet18_v1",
        602.0,
        4.0,
        46.7,
        3.81,
        [1.27, 1.86, 2.73, 4.06, 7.02],
    ),
    (
        "ResNet",
        "resnet18_v1b",
        602.0,
        4.0,
        46.7,
        3.81,
        [1.25, 1.71, 2.37, 3.93, 6.83],
    ),
    (
        "ResNet",
        "resnet34_v1",
        602.0,
        4.0,
        87.2,
        7.11,
        [2.40, 3.39, 4.62, 7.76, 14.40],
    ),
    (
        "ResNet",
        "resnet34_v1b",
        602.0,
        4.0,
        87.2,
        7.11,
        [2.37, 3.37, 4.59, 7.76, 13.32],
    ),
    (
        "ResNet",
        "resnet50_v1",
        602.0,
        4.0,
        102.3,
        8.33,
        [2.61, 3.78, 5.61, 9.13, 15.67],
    ),
    (
        "ResNet",
        "resnet50_v1b",
        602.0,
        4.0,
        102.1,
        8.33,
        [2.77, 3.95, 5.88, 9.78, 16.58],
    ),
    (
        "ResNet",
        "resnet50_v1c",
        602.0,
        4.0,
        102.2,
        8.31,
        [2.82, 4.07, 6.11, 10.17, 17.26],
    ),
    (
        "ResNet",
        "resnet50_v1d",
        602.0,
        4.0,
        102.2,
        8.31,
        [2.78, 4.02, 6.01, 10.06, 17.13],
    ),
    (
        "ResNet",
        "resnet50_v1s",
        602.0,
        4.0,
        102.6,
        8.35,
        [3.04, 4.47, 6.99, 11.66, 20.39],
    ),
    (
        "ResNet",
        "resnet50_tuned_1.8x",
        602.0,
        4.0,
        88.1,
        7.16,
        [2.24, 3.05, 4.25, 6.65, 11.13],
    ),
    (
        "ResNet",
        "resnet101_v1",
        602.0,
        4.0,
        178.3,
        14.54,
        [5.27, 7.62, 11.07, 18.04, 30.30],
    ),
    (
        "ResNet",
        "resnet101_v1b",
        602.0,
        4.0,
        178.0,
        14.46,
        [5.41, 7.80, 11.33, 18.64, 31.18],
    ),
    (
        "ResNet",
        "resnet101_v1c",
        602.0,
        4.0,
        178.1,
        14.47,
        [5.47, 7.91, 11.53, 19.03, 31.98],
    ),
    (
        "ResNet",
        "resnet101_v1d",
        602.0,
        4.0,
        178.1,
        14.47,
        [5.42, 7.87, 11.44, 18.94, 31.84],
    ),
    (
        "ResNet",
        "resnet101_v1s",
        602.0,
        4.0,
        178.5,
        14.51,
        [5.70, 8.35, 12.43, 20.55, 35.10],
    ),
    (
        "ResNet",
        "resnet101_tuned_1.9x",
        602.0,
        4.0,
        136.3,
        11.08,
        [3.85, 5.61, 7.47, 12.56, 20.61],
    ),
    (
        "ResNet",
        "resnet101_tuned_2.2x",
        602.0,
        4.0,
        131.0,
        10.65,
        [3.72, 5.23, 7.01, 11.28, 18.55],
    ),
    (
        "ResNet",
        "resnet152_v1",
        602.0,
        4.0,
        240.9,
        19.58,
        [7.71, 11.14, 16.21, 26.48, 44.60],
    ),
    (
        "ResNet",
        "resnet152_v1b",
        602.0,
        4.0,
        240.5,
        19.54,
        [7.86, 11.36, 16.41, 27.05, 45.49],
    ),
    (
        "ResNet",
        "resnet152_v1c",
        602.0,
        4.0,
        240.5,
        19.55,
        [7.90, 11.48, 16.64, 27.42, 46.24],
    ),
    (
        "ResNet",
        "resnet152_v1d",
        602.0,
        4.0,
        240.5,
        19.55,
        [7.89, 11.45, 16.59, 27.38, 46.01],
    ),
    (
        "ResNet",
        "resnet152_v1s",
        602.0,
        4.0,
        241.0,
        19.58,
        [8.15, 11.91, 17.50, 28.95, 49.27],
    ),
    (
        "ResNet v2",
        "resnet18_v2",
        602.0,
        4.0,
        46.7,
        3.81,
        [1.32, 1.81, 2.48, 4.42, 7.12],
    ),
    (
        "ResNet v2",
        "resnet34_v2",
        602.0,
        4.0,
        87.2,
        7.11,
        [2.55, 3.44, 4.83, 7.90, 14.01],
    ),
    (
        "ResNet v2",
        "resnet50_v2",
        602.0,
        4.0,
        102.2,
        8.32,
        [2.73, 4.05, 5.87, 9.93, 17.30],
    ),
    (
        "ResNet v2",
        "resnet101_v2",
        602.0,
        4.0,
        178.1,
        14.47,
        [5.51, 8.05, 11.83, 18.14, 33.57],
    ),
    (
        "ResNet v2",
        "resnet152_v2",
        602.0,
        4.0,
        240.6,
        19.56,
        [8.21, 11.66, 17.03, 27.60, 48.54],
    ),
    (
        "ResNeXt",
        "resnext50_32x4d",
        602.0,
        4.0,
        100.0,
        8.15,
        [2.18, 3.23, 5.35, 9.21, 17.42],
    ),
    (
        "ResNeXt",
        "resnext101_32x4d",
        602.0,
        4.0,
        176.4,
        14.34,
        [4.65, 6.27, 10.06, 17.75, 32.83],
    ),
    (
        "ResNeXt",
        "resnext101_64x4d",
        602.0,
        4.0,
        333.4,
        27.18,
        [6.46, 10.24, 17.13, 30.42, 60.23],
    ),
    (
        "SENet",
        "se_resnext50_32x4d",
        602.0,
        4.0,
        110.1,
        8.95,
        [3.20, 4.47, 6.87, 11.50, 20.64],
    ),
    (
        "SENet",
        "se_resnext101_32x4d",
        602.0,
        4.0,
        195.5,
        15.89,
        [6.23, 8.24, 12.53, 21.02, 37.89],
    ),
    (
        "SENet",
        "se_resnext101_64x4d",
        602.0,
        4.0,
        352.5,
        28.75,
        [8.18, 12.97, 19.93, 34.99, 66.44],
    ),
    (
        "TSN",
        "tsn_inceptionv1_kinetics400",
        1073.0,
        1.6,
        24.0,
        1.96,
        [1.95, 2.76, 4.44, 7.51, 13.43],
    ),
    (
        "TSN",
        "tsn_inceptionv3_kinetics400",
        1073.0,
        1.6,
        90.4,
        7.37,
        [4.47, 6.87, 10.97, 16.43, 26.12],
    ),
    (
        "TSN",
        "tsn_resnet18_v1b_kinetics400",
        602.0,
        1.6,
        45.5,
        3.71,
        [1.25, 1.72, 2.38, 3.93, 6.83],
    ),
    (
        "TSN",
        "tsn_resnet34_v1b_kinetics400",
        602.0,
        1.6,
        85.9,
        7.01,
        [2.38, 3.38, 4.59, 7.74, 13.37],
    ),
    (
        "TSN",
        "tsn_resnet50_v1b_kinetics400",
        602.0,
        1.6,
        97.2,
        7.93,
        [2.77, 3.94, 5.85, 9.77, 16.52],
    ),
    (
        "TSN",
        "tsn_resnet101_v1b_kinetics400",
        602.0,
        1.6,
        173.1,
        14.11,
        [5.42, 7.80, 11.30, 18.63, 31.15],
    ),
    (
        "TSN",
        "tsn_resnet152_v1b_kinetics400",
        602.0,
        1.6,
        235.6,
        19.21,
        [7.87, 11.35, 16.42, 27.07, 45.44],
    ),
    (
        "Wide ResNet",
        "cifar_wideresnet16_10",
        12.0,
        0.04,
        68.5,
        5.59,
        [1.27, 1.72, 2.61, 4.07, 7.62],
    ),
    (
        "Wide ResNet",
        "cifar_wideresnet28_10",
        12.0,
        0.04,
        145.9,
        11.93,
        [2.21, 3.57, 5.42, 8.41, 16.05],
    ),
    (
        "Wide ResNet",
        "cifar_wideresnet40_8",
        12.0,
        0.04,
        143.0,
        11.69,
        [2.49, 3.90, 5.99, 9.86, 17.14],
    ),
    (
        "Winograd",
        "winograd_resnet18_v2",
        602.0,
        4.0,
        77.4,
        6.31,
        [0.95, 1.17, 1.71, 2.81, 5.09],
    ),
    (
        "Winograd",
        "winograd_resnet50_v2",
        602.0,
        4.0,
        128.7,
        10.49,
        [3.39, 4.24, 6.07, 10.28, 18.84],
    ),
    (
        "Winograd",
        "winograd_resnet101_v2",
        602.0,
        4.0,
        235.8,
        19.23,
        [6.36, 7.71, 10.71, 17.26, 33.52],
    ),
    (
        "Winograd",
        "winograd_resnet152_v2",
        602.0,
        4.0,
        324.1,
        26.42,
        [9.40, 11.13, 15.92, 24.42, 28.92],
    ),
];

/// The model zoo: the Appendix A table materialised as [`ModelSpec`]s.
#[derive(Clone, Debug)]
pub struct ModelZoo {
    specs: Vec<ModelSpec>,
}

impl Default for ModelZoo {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelZoo {
    /// Builds the zoo from [`ZOO_TABLE`].
    pub fn new() -> Self {
        let specs = ZOO_TABLE
            .iter()
            .map(
                |&(family, name, input_kb, output_kb, weights_mb, _transfer_ms, lat)| {
                    let mut spec = ModelSpec::from_millis(
                        name,
                        family,
                        input_kb,
                        output_kb,
                        weights_mb,
                        &[
                            (1, lat[0]),
                            (2, lat[1]),
                            (4, lat[2]),
                            (8, lat[3]),
                            (16, lat[4]),
                        ],
                    );
                    // The paper allocates 512 MB of workspace memory for
                    // intermediate results; individual models need less, roughly
                    // proportional to their activation footprint. We approximate
                    // it as 2x the input size plus 64 MiB.
                    spec.workspace_bytes = 2 * spec.input_bytes() + 64 * 1024 * 1024;
                    spec
                },
            )
            .collect();
        ModelZoo { specs }
    }

    /// All model specs in table order.
    pub fn all(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Number of model varieties in the zoo.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the zoo is empty (never true for the built-in table).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks a model up by name.
    pub fn by_name(&self, name: &str) -> Option<&ModelSpec> {
        self.specs.iter().find(|m| m.name == name)
    }

    /// All models of a family.
    pub fn family(&self, family: &str) -> Vec<&ModelSpec> {
        self.specs.iter().filter(|m| m.family == family).collect()
    }

    /// The de-facto comparison model of the paper (ResNet50 v1), used by
    /// Figs. 5, 6 and 7.
    pub fn resnet50(&self) -> &ModelSpec {
        self.by_name("resnet50_v1")
            .expect("resnet50_v1 is in the Appendix A table")
    }

    /// The measured transfer time reported in Appendix A for a model, in
    /// milliseconds (used to validate the PCIe model).
    pub fn reported_transfer_ms(&self, name: &str) -> Option<f64> {
        ZOO_TABLE.iter().find(|row| row.1 == name).map(|row| row.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_sim::pcie::PcieLink;
    use clockwork_sim::time::Nanos;

    #[test]
    fn zoo_has_the_appendix_a_models() {
        let zoo = ModelZoo::new();
        assert_eq!(zoo.len(), ZOO_TABLE.len());
        assert!(zoo.len() >= 61, "paper reports 61 model varieties");
        assert!(!zoo.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let zoo = ModelZoo::new();
        let mut names: Vec<&str> = zoo.all().iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), zoo.len());
    }

    #[test]
    fn every_model_has_all_default_batch_sizes() {
        let zoo = ModelZoo::new();
        for m in zoo.all() {
            assert_eq!(m.supported_batches(), vec![1, 2, 4, 8, 16], "{}", m.name);
        }
    }

    #[test]
    fn latencies_increase_with_batch_size() {
        let zoo = ModelZoo::new();
        for m in zoo.all() {
            let mut prev = Nanos::ZERO;
            for p in &m.batch_profiles {
                assert!(p.latency > prev, "{} batch {}", m.name, p.batch);
                prev = p.latency;
            }
        }
    }

    #[test]
    fn batching_improves_per_request_cost() {
        let zoo = ModelZoo::new();
        for m in zoo.all() {
            let c1 = m.per_request_cost(1).unwrap();
            let c16 = m.per_request_cost(16).unwrap();
            assert!(c16 < c1, "{}: batching should amortise", m.name);
        }
    }

    #[test]
    fn resnet50_matches_the_paper_headline_numbers() {
        let zoo = ModelZoo::new();
        let m = zoo.resnet50();
        // §2: inference ≈2.9 ms... the appendix lists 2.61 ms for batch 1 and
        // §4.1 quotes ≈2.9 ms / ≈8.3 ms for INFER / LOAD.
        assert!((m.exec_latency(1).unwrap().as_millis_f64() - 2.61).abs() < 0.01);
        assert!((m.weights_mb - 102.3).abs() < 0.01);
    }

    #[test]
    fn simulated_transfer_times_match_reported_ones() {
        // The PCIe model should reproduce the "Transfer (ms)" column of the
        // Appendix A table within a few percent for every model.
        let zoo = ModelZoo::new();
        let link = PcieLink::v100_pcie3();
        for m in zoo.all() {
            let reported = zoo.reported_transfer_ms(&m.name).unwrap();
            let simulated = m.weights_transfer_duration(&link).as_millis_f64();
            let rel = (simulated - reported).abs() / reported;
            assert!(
                rel < 0.06,
                "{}: reported {reported} ms simulated {simulated:.2} ms",
                m.name
            );
        }
    }

    #[test]
    fn family_lookup() {
        let zoo = ModelZoo::new();
        assert_eq!(zoo.family("DenseNet").len(), 4);
        assert_eq!(zoo.family("Wide ResNet").len(), 3);
        assert!(zoo.family("NoSuchFamily").is_empty());
        assert!(zoo.by_name("googlenet").is_some());
        assert!(zoo.by_name("nope").is_none());
    }

    #[test]
    fn weight_sizes_span_the_reported_range() {
        // §5.1: weights are 10s to 100s of MB.
        let zoo = ModelZoo::new();
        let min = zoo
            .all()
            .iter()
            .map(|m| m.weights_mb)
            .fold(f64::INFINITY, f64::min);
        let max = zoo.all().iter().map(|m| m.weights_mb).fold(0.0, f64::max);
        assert!((10.0..=30.0).contains(&min), "min {min}");
        assert!((300.0..=400.0).contains(&max), "max {max}");
    }

    #[test]
    fn workspace_fits_in_the_512mb_workspace_arena() {
        let zoo = ModelZoo::new();
        for m in zoo.all() {
            assert!(m.workspace_bytes <= 512 * 1024 * 1024, "{}", m.name);
            assert!(m.workspace_bytes > 0, "{}", m.name);
        }
    }
}
