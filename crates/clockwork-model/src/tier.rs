//! Client service tiers.
//!
//! Multi-tenant serving distinguishes *strict* clients — interactive traffic
//! whose SLO is a promise — from *best-effort* clients that tolerate shedding
//! when the fleet is under pressure. The tier travels with each request from
//! workload generation through admission to telemetry, so graceful
//! degradation (shed best-effort before strict) is a per-request decision,
//! not a global mode.

use serde::{Deserialize, Serialize};

/// The service class of a request.
///
/// `Strict` is the default everywhere: a workload that never mentions tiers
/// behaves exactly as before tiers existed.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Tier {
    /// Interactive traffic; its SLO is honored as long as physically
    /// possible.
    #[default]
    Strict,
    /// Discount traffic; shed first under flash-crowd or churn pressure.
    BestEffort,
}

impl Tier {
    /// Every tier, in index order (`Strict` first).
    pub const ALL: [Tier; 2] = [Tier::Strict, Tier::BestEffort];

    /// Number of tiers.
    pub const COUNT: usize = 2;

    /// Stable snake_case key for telemetry breakdowns and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Tier::Strict => "strict",
            Tier::BestEffort => "best_effort",
        }
    }

    /// Dense index for per-tier counter arrays (`Strict` = 0).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// The inverse of [`Tier::index`]; out-of-range values fall back to
    /// `Strict` (the compatible reading of traces written before tiers).
    pub fn from_index(index: u64) -> Tier {
        match index {
            1 => Tier::BestEffort,
            _ => Tier::Strict,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strict() {
        assert_eq!(Tier::default(), Tier::Strict);
    }

    #[test]
    fn index_round_trips() {
        for tier in Tier::ALL {
            assert_eq!(Tier::from_index(tier.index() as u64), tier);
        }
        assert_eq!(Tier::from_index(99), Tier::Strict, "unknown reads strict");
        assert_eq!(Tier::ALL.len(), Tier::COUNT);
    }

    #[test]
    fn keys_are_snake_case_and_distinct() {
        let keys: Vec<&str> = Tier::ALL.iter().map(|t| t.as_str()).collect();
        for key in &keys {
            assert!(key.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_ne!(keys[0], keys[1]);
        assert_eq!(Tier::BestEffort.to_string(), "best_effort");
    }
}
