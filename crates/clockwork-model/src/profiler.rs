//! Model profiling: seed estimates of execution time.
//!
//! §5.1: "Clockwork runs a brief profiling step to produce a seed estimate
//! for model execution times." The controller later refines these seeds with
//! a rolling window of measurements (§5.3), but it needs *something* before
//! the first request of a model arrives, otherwise it could not make an
//! admission decision for it.
//!
//! [`profile_model`] executes a configurable number of warm-up and measured
//! iterations of every compiled batch size against a [`GpuTimingModel`] and
//! reports a per-batch seed estimate, taken as a high percentile of the
//! measurements — the same "assume slightly worse than typical" stance the
//! controller adopts online.

use serde::{Deserialize, Serialize};

use clockwork_metrics::percentile::percentile_nanos;
use clockwork_sim::gpu::GpuTimingModel;
use clockwork_sim::time::Nanos;

use crate::spec::ModelSpec;

/// Configuration of the profiling step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Warm-up iterations per batch size (discarded).
    pub warmup_iterations: u32,
    /// Measured iterations per batch size.
    pub measured_iterations: u32,
    /// Percentile of the measurements reported as the seed estimate.
    pub estimate_percentile: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            warmup_iterations: 3,
            measured_iterations: 20,
            estimate_percentile: 99.0,
        }
    }
}

/// The seed profile of one batch size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchSeed {
    /// Batch size.
    pub batch: u32,
    /// Seed estimate of the execution latency (high percentile).
    pub estimate: Nanos,
    /// Mean of the measured iterations.
    pub mean: Nanos,
    /// All measured samples (for inspection / tests).
    pub samples: Vec<Nanos>,
}

/// The result of profiling a model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// The model name.
    pub model: String,
    /// Per-batch seed estimates, in ascending batch order.
    pub seeds: Vec<BatchSeed>,
}

impl ModelProfile {
    /// The seed estimate for an exact batch size.
    pub fn estimate(&self, batch: u32) -> Option<Nanos> {
        self.seeds
            .iter()
            .find(|s| s.batch == batch)
            .map(|s| s.estimate)
    }
}

/// Profiles every compiled batch size of a model against a GPU timing model.
pub fn profile_model(
    spec: &ModelSpec,
    gpu: &mut GpuTimingModel,
    config: &ProfilerConfig,
) -> ModelProfile {
    let mut seeds = Vec::with_capacity(spec.batch_profiles.len());
    for profile in &spec.batch_profiles {
        for _ in 0..config.warmup_iterations {
            let _ = gpu.exec_duration(profile.latency);
        }
        let samples: Vec<Nanos> = (0..config.measured_iterations.max(1))
            .map(|_| gpu.exec_duration(profile.latency))
            .collect();
        let estimate = percentile_nanos(&samples, config.estimate_percentile)
            .expect("at least one measured iteration");
        let mean_ns: u128 = samples.iter().map(|n| n.as_nanos() as u128).sum();
        let mean = Nanos::from_nanos((mean_ns / samples.len() as u128) as u64);
        seeds.push(BatchSeed {
            batch: profile.batch,
            estimate,
            mean,
            samples,
        });
    }
    ModelProfile {
        model: spec.name.clone(),
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_sim::gpu::{ExecNoise, GpuSpec};
    use clockwork_sim::rng::SimRng;

    fn quiet_gpu() -> GpuTimingModel {
        let spec = GpuSpec {
            exec_noise: ExecNoise::none(),
            ..GpuSpec::tesla_v100()
        };
        GpuTimingModel::new(spec, SimRng::seeded(1))
    }

    fn resnet50() -> ModelSpec {
        ModelSpec::from_millis(
            "resnet50_v1",
            "ResNet",
            602.0,
            4.0,
            102.3,
            &[(1, 2.61), (2, 3.78), (4, 5.61), (8, 9.13), (16, 15.67)],
        )
    }

    #[test]
    fn noiseless_profile_equals_base_latency() {
        let spec = resnet50();
        let mut gpu = quiet_gpu();
        let profile = profile_model(&spec, &mut gpu, &ProfilerConfig::default());
        assert_eq!(profile.seeds.len(), 5);
        for p in &spec.batch_profiles {
            assert_eq!(profile.estimate(p.batch), Some(p.latency));
        }
        assert_eq!(profile.estimate(3), None);
        assert_eq!(profile.model, "resnet50_v1");
    }

    #[test]
    fn noisy_profile_is_close_to_base_latency() {
        let spec = resnet50();
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(2));
        let profile = profile_model(&spec, &mut gpu, &ProfilerConfig::default());
        for p in &spec.batch_profiles {
            let est = profile.estimate(p.batch).unwrap();
            let rel = (est.as_nanos() as f64 - p.latency.as_nanos() as f64).abs()
                / p.latency.as_nanos() as f64;
            assert!(rel < 0.05, "batch {} estimate off by {rel}", p.batch);
        }
    }

    #[test]
    fn estimate_is_at_least_the_mean() {
        // The seed estimate is a high percentile, so with noise it should be
        // greater than or equal to the mean of the samples.
        let spec = resnet50();
        let mut gpu = GpuTimingModel::new(GpuSpec::tesla_v100(), SimRng::seeded(3));
        let profile = profile_model(&spec, &mut gpu, &ProfilerConfig::default());
        for seed in &profile.seeds {
            assert!(seed.estimate >= seed.mean, "batch {}", seed.batch);
            assert_eq!(seed.samples.len(), 20);
        }
    }

    #[test]
    fn config_controls_sample_count() {
        let spec = resnet50();
        let mut gpu = quiet_gpu();
        let cfg = ProfilerConfig {
            warmup_iterations: 0,
            measured_iterations: 5,
            estimate_percentile: 50.0,
        };
        let profile = profile_model(&spec, &mut gpu, &cfg);
        assert!(profile.seeds.iter().all(|s| s.samples.len() == 5));
    }
}
