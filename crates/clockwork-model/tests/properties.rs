//! Property-based tests for the model catalogue, compiler, and profiler.
//!
//! The Appendix A zoo is the ground truth every experiment is seeded from, so
//! these tests pin down its internal consistency (batch latencies behave like
//! real kernels, page math never under-counts) and the synthetic compiler's
//! invariants (deterministic output, kernels for every requested batch size,
//! a memory plan large enough for the weights it describes).

use proptest::prelude::*;

use clockwork_model::compiler::Compiler;
use clockwork_model::source::ModelSource;
use clockwork_model::spec::ModelSpec;
use clockwork_model::zoo::ModelZoo;
use clockwork_sim::pcie::PcieLink;
use clockwork_sim::time::Nanos;

/// A strategy producing an arbitrary-but-plausible model spec: batch
/// latencies grow with batch size (as every row of Appendix A does) but are
/// otherwise unconstrained.
fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (
        0.01f64..2000.0,                            // input_kb
        0.01f64..2000.0,                            // output_kb
        1.0f64..400.0,                              // weights_mb
        0.2f64..20.0,                               // batch-1 latency in ms
        proptest::collection::vec(1.05f64..2.0, 4), // growth factor per doubling
    )
        .prop_map(|(input_kb, output_kb, weights_mb, b1_ms, growth)| {
            let mut lat = b1_ms;
            let mut profiles = vec![(1u32, b1_ms)];
            for (i, g) in growth.iter().enumerate() {
                lat *= g;
                profiles.push((2u32 << i, lat));
            }
            ModelSpec::from_millis(
                "synthetic",
                "Synthetic",
                input_kb,
                output_kb,
                weights_mb,
                &profiles,
            )
        })
}

fn zoo_model_index() -> impl Strategy<Value = prop::sample::Index> {
    any::<prop::sample::Index>()
}

proptest! {
    // ------------------------------------------------------------------
    // The Appendix A zoo
    // ------------------------------------------------------------------

    #[test]
    fn zoo_models_are_internally_consistent(idx in zoo_model_index()) {
        let zoo = ModelZoo::new();
        let spec = &zoo.all()[idx.index(zoo.len())];

        // Sizes are positive and unit conversions round-trip sensibly.
        prop_assert!(spec.input_bytes() > 0);
        prop_assert!(spec.output_bytes() > 0);
        prop_assert!(spec.weights_bytes() > 1024 * 1024, "{} has implausibly small weights", spec.name);

        // Batch profiles are sorted, unique, and start at batch 1.
        let batches = spec.supported_batches();
        prop_assert!(!batches.is_empty());
        prop_assert_eq!(batches[0], 1);
        for w in batches.windows(2) {
            prop_assert!(w[0] < w[1], "{} has unsorted batch profiles", spec.name);
        }
        prop_assert_eq!(spec.max_batch(), *batches.last().unwrap());

        // Kernel latency grows with batch size, but sub-linearly: running a
        // batch of 2k is essentially never slower than running two batches
        // of k (that is what makes batching worthwhile). The paper's own
        // measurements have a handful of rows within a few percent of the
        // break-even point (e.g. resnest50 at B4→B8), so allow 10 % slack.
        for w in spec.batch_profiles.windows(2) {
            prop_assert!(w[0].latency <= w[1].latency,
                "{}: latency not monotone in batch size", spec.name);
            let ratio = w[1].batch / w[0].batch;
            let break_even = (w[0].latency * u64::from(ratio)).mul_f64(1.10);
            prop_assert!(w[1].latency <= break_even,
                "{}: batching would be useless between B{} and B{}", spec.name, w[0].batch, w[1].batch);
        }
        let b1_cost = spec.per_request_cost(1).unwrap();
        let bmax_cost = spec.per_request_cost(spec.max_batch()).unwrap();
        prop_assert!(bmax_cost <= b1_cost, "{}: batching never pays off", spec.name);
    }

    #[test]
    fn zoo_lookup_is_a_bijection(idx in zoo_model_index()) {
        let zoo = ModelZoo::new();
        let spec = &zoo.all()[idx.index(zoo.len())];
        let found = zoo.by_name(&spec.name).expect("every listed model is findable by name");
        prop_assert_eq!(found, spec);
        // Family search returns the model under its own family.
        let family = zoo.family(&spec.family);
        prop_assert!(family.iter().any(|m| m.name == spec.name));
    }

    #[test]
    fn zoo_transfer_time_matches_the_paper_within_tolerance(idx in zoo_model_index()) {
        let zoo = ModelZoo::new();
        let link = PcieLink::v100_pcie3();
        let spec = &zoo.all()[idx.index(zoo.len())];
        if let Some(reported_ms) = zoo.reported_transfer_ms(&spec.name) {
            let simulated_ms = spec.weights_transfer_duration(&link).as_millis_f64();
            let rel = (simulated_ms - reported_ms).abs() / reported_ms;
            prop_assert!(rel < 0.08,
                "{}: simulated transfer {:.2} ms vs paper {:.2} ms ({:.1} % off)",
                spec.name, simulated_ms, reported_ms, rel * 100.0);
        }
    }

    // ------------------------------------------------------------------
    // ModelSpec batch selection helpers
    // ------------------------------------------------------------------

    #[test]
    fn batch_for_count_returns_smallest_covering_kernel(spec in arb_spec(), count in 0u32..40) {
        match spec.batch_for_count(count) {
            Some(p) => {
                prop_assert!(count >= 1);
                prop_assert!(p.batch >= count);
                // No smaller supported batch also covers `count`.
                for smaller in spec.supported_batches() {
                    if smaller < p.batch {
                        prop_assert!(smaller < count);
                    }
                }
                prop_assert_eq!(spec.exec_latency(p.batch), Some(p.latency));
            }
            None => {
                prop_assert!(count == 0 || count > spec.max_batch());
            }
        }
    }

    #[test]
    fn largest_batch_within_budget_is_maximal_and_feasible(spec in arb_spec(), budget_us in 0u64..120_000) {
        let budget = Nanos::from_micros(budget_us);
        match spec.largest_batch_within(budget) {
            Some(p) => {
                prop_assert!(p.latency <= budget);
                // Every larger supported batch busts the budget.
                for q in &spec.batch_profiles {
                    if q.batch > p.batch {
                        prop_assert!(q.latency > budget);
                    }
                }
            }
            None => {
                // Not even batch 1 fits.
                prop_assert!(spec.exec_latency(1).unwrap() > budget);
            }
        }
    }

    #[test]
    fn weights_pages_cover_weights_without_waste(spec in arb_spec(), page_mb in 1u64..64) {
        let page = page_mb * 1024 * 1024;
        let pages = spec.weights_pages(page);
        prop_assert!(pages * page >= spec.weights_bytes());
        prop_assert!((pages.saturating_sub(1)) * page < spec.weights_bytes());
    }

    #[test]
    fn throughput_at_batch_matches_latency(spec in arb_spec(), pick in any::<prop::sample::Index>()) {
        let batches = spec.supported_batches();
        let b = batches[pick.index(batches.len())];
        let tput = spec.throughput_at_batch(b).unwrap();
        let lat = spec.exec_latency(b).unwrap();
        let expected = b as f64 / lat.as_secs_f64();
        prop_assert!((tput - expected).abs() <= 1e-6 * expected.max(1.0));
    }

    // ------------------------------------------------------------------
    // Compiler
    // ------------------------------------------------------------------

    #[test]
    fn compiler_emits_kernels_for_every_requested_batch(stages in 1u32..12, batches in proptest::collection::btree_set(1u32..64, 1..8)) {
        let source = ModelSource::resnet_like("prop_resnet", stages);
        let requested: Vec<u32> = batches.into_iter().collect();
        let compiled = Compiler::new().compile_for_batches(&source, &requested);
        prop_assert_eq!(compiled.kernels.len(), requested.len());
        for &b in &requested {
            let k = compiled.kernel(b).expect("kernel for requested batch");
            prop_assert_eq!(k.batch, b);
            prop_assert!(k.estimated_latency > Nanos::ZERO);
        }
        // Kernel latency estimates grow with batch size.
        for w in compiled.kernels.windows(2) {
            prop_assert!(w[0].batch < w[1].batch);
            prop_assert!(w[0].estimated_latency <= w[1].estimated_latency);
        }
        // The memory plan accounts for at least the weights and IO tensors.
        prop_assert_eq!(compiled.memory_plan.weights_bytes, source.weights_bytes());
        prop_assert!(compiled.memory_plan.input_bytes >= source.input_bytes());
        prop_assert!(compiled.memory_plan.output_bytes >= source.output_bytes());
        prop_assert_eq!(compiled.weights.bytes, source.weights_bytes());
    }

    #[test]
    fn compiler_is_deterministic(stages in 1u32..12) {
        let source = ModelSource::resnet_like("prop_resnet", stages);
        let a = Compiler::new().compile(&source);
        let b = Compiler::new().compile(&source);
        prop_assert_eq!(a.weights.checksum, b.weights.checksum);
        prop_assert_eq!(a.kernels.len(), b.kernels.len());
        for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
            prop_assert_eq!(ka.batch, kb.batch);
            prop_assert_eq!(ka.estimated_latency, kb.estimated_latency);
        }
    }

    #[test]
    fn mlp_sources_scale_with_architecture(input in 1u32..2048, hidden in proptest::collection::vec(1u32..2048, 1..5), output in 1u32..512) {
        let small = ModelSource::mlp("small", input, &hidden, output);
        let mut wider: Vec<u32> = hidden.clone();
        for h in &mut wider {
            *h *= 2;
        }
        let big = ModelSource::mlp("big", input, &wider, output);
        prop_assert!(big.parameter_count() > small.parameter_count());
        prop_assert!(big.weights_bytes() > small.weights_bytes());
        prop_assert!(big.flops() > small.flops());
    }
}
