//! Property-based tests for workload generation and trace handling.
//!
//! Every experiment in the repository is driven by a [`Trace`]; these tests
//! pin down the trace algebra (ordering, scaling, truncation, merging, CSV
//! round-trips) and the statistical sanity of the open-loop, closed-loop and
//! Azure-like generators.

use proptest::prelude::*;

use clockwork_model::{ModelId, Tier};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_workload::azure::{AzureTraceConfig, AzureTraceGenerator};
use clockwork_workload::closed_loop::ClosedLoopClient;
use clockwork_workload::open_loop::OpenLoopClient;
use clockwork_workload::trace::{Trace, TraceEvent};

const HOUR_NS: u64 = 3_600_000_000_000;

fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u64..HOUR_NS, 0u32..50, 1u64..1_000_000_000u64), 0..300).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(at, model, slo)| TraceEvent {
                    at: Timestamp::from_nanos(at),
                    model: ModelId(model),
                    slo: Nanos::from_nanos(slo),
                    tier: Tier::Strict,
                })
                .collect()
        },
    )
}

proptest! {
    // ------------------------------------------------------------------
    // Trace algebra
    // ------------------------------------------------------------------

    #[test]
    fn trace_is_sorted_and_preserves_every_event(events in arb_events()) {
        let trace = Trace::new(events.clone());
        prop_assert_eq!(trace.len(), events.len());
        for w in trace.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Same multiset of events, just reordered.
        let mut original: Vec<_> = events.iter().map(|e| (e.at, e.model, e.slo)).collect();
        let mut sorted: Vec<_> = trace.events().iter().map(|e| (e.at, e.model, e.slo)).collect();
        original.sort();
        sorted.sort();
        prop_assert_eq!(original, sorted);
        // Duration is the last arrival.
        let expected_duration = events.iter().map(|e| e.at).max().unwrap_or(Timestamp::ZERO);
        prop_assert_eq!(trace.duration(), expected_duration);
        // The model list is deduplicated and covers every referenced model.
        let models = trace.models();
        for e in trace.events() {
            prop_assert!(models.contains(&e.model));
        }
        let mut deduped = models.clone();
        deduped.sort();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), models.len());
    }

    #[test]
    fn trace_truncation_keeps_exactly_the_prefix(events in arb_events(), cutoff in 0u64..HOUR_NS) {
        let trace = Trace::new(events);
        let cutoff = Timestamp::from_nanos(cutoff);
        let truncated = trace.truncated(cutoff);
        let expected = trace.events().iter().filter(|e| e.at <= cutoff).count();
        prop_assert_eq!(truncated.len(), expected);
        for e in truncated.events() {
            prop_assert!(e.at <= cutoff);
        }
    }

    #[test]
    fn trace_rate_scaling_preserves_count_and_compresses_time(events in arb_events(), factor in 0.1f64..10.0) {
        let trace = Trace::new(events);
        let scaled = trace.rate_scaled(factor);
        prop_assert_eq!(scaled.len(), trace.len());
        // Scaling the rate by `factor` divides every arrival time by it.
        for (orig, s) in trace.events().iter().zip(scaled.events()) {
            prop_assert_eq!(orig.model, s.model);
            prop_assert_eq!(orig.slo, s.slo);
            let expected = orig.at.as_nanos() as f64 / factor;
            let got = s.at.as_nanos() as f64;
            prop_assert!((got - expected).abs() <= expected * 1e-9 + 2.0,
                "arrival {} scaled to {}, expected {}", orig.at, s.at, expected);
        }
        if factor > 1.0 {
            prop_assert!(scaled.duration() <= trace.duration());
        }
    }

    #[test]
    fn trace_merge_is_a_union(a in arb_events(), b in arb_events()) {
        let ta = Trace::new(a);
        let tb = Trace::new(b);
        let merged = ta.merged(&tb);
        prop_assert_eq!(merged.len(), ta.len() + tb.len());
        prop_assert!(merged.duration() >= ta.duration());
        prop_assert!(merged.duration() >= tb.duration());
        for w in merged.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn trace_csv_roundtrips(events in arb_events()) {
        let trace = Trace::new(events);
        let text = trace.to_csv();
        let parsed = Trace::from_csv(&text).expect("our own CSV must parse");
        prop_assert_eq!(parsed.len(), trace.len());
        for (orig, p) in trace.events().iter().zip(parsed.events()) {
            prop_assert_eq!(orig.at, p.at);
            prop_assert_eq!(orig.model, p.model);
            prop_assert_eq!(orig.slo, p.slo);
        }
    }

    // ------------------------------------------------------------------
    // Open-loop (Poisson) clients
    // ------------------------------------------------------------------

    #[test]
    fn open_loop_rate_is_respected_within_statistical_bounds(rate in 50.0f64..2000.0, seed in any::<u64>()) {
        let slo = Nanos::from_millis(100);
        let duration = Nanos::from_secs(20);
        let client = OpenLoopClient::new(ModelId(3), rate, slo);
        let mut rng = SimRng::seeded(seed);
        let trace = client.generate(duration, &mut rng);
        // All events target the right model, carry the right SLO, and lie
        // within the requested duration.
        for e in trace.events() {
            prop_assert_eq!(e.model, ModelId(3));
            prop_assert_eq!(e.slo, slo);
            prop_assert!(e.at <= Timestamp::ZERO + duration);
        }
        // The realised rate is within 20 % of the requested rate (Poisson
        // with >= 1000 expected events).
        let expected = rate * duration.as_secs_f64();
        let got = trace.len() as f64;
        prop_assert!((got - expected).abs() < expected * 0.2,
            "requested ~{} events, generated {}", expected, got);
    }

    #[test]
    fn open_loop_generate_many_covers_every_model(
        n_models in 1usize..30,
        rate in 1.0f64..50.0,
        seed in any::<u64>(),
    ) {
        let models: Vec<ModelId> = (0..n_models as u32).map(ModelId).collect();
        let mut rng = SimRng::seeded(seed);
        let trace = OpenLoopClient::generate_many(
            &models,
            rate,
            Nanos::from_millis(100),
            Nanos::from_secs(30),
            &mut rng,
        );
        for e in trace.events() {
            prop_assert!(models.contains(&e.model));
        }
        for w in trace.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    // ------------------------------------------------------------------
    // Closed-loop clients
    // ------------------------------------------------------------------

    #[test]
    fn closed_loop_client_never_exceeds_its_concurrency(
        concurrency in 1u32..32,
        responses in 0usize..200,
    ) {
        let mut client = ClosedLoopClient::new(ModelId(1), concurrency, Nanos::from_millis(100));
        let initial = client.initial_submissions(Timestamp::ZERO);
        // A closed-loop client opens exactly `concurrency` requests up front.
        prop_assert_eq!(initial.len(), concurrency as usize);
        prop_assert_eq!(client.in_flight(), concurrency);
        prop_assert_eq!(client.submitted(), u64::from(concurrency));

        let mut now = Timestamp::ZERO;
        for i in 0..responses {
            now += Nanos::from_millis(5);
            let next = client.on_response(now);
            // Every completed request is immediately replaced by exactly one
            // new submission, keeping in-flight constant.
            prop_assert!(next.is_some());
            prop_assert_eq!(client.in_flight(), concurrency);
            prop_assert_eq!(client.completed(), i as u64 + 1);
            prop_assert_eq!(client.submitted(), u64::from(concurrency) + i as u64 + 1);
        }
    }

}

// ----------------------------------------------------------------------
// Azure-like trace generator (fewer cases: each one synthesises minutes of
// trace)
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn azure_generator_is_deterministic_and_shaped_like_its_config(
        functions in 20usize..200,
        models in 5usize..60,
        rate in 50.0f64..500.0,
        seed in any::<u64>(),
    ) {
        let config = AzureTraceConfig {
            functions,
            models,
            duration: Nanos::from_minutes(2),
            target_rate: rate,
            slo: Nanos::from_millis(100),
            seed,
        };
        let generator = AzureTraceGenerator::new(config);
        prop_assert_eq!(generator.functions().len(), functions);
        for f in generator.functions() {
            prop_assert!((f.model.0 as usize) < models, "function mapped to unknown model");
            prop_assert!(f.weight >= 0.0);
        }

        let trace = generator.generate();
        // Determinism: the same config yields byte-identical traces.
        let again = AzureTraceGenerator::new(config).generate();
        prop_assert_eq!(trace.len(), again.len());
        prop_assert_eq!(trace.events(), again.events());

        // Shape: events are ordered, within duration, target known models,
        // and carry the configured SLO.
        for e in trace.events() {
            prop_assert!((e.model.0 as usize) < models);
            prop_assert_eq!(e.slo, config.slo);
            prop_assert!(e.at <= Timestamp::ZERO + config.duration);
        }
        for w in trace.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // The realised aggregate rate is in the same order of magnitude as
        // the target. The generator deliberately trades rate exactness for
        // realistic class mixtures (hourly spikes land inside short windows,
        // cold functions contribute a minimum trickle), so the band here is
        // wide; the per-experiment realised rates are recorded in
        // EXPERIMENTS.md.
        prop_assert!(!trace.is_empty());
        let realised = trace.mean_rate();
        prop_assert!(realised > rate * 0.2 && realised < rate * 10.0,
            "target {} r/s but realised {} r/s", rate, realised);
    }
}
