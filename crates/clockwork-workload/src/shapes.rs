//! Shaped workload generator: rate profiles, popularity skew, SLO tiers.
//!
//! The open-loop and Azure generators cover the paper's own experiments;
//! this module covers the *scenario zoo* beyond them — diurnal load cycles,
//! flash crowds, Zipf-distributed model popularity with drift, and
//! multi-tenant SLO tiers. A [`ShapedWorkload`] is a small composable spec:
//! a base Poisson rate shaped over time by a [`RateProfile`], spread over
//! models by a [`PopularityModel`], and split into client classes by a
//! [`TierMix`].
//!
//! Generation is segmented: time is cut into one-second segments and each
//! segment draws from an RNG derived via a splitmix step from the workload
//! seed (`rng.derive(segment_index)`), so every segment is independently
//! reproducible — extending the duration of a spec leaves all earlier
//! segments byte-identical, and a flash-crowd window can be regenerated in
//! isolation.

use serde::{Deserialize, Serialize};

use clockwork_model::{ModelId, Tier};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};

use crate::trace::{Trace, TraceEvent};

/// How the aggregate request rate evolves over the trace duration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// Flat rate for the whole duration.
    Constant,
    /// A smooth day/night cycle: rate swings sinusoidally between
    /// `(1 - amplitude)` and `(1 + amplitude)` times the base rate, with
    /// `cycles` full periods over the trace duration.
    Diurnal {
        /// Relative swing around the base rate, in `[0, 1]`.
        amplitude: f64,
        /// Number of full day/night periods across the duration.
        cycles: f64,
    },
    /// A flash crowd: baseline rate everywhere except a window
    /// `[start_frac, start_frac + len_frac)` of the duration where the rate
    /// jumps to `multiplier` times the base.
    FlashCrowd {
        /// Start of the spike window as a fraction of the duration.
        start_frac: f64,
        /// Length of the spike window as a fraction of the duration.
        len_frac: f64,
        /// Rate multiplier inside the window (the zoo preset uses 10×).
        multiplier: f64,
    },
}

impl RateProfile {
    /// The rate multiplier at time `frac` (fraction of the duration elapsed).
    pub fn multiplier_at(&self, frac: f64) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { amplitude, cycles } => {
                let amp = amplitude.clamp(0.0, 1.0);
                // Start at the trough so short runs see the ramp-up.
                (1.0 - amp * (frac * cycles * std::f64::consts::TAU).cos()).max(0.0)
            }
            RateProfile::FlashCrowd {
                start_frac,
                len_frac,
                multiplier,
            } => {
                if frac >= start_frac && frac < start_frac + len_frac {
                    multiplier.max(0.0)
                } else {
                    1.0
                }
            }
        }
    }
}

/// How requests are spread across the model set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PopularityModel {
    /// Every model gets the same share.
    Uniform,
    /// Zipf-distributed popularity: the model of rank `k` (1-based) gets a
    /// share proportional to `k^-exponent`. With `drift_segments > 0` the
    /// rank order rotates by one every that many seconds, so the hot set
    /// moves over time (popularity drift).
    Zipf {
        /// Skew exponent in thousandths (1000 = classic Zipf `s = 1`).
        /// Stored as an integer so the spec stays `Eq`-friendly and
        /// JSON-exact.
        exponent_milli: u32,
        /// Seconds between one-step rotations of the popularity ranking;
        /// zero disables drift.
        drift_segments: u32,
    },
}

impl PopularityModel {
    /// The cumulative distribution over `models` ranks at `segment`
    /// (used for inverse-CDF sampling). Returns an empty vector for an
    /// empty model set.
    fn cdf(&self, models: usize, segment: u64) -> Vec<f64> {
        if models == 0 {
            return Vec::new();
        }
        let weights: Vec<f64> = match *self {
            PopularityModel::Uniform => vec![1.0; models],
            PopularityModel::Zipf {
                exponent_milli,
                drift_segments,
            } => {
                let s = exponent_milli as f64 / 1000.0;
                let shift = if drift_segments == 0 {
                    0
                } else {
                    (segment / drift_segments as u64) as usize % models
                };
                // Model `(rank + shift) % models` holds rank `rank` in this
                // segment; rotating the assignment drifts the hot set.
                let mut w = vec![0.0; models];
                for rank in 0..models {
                    w[(rank + shift) % models] = 1.0 / ((rank + 1) as f64).powf(s);
                }
                w
            }
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }
}

/// The split of traffic into SLO tiers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TierMix {
    /// Share of requests issued by strict-tier clients, in thousandths
    /// (1000 = everything strict, the tier-less behaviour).
    pub strict_share_milli: u32,
    /// SLO of best-effort requests, in milliseconds. Typically looser than
    /// the scenario's strict SLO.
    pub best_effort_slo_ms: u64,
}

impl TierMix {
    /// All traffic strict — the tier-less default.
    pub const ALL_STRICT: TierMix = TierMix {
        strict_share_milli: 1000,
        best_effort_slo_ms: 0,
    };

    /// Whether this mix actually produces best-effort traffic.
    pub fn is_tiered(&self) -> bool {
        self.strict_share_milli < 1000
    }
}

/// A shaped open-loop workload: Poisson arrivals at `base_rate` requests per
/// second, shaped by a rate profile, spread by a popularity model, split by
/// a tier mix.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShapedWorkload {
    /// Baseline aggregate request rate (requests per second).
    pub base_rate: f64,
    /// Rate shape over time.
    pub profile: RateProfile,
    /// Popularity distribution over models.
    pub popularity: PopularityModel,
    /// Tier split.
    pub tiers: TierMix,
}

impl ShapedWorkload {
    /// A flat, uniform, all-strict workload — equivalent in law to
    /// [`crate::OpenLoopClient`] aggregated over the model set.
    pub fn constant(base_rate: f64) -> Self {
        ShapedWorkload {
            base_rate,
            profile: RateProfile::Constant,
            popularity: PopularityModel::Uniform,
            tiers: TierMix::ALL_STRICT,
        }
    }

    /// Generates the trace over `[0, duration)`.
    ///
    /// `strict_slo` is attached to strict-tier requests; best-effort
    /// requests carry the mix's `best_effort_slo_ms`. Each one-second
    /// segment uses `rng.derive(segment_index)`, so segment `k` of a longer
    /// run is identical to segment `k` of a shorter one.
    pub fn generate(
        &self,
        models: &[ModelId],
        strict_slo: Nanos,
        duration: Nanos,
        rng: &SimRng,
    ) -> Trace {
        let mut events = Vec::new();
        if models.is_empty() || self.base_rate <= 0.0 || duration == Nanos::ZERO {
            return Trace::new(events);
        }
        let total_secs = duration.as_secs_f64();
        let segments = total_secs.ceil() as u64;
        let be_slo = Nanos::from_millis(self.tiers.best_effort_slo_ms);
        for segment in 0..segments {
            // Splitmix-derived sub-seed per segment: independent streams.
            let mut seg_rng = rng.derive(segment);
            let seg_start = Timestamp::from_secs(segment);
            let seg_len = (total_secs - segment as f64).min(1.0);
            // Rate sampled at the segment midpoint.
            let frac = (segment as f64 + 0.5 * seg_len) / total_secs;
            let rate = self.base_rate * self.profile.multiplier_at(frac);
            let count = seg_rng.poisson_count(rate * seg_len);
            let cdf = self.popularity.cdf(models.len(), segment);
            for _ in 0..count {
                let at = seg_start + Nanos::from_secs_f64(seg_rng.uniform() * seg_len);
                if at >= Timestamp::ZERO + duration {
                    continue;
                }
                let pick = seg_rng.uniform();
                let idx = cdf.partition_point(|&c| c < pick).min(models.len() - 1);
                let strict = seg_rng.uniform() * 1000.0 < self.tiers.strict_share_milli as f64;
                let (tier, slo) = if strict || !self.tiers.is_tiered() {
                    (Tier::Strict, strict_slo)
                } else {
                    (Tier::BestEffort, be_slo)
                };
                events.push(TraceEvent {
                    at,
                    model: models[idx],
                    slo,
                    tier,
                });
            }
        }
        Trace::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(n: u32) -> Vec<ModelId> {
        (0..n).map(ModelId).collect()
    }

    fn gen(shape: &ShapedWorkload, secs: u64, seed: u64) -> Trace {
        shape.generate(
            &models(8),
            Nanos::from_millis(100),
            Nanos::from_secs(secs),
            &SimRng::seeded(seed),
        )
    }

    #[test]
    fn constant_rate_is_respected() {
        let trace = gen(&ShapedWorkload::constant(500.0), 20, 1);
        let rate = trace.len() as f64 / 20.0;
        assert!((rate - 500.0).abs() < 50.0, "rate {rate}");
        assert!(trace.events().iter().all(|e| e.tier == Tier::Strict));
    }

    #[test]
    fn same_seed_same_trace() {
        let shape = ShapedWorkload {
            base_rate: 300.0,
            profile: RateProfile::FlashCrowd {
                start_frac: 0.4,
                len_frac: 0.2,
                multiplier: 10.0,
            },
            popularity: PopularityModel::Zipf {
                exponent_milli: 900,
                drift_segments: 5,
            },
            tiers: TierMix {
                strict_share_milli: 600,
                best_effort_slo_ms: 250,
            },
        };
        assert_eq!(gen(&shape, 10, 42), gen(&shape, 10, 42));
        assert_ne!(gen(&shape, 10, 42), gen(&shape, 10, 43));
    }

    #[test]
    fn segments_are_prefix_stable() {
        // Extending the duration must not perturb earlier segments: segment
        // RNGs are derived per segment, not threaded through the whole run.
        let shape = ShapedWorkload::constant(200.0);
        let short = gen(&shape, 5, 7);
        let long = gen(&shape, 10, 7);
        let cutoff = Timestamp::from_secs(5);
        let long_prefix: Vec<TraceEvent> = long
            .events()
            .iter()
            .copied()
            .filter(|e| e.at < cutoff)
            .collect();
        assert_eq!(short.events(), long_prefix.as_slice());
    }

    #[test]
    fn flash_crowd_spikes_inside_the_window() {
        let shape = ShapedWorkload {
            base_rate: 200.0,
            profile: RateProfile::FlashCrowd {
                start_frac: 0.5,
                len_frac: 0.25,
                multiplier: 10.0,
            },
            popularity: PopularityModel::Uniform,
            tiers: TierMix::ALL_STRICT,
        };
        let trace = gen(&shape, 40, 9);
        let window = |from: u64, to: u64| {
            trace
                .events()
                .iter()
                .filter(|e| e.at >= Timestamp::from_secs(from) && e.at < Timestamp::from_secs(to))
                .count() as f64
        };
        let baseline = window(0, 20) / 20.0;
        let spike = window(20, 30) / 10.0;
        assert!(
            spike > baseline * 5.0,
            "spike {spike} r/s vs baseline {baseline} r/s"
        );
    }

    #[test]
    fn diurnal_rate_swings() {
        let shape = ShapedWorkload {
            base_rate: 400.0,
            profile: RateProfile::Diurnal {
                amplitude: 0.8,
                cycles: 1.0,
            },
            popularity: PopularityModel::Uniform,
            tiers: TierMix::ALL_STRICT,
        };
        let trace = gen(&shape, 40, 11);
        let count = |from: u64, to: u64| {
            trace
                .events()
                .iter()
                .filter(|e| e.at >= Timestamp::from_secs(from) && e.at < Timestamp::from_secs(to))
                .count() as f64
        };
        // Trough at the start/end, peak in the middle.
        let trough = count(0, 8);
        let peak = count(16, 24);
        assert!(peak > trough * 2.0, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn zipf_concentrates_and_drifts() {
        let mut per_model = [0usize; 8];
        let shape = ShapedWorkload {
            base_rate: 1000.0,
            profile: RateProfile::Constant,
            popularity: PopularityModel::Zipf {
                exponent_milli: 1200,
                drift_segments: 0,
            },
            tiers: TierMix::ALL_STRICT,
        };
        let trace = gen(&shape, 10, 13);
        for e in trace.events() {
            per_model[e.model.0 as usize] += 1;
        }
        let hottest = *per_model.iter().max().unwrap() as f64;
        assert!(
            hottest > trace.len() as f64 * 0.3,
            "hottest model got {hottest} of {}",
            trace.len()
        );
        // With drift the hot model changes between early and late segments.
        let drifting = ShapedWorkload {
            popularity: PopularityModel::Zipf {
                exponent_milli: 1200,
                drift_segments: 2,
            },
            ..shape
        };
        let trace = gen(&drifting, 16, 13);
        let hot_in = |from: u64, to: u64| {
            let mut counts = [0usize; 8];
            for e in trace.events() {
                if e.at >= Timestamp::from_secs(from) && e.at < Timestamp::from_secs(to) {
                    counts[e.model.0 as usize] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(m, _)| m)
                .unwrap()
        };
        assert_ne!(hot_in(0, 2), hot_in(14, 16), "popularity should drift");
    }

    #[test]
    fn tier_mix_splits_and_assigns_slos() {
        let shape = ShapedWorkload {
            base_rate: 800.0,
            profile: RateProfile::Constant,
            popularity: PopularityModel::Uniform,
            tiers: TierMix {
                strict_share_milli: 700,
                best_effort_slo_ms: 250,
            },
        };
        let trace = gen(&shape, 20, 17);
        let strict = trace
            .events()
            .iter()
            .filter(|e| e.tier == Tier::Strict)
            .count() as f64;
        let share = strict / trace.len() as f64;
        assert!((share - 0.7).abs() < 0.05, "strict share {share}");
        for e in trace.events() {
            match e.tier {
                Tier::Strict => assert_eq!(e.slo, Nanos::from_millis(100)),
                Tier::BestEffort => assert_eq!(e.slo, Nanos::from_millis(250)),
            }
        }
    }

    #[test]
    fn empty_inputs_produce_empty_traces() {
        let shape = ShapedWorkload::constant(100.0);
        let empty_models = shape.generate(
            &[],
            Nanos::from_millis(100),
            Nanos::from_secs(5),
            &SimRng::seeded(1),
        );
        assert!(empty_models.is_empty());
        let zero_rate = gen(&ShapedWorkload::constant(0.0), 5, 1);
        assert!(zero_rate.is_empty());
    }
}
