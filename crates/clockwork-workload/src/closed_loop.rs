//! Closed-loop clients.
//!
//! §6.1 and §6.4 use closed-loop clients: each client keeps a fixed number of
//! requests outstanding ("concurrency") and submits a new request the moment
//! a response comes back. Closed-loop load is self-throttling — the offered
//! rate adapts to the system's service rate — which is why the paper uses it
//! to measure peak goodput, and why the batch clients of §6.4 use it to keep
//! the system saturated.
//!
//! Unlike the open-loop generators, a closed-loop client cannot pre-generate
//! a trace: its next arrival depends on the previous response. It is
//! therefore driven interactively by the system harness through
//! [`ClosedLoopClient::on_response`].

use clockwork_model::ModelId;
use clockwork_sim::time::{Nanos, Timestamp};

/// A closed-loop client maintaining a fixed number of outstanding requests.
#[derive(Clone, Debug)]
pub struct ClosedLoopClient {
    /// The model this client targets.
    pub model: ModelId,
    /// How many requests the client keeps in flight.
    pub concurrency: u32,
    /// The SLO attached to each request ([`Nanos::MAX`] for batch clients
    /// without an SLO).
    pub slo: Nanos,
    /// Think time between receiving a response and submitting the next
    /// request (zero in the paper's experiments).
    pub think_time: Nanos,
    in_flight: u32,
    submitted: u64,
    completed: u64,
}

impl ClosedLoopClient {
    /// Creates a client.
    pub fn new(model: ModelId, concurrency: u32, slo: Nanos) -> Self {
        ClosedLoopClient {
            model,
            concurrency,
            slo,
            think_time: Nanos::ZERO,
            in_flight: 0,
            submitted: 0,
            completed: 0,
        }
    }

    /// Sets a non-zero think time.
    pub fn with_think_time(mut self, think_time: Nanos) -> Self {
        self.think_time = think_time;
        self
    }

    /// The initial submissions the client makes at experiment start: one per
    /// unit of concurrency, all at `start`.
    pub fn initial_submissions(&mut self, start: Timestamp) -> Vec<(Timestamp, ModelId, Nanos)> {
        let mut subs = Vec::new();
        while self.in_flight < self.concurrency {
            self.in_flight += 1;
            self.submitted += 1;
            subs.push((start, self.model, self.slo));
        }
        subs
    }

    /// Notifies the client that one of its requests finished at `now`;
    /// returns the submission that replaces it, if the client is still
    /// below its concurrency target.
    pub fn on_response(&mut self, now: Timestamp) -> Option<(Timestamp, ModelId, Nanos)> {
        self.completed += 1;
        if self.in_flight == 0 {
            // A stray response (e.g. duplicated delivery) — ignore.
            return None;
        }
        // The finished request leaves the window and is immediately replaced.
        self.submitted += 1;
        Some((now + self.think_time, self.model, self.slo))
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Responses received so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_submissions_match_concurrency() {
        let mut c = ClosedLoopClient::new(ModelId(1), 16, Nanos::from_millis(100));
        let subs = c.initial_submissions(Timestamp::ZERO);
        assert_eq!(subs.len(), 16);
        assert_eq!(c.in_flight(), 16);
        assert_eq!(c.submitted(), 16);
        // Calling again submits nothing more.
        assert!(c.initial_submissions(Timestamp::ZERO).is_empty());
    }

    #[test]
    fn every_response_triggers_a_replacement() {
        let mut c = ClosedLoopClient::new(ModelId(2), 4, Nanos::from_millis(50));
        c.initial_submissions(Timestamp::ZERO);
        for i in 0..10u64 {
            let next = c.on_response(Timestamp::from_millis(10 * (i + 1)));
            let (at, model, slo) = next.expect("closed loop always resubmits");
            assert_eq!(model, ModelId(2));
            assert_eq!(slo, Nanos::from_millis(50));
            assert_eq!(at, Timestamp::from_millis(10 * (i + 1)));
        }
        assert_eq!(c.submitted(), 14);
        assert_eq!(c.completed(), 10);
        assert_eq!(c.in_flight(), 4, "window size is maintained");
    }

    #[test]
    fn think_time_delays_resubmission() {
        let mut c =
            ClosedLoopClient::new(ModelId(1), 1, Nanos::MAX).with_think_time(Nanos::from_millis(5));
        c.initial_submissions(Timestamp::ZERO);
        let (at, _, slo) = c.on_response(Timestamp::from_millis(10)).unwrap();
        assert_eq!(at, Timestamp::from_millis(15));
        assert_eq!(slo, Nanos::MAX);
    }

    #[test]
    fn stray_responses_are_ignored() {
        let mut c = ClosedLoopClient::new(ModelId(1), 0, Nanos::MAX);
        assert!(c.initial_submissions(Timestamp::ZERO).is_empty());
        assert!(c.on_response(Timestamp::from_millis(1)).is_none());
    }
}
