//! Open-loop (Poisson) clients.
//!
//! §6.3 drives each model instance with an independent open-loop client using
//! Poisson inter-arrival times: requests arrive at a fixed average rate
//! regardless of how the system is doing, which is what exposes SLO
//! violations under overload. [`OpenLoopClient`] pre-generates a [`Trace`]
//! so experiments remain deterministic for a given seed.

use clockwork_model::{ModelId, Tier};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};

use crate::trace::{Trace, TraceEvent};

/// An open-loop Poisson request generator for one model instance.
#[derive(Clone, Debug)]
pub struct OpenLoopClient {
    /// The model this client targets.
    pub model: ModelId,
    /// Average request rate in requests per second.
    pub rate_per_sec: f64,
    /// The SLO attached to every request.
    pub slo: Nanos,
}

impl OpenLoopClient {
    /// Creates a client.
    pub fn new(model: ModelId, rate_per_sec: f64, slo: Nanos) -> Self {
        OpenLoopClient {
            model,
            rate_per_sec,
            slo,
        }
    }

    /// Generates this client's arrivals over `[0, duration)`.
    pub fn generate(&self, duration: Nanos, rng: &mut SimRng) -> Trace {
        let mut events = Vec::new();
        if self.rate_per_sec <= 0.0 {
            return Trace::new(events);
        }
        let mut t = Timestamp::ZERO + rng.poisson_gap(self.rate_per_sec);
        let end = Timestamp::ZERO + duration;
        while t < end {
            events.push(TraceEvent {
                at: t,
                model: self.model,
                slo: self.slo,
                tier: Tier::Strict,
            });
            t += rng.poisson_gap(self.rate_per_sec);
        }
        Trace::new(events)
    }

    /// Generates a combined trace for many clients, one per model, each with
    /// the given per-client rate.
    pub fn generate_many(
        models: &[ModelId],
        rate_per_client: f64,
        slo: Nanos,
        duration: Nanos,
        rng: &mut SimRng,
    ) -> Trace {
        let mut all = Vec::new();
        for (i, &model) in models.iter().enumerate() {
            let mut client_rng = rng.derive(i as u64 + 1);
            let client = OpenLoopClient::new(model, rate_per_client, slo);
            all.extend(client.generate(duration, &mut client_rng).events().to_vec());
        }
        Trace::new(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_on_average() {
        let client = OpenLoopClient::new(ModelId(1), 200.0, Nanos::from_millis(100));
        let mut rng = SimRng::seeded(1);
        let trace = client.generate(Nanos::from_secs(30), &mut rng);
        let rate = trace.len() as f64 / 30.0;
        assert!((rate - 200.0).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let client = OpenLoopClient::new(ModelId(1), 0.0, Nanos::from_millis(100));
        let mut rng = SimRng::seeded(2);
        assert!(client.generate(Nanos::from_secs(10), &mut rng).is_empty());
    }

    #[test]
    fn arrivals_look_poisson() {
        // Coefficient of variation of exponential inter-arrival gaps is 1.
        let client = OpenLoopClient::new(ModelId(1), 1000.0, Nanos::from_millis(10));
        let mut rng = SimRng::seeded(3);
        let trace = client.generate(Nanos::from_secs(20), &mut rng);
        let gaps: Vec<f64> = trace
            .events()
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn generate_many_is_deterministic_and_covers_all_models() {
        let models: Vec<ModelId> = (0..12).map(ModelId).collect();
        let mut rng_a = SimRng::seeded(7);
        let mut rng_b = SimRng::seeded(7);
        let a = OpenLoopClient::generate_many(
            &models,
            50.0,
            Nanos::from_millis(100),
            Nanos::from_secs(10),
            &mut rng_a,
        );
        let b = OpenLoopClient::generate_many(
            &models,
            50.0,
            Nanos::from_millis(100),
            Nanos::from_secs(10),
            &mut rng_b,
        );
        assert_eq!(a, b);
        assert_eq!(a.models().len(), 12);
        // Cumulative rate N * R.
        let rate = a.len() as f64 / 10.0;
        assert!((rate - 600.0).abs() < 60.0, "rate {rate}");
    }
}
