//! Workload generation for the Clockwork-RS evaluation.
//!
//! The paper evaluates with three workload shapes:
//!
//! * **Closed-loop clients** (§6.1, §6.4): each client keeps a fixed number
//!   of requests in flight and submits the next one as soon as a response
//!   arrives — see [`closed_loop`].
//! * **Open-loop clients** (§6.3): Poisson arrivals at a fixed rate,
//!   independent of response times — see [`open_loop`].
//! * **The Microsoft Azure Functions trace** (§6.5): ~17 000 serverless
//!   function workloads with per-minute invocation counts over two weeks,
//!   mixing heavy sustained load, bursty and periodic spikes, and a long tail
//!   of cold functions. The trace itself is not redistributable, so
//!   [`azure`] provides a synthetic generator that reproduces those workload
//!   classes — see DESIGN.md for the substitution rationale — plus a trace
//!   container ([`trace`]) that can also parse externally supplied traces.
//!
//! Beyond the paper's experiments, [`shapes`] provides the scenario-zoo
//! generator: diurnal and flash-crowd rate profiles, Zipf model popularity
//! with drift, and multi-tenant SLO tiers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod azure;
pub mod closed_loop;
pub mod open_loop;
pub mod shapes;
pub mod trace;

pub use azure::{AzureTraceConfig, AzureTraceGenerator, FunctionClass};
pub use closed_loop::ClosedLoopClient;
pub use open_loop::OpenLoopClient;
pub use shapes::{PopularityModel, RateProfile, ShapedWorkload, TierMix};
pub use trace::{Trace, TraceEvent};
