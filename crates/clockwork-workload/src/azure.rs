//! A synthetic Microsoft-Azure-Functions-like workload (§6.5).
//!
//! The paper replays the MAF 2019 trace: ~17 000 function workloads with
//! per-minute invocation counts over two weeks, interleaving "heavy sustained
//! workloads, low utilization cold workloads, bursty workloads that fluctuate
//! over time, and workloads with periodic spikes" (hourly and 15-minute
//! periods). The raw trace is not redistributable, so this module generates a
//! workload with the same structure: each function is assigned a class with
//! its own rate process, per-minute invocation counts are drawn from that
//! process, and individual arrivals are spread uniformly within each minute.
//! Functions are mapped onto model instances round-robin, several functions
//! per model, exactly as the paper maps 4–5 function workloads onto each of
//! its 4 026 model instances.

use serde::{Deserialize, Serialize};

use clockwork_model::{ModelId, Tier};
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};

use crate::trace::{Trace, TraceEvent};

/// The workload classes observed in the MAF trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionClass {
    /// Steady, heavy load (a small fraction of functions carry most traffic).
    HeavySustained,
    /// Moderate steady load.
    Sustained,
    /// Rarely invoked; nearly always a cold start.
    Cold,
    /// Rate fluctuates over tens of minutes.
    Bursty,
    /// Quiet baseline with a large spike every hour.
    PeriodicHourly,
    /// Quiet baseline with a spike every 15 minutes.
    PeriodicQuarterHourly,
}

impl FunctionClass {
    /// All classes, in the mixture proportions used by the generator.
    pub fn mixture() -> &'static [(FunctionClass, f64)] {
        &[
            (FunctionClass::HeavySustained, 0.02),
            (FunctionClass::Sustained, 0.18),
            (FunctionClass::Cold, 0.45),
            (FunctionClass::Bursty, 0.20),
            (FunctionClass::PeriodicHourly, 0.10),
            (FunctionClass::PeriodicQuarterHourly, 0.05),
        ]
    }
}

/// Configuration of the synthetic MAF-like generator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Number of function workloads.
    pub functions: usize,
    /// Number of model instances the functions are mapped onto.
    pub models: usize,
    /// Trace duration.
    pub duration: Nanos,
    /// Target aggregate request rate (requests per second, averaged).
    pub target_rate: f64,
    /// The SLO attached to every request.
    pub slo: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        AzureTraceConfig {
            functions: 400,
            models: 100,
            duration: Nanos::from_minutes(10),
            target_rate: 1000.0,
            slo: Nanos::from_millis(100),
            seed: 0xa2b3,
        }
    }
}

/// One generated function workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionWorkload {
    /// Index of the function.
    pub index: usize,
    /// The class it belongs to.
    pub class: FunctionClass,
    /// The model instance its invocations are served by.
    pub model: ModelId,
    /// Relative weight of this function within the aggregate rate.
    pub weight: f64,
}

/// The synthetic MAF-like trace generator.
#[derive(Clone, Debug)]
pub struct AzureTraceGenerator {
    config: AzureTraceConfig,
    functions: Vec<FunctionWorkload>,
}

impl AzureTraceGenerator {
    /// Creates a generator, assigning every function a class and a model.
    pub fn new(config: AzureTraceConfig) -> Self {
        let mut rng = SimRng::seeded(config.seed);
        let mixture = FunctionClass::mixture();
        let mut functions = Vec::with_capacity(config.functions);
        for index in 0..config.functions {
            let mut pick = rng.uniform();
            let mut class = FunctionClass::Cold;
            for &(c, share) in mixture {
                if pick < share {
                    class = c;
                    break;
                }
                pick -= share;
            }
            // Heavy-tailed per-function weights: heavy-sustained functions
            // carry orders of magnitude more traffic than cold ones.
            let weight = match class {
                FunctionClass::HeavySustained => 200.0 + rng.uniform() * 800.0,
                FunctionClass::Sustained => 20.0 + rng.uniform() * 60.0,
                FunctionClass::Cold => 0.02 + rng.uniform() * 0.2,
                FunctionClass::Bursty => 5.0 + rng.uniform() * 30.0,
                FunctionClass::PeriodicHourly => 2.0 + rng.uniform() * 10.0,
                FunctionClass::PeriodicQuarterHourly => 2.0 + rng.uniform() * 10.0,
            };
            let model = ModelId((index % config.models.max(1)) as u32);
            functions.push(FunctionWorkload {
                index,
                class,
                model,
                weight,
            });
        }
        AzureTraceGenerator { config, functions }
    }

    /// The generated function workloads.
    pub fn functions(&self) -> &[FunctionWorkload] {
        &self.functions
    }

    /// The configuration.
    pub fn config(&self) -> &AzureTraceConfig {
        &self.config
    }

    /// The per-minute rate multiplier of a class at a given minute.
    fn class_multiplier(class: FunctionClass, minute: u64, rng: &mut SimRng) -> f64 {
        match class {
            FunctionClass::HeavySustained | FunctionClass::Sustained => 1.0,
            FunctionClass::Cold => 1.0,
            FunctionClass::Bursty => {
                // Slow sinusoidal drift plus multiplicative noise.
                let phase = minute as f64 / 23.0;
                (1.0 + 0.8 * (phase * std::f64::consts::TAU).sin()).max(0.05)
                    * rng.lognormal_factor(0.5)
            }
            FunctionClass::PeriodicHourly => {
                if minute.is_multiple_of(60) {
                    30.0
                } else {
                    0.15
                }
            }
            FunctionClass::PeriodicQuarterHourly => {
                if minute.is_multiple_of(15) {
                    12.0
                } else {
                    0.2
                }
            }
        }
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let rng = SimRng::seeded(self.config.seed ^ 0x5117);
        let total_weight: f64 = self.functions.iter().map(|f| f.weight).sum();
        let minutes = (self.config.duration.as_secs_f64() / 60.0).ceil() as u64;
        let per_minute_budget = self.config.target_rate * 60.0;
        let mut events = Vec::new();
        for (fi, f) in self.functions.iter().enumerate() {
            let mut frng = rng.derive(fi as u64);
            let base_per_minute = per_minute_budget * f.weight / total_weight;
            for minute in 0..minutes {
                let mult = Self::class_multiplier(f.class, minute, &mut frng);
                let mean = base_per_minute * mult;
                let count = frng.poisson_count(mean);
                for _ in 0..count {
                    let offset = Nanos::from_secs_f64(frng.uniform() * 60.0);
                    let at = Timestamp::from_secs(minute * 60) + offset;
                    if at < Timestamp::ZERO + self.config.duration {
                        events.push(TraceEvent {
                            at,
                            model: f.model,
                            slo: self.config.slo,
                            tier: Tier::Strict,
                        });
                    }
                }
            }
        }
        Trace::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AzureTraceConfig {
        AzureTraceConfig {
            functions: 200,
            models: 50,
            duration: Nanos::from_minutes(5),
            target_rate: 500.0,
            slo: Nanos::from_millis(100),
            seed: 42,
        }
    }

    #[test]
    fn mixture_sums_to_one() {
        let total: f64 = FunctionClass::mixture().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn functions_are_assigned_classes_and_models() {
        let gen = AzureTraceGenerator::new(small_config());
        assert_eq!(gen.functions().len(), 200);
        let classes: std::collections::HashSet<_> =
            gen.functions().iter().map(|f| f.class).collect();
        assert!(
            classes.len() >= 4,
            "expected a diverse mixture: {classes:?}"
        );
        assert!(gen.functions().iter().all(|f| (f.model.0 as usize) < 50));
    }

    #[test]
    fn aggregate_rate_is_near_target() {
        let gen = AzureTraceGenerator::new(small_config());
        let trace = gen.generate();
        let rate = trace.len() as f64 / gen.config().duration.as_secs_f64();
        // Periodic spikes near the start of a short trace inflate the mean;
        // only the order of magnitude is pinned down.
        assert!(
            rate > 150.0 && rate < 1_000.0,
            "rate {rate} too far from target 500"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AzureTraceGenerator::new(small_config()).generate();
        let b = AzureTraceGenerator::new(small_config()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn workload_is_skewed_across_models() {
        // A few models should carry much more traffic than the median model,
        // mirroring the skew of the MAF trace.
        let gen = AzureTraceGenerator::new(small_config());
        let trace = gen.generate();
        let mut per_model = std::collections::HashMap::new();
        for e in trace.events() {
            *per_model.entry(e.model).or_insert(0u64) += 1;
        }
        let mut counts: Vec<u64> = per_model.values().copied().collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(max > median * 4, "max {max} median {median}");
    }

    #[test]
    fn periodic_classes_spike_on_schedule() {
        let config = AzureTraceConfig {
            functions: 50,
            models: 10,
            duration: Nanos::from_minutes(120),
            target_rate: 200.0,
            ..small_config()
        };
        let gen = AzureTraceGenerator::new(config);
        let trace = gen.generate();
        // Count arrivals per minute; minute 60 should be noticeably above the
        // surrounding minutes because hourly-periodic functions spike there.
        let mut per_minute = vec![0u64; 121];
        for e in trace.events() {
            let m = (e.at.as_secs_f64() / 60.0) as usize;
            if m < per_minute.len() {
                per_minute[m] += 1;
            }
        }
        let spike = per_minute[60] as f64;
        let neighbours =
            (per_minute[58] + per_minute[59] + per_minute[61] + per_minute[62]) as f64 / 4.0;
        assert!(
            spike > neighbours * 1.2,
            "expected hourly spike: minute 60 = {spike}, neighbours = {neighbours}"
        );
    }

    #[test]
    fn cold_functions_generate_few_requests() {
        let gen = AzureTraceGenerator::new(small_config());
        let trace = gen.generate();
        let cold_models: std::collections::HashSet<ModelId> = gen
            .functions()
            .iter()
            .filter(|f| f.class == FunctionClass::Cold)
            .map(|f| f.model)
            .collect();
        // Requests belonging to cold-only models should be a small share.
        let cold_only: Vec<ModelId> = cold_models
            .iter()
            .copied()
            .filter(|m| {
                gen.functions()
                    .iter()
                    .filter(|f| f.model == *m)
                    .all(|f| f.class == FunctionClass::Cold)
            })
            .collect();
        if cold_only.is_empty() {
            return; // mixture did not produce a cold-only model this seed
        }
        let cold_requests = trace
            .events()
            .iter()
            .filter(|e| cold_only.contains(&e.model))
            .count();
        let share = cold_requests as f64 / trace.len() as f64;
        assert!(share < 0.2, "cold share {share}");
    }
}
