//! Request traces: a time-ordered list of request arrivals.
//!
//! Traces decouple workload generation from the serving system: generators
//! (open-loop, Azure-like) produce a [`Trace`], and the system harness replays
//! it against whichever scheduler is under test. Traces can be scaled in rate
//! and truncated in duration, which is how the paper's 8-hour / 1.5×-rate
//! experiments are shrunk to simulation budgets (recorded in EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use clockwork_model::{ModelId, Tier};
use clockwork_sim::time::{Nanos, Timestamp};

/// One request arrival in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time relative to trace start.
    pub at: Timestamp,
    /// The model instance the request targets.
    pub model: ModelId,
    /// The latency SLO for this request ([`Nanos::MAX`] = no SLO).
    pub slo: Nanos,
    /// The service tier of the issuing client ([`Tier::Strict`] unless the
    /// workload models multi-tenant classes).
    pub tier: Tier,
}

/// A time-ordered sequence of request arrivals.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a trace from events, sorting them by arrival time.
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.model));
        Trace { events }
    }

    /// The events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The arrival time of the last request, or zero for an empty trace.
    pub fn duration(&self) -> Timestamp {
        self.events.last().map(|e| e.at).unwrap_or(Timestamp::ZERO)
    }

    /// Mean request rate over the trace duration, in requests per second.
    pub fn mean_rate(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d <= 0.0 {
            return 0.0;
        }
        self.events.len() as f64 / d
    }

    /// The distinct models appearing in the trace.
    pub fn models(&self) -> Vec<ModelId> {
        let mut models: Vec<ModelId> = self.events.iter().map(|e| e.model).collect();
        models.sort_unstable();
        models.dedup();
        models
    }

    /// Returns a copy truncated to arrivals before `cutoff`.
    pub fn truncated(&self, cutoff: Timestamp) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.at < cutoff)
                .collect(),
        }
    }

    /// Returns a copy with all arrival times compressed by `factor` (2.0
    /// doubles the request rate). Factors below or equal to zero are ignored.
    pub fn rate_scaled(&self, factor: f64) -> Trace {
        if factor <= 0.0 {
            return self.clone();
        }
        Trace {
            events: self
                .events
                .iter()
                .map(|e| TraceEvent {
                    at: Timestamp::from_nanos((e.at.as_nanos() as f64 / factor).round() as u64),
                    ..*e
                })
                .collect(),
        }
    }

    /// Merges two traces into one ordered trace.
    pub fn merged(&self, other: &Trace) -> Trace {
        let mut events = self.events.clone();
        events.extend(other.events.iter().copied());
        Trace::new(events)
    }

    /// Splits the trace into `shards` traces by a model-owner function,
    /// preserving arrival order within each shard (shard-stable: an event's
    /// destination depends only on its model, never on its position, so
    /// re-merging the partitions reproduces the original trace exactly).
    ///
    /// Owners returned outside `0..shards` panic — routing must be total.
    pub fn partitioned(
        &self,
        shards: usize,
        mut owner: impl FnMut(ModelId) -> usize,
    ) -> Vec<Trace> {
        let mut parts: Vec<Vec<TraceEvent>> = vec![Vec::new(); shards];
        for e in &self.events {
            let shard = owner(e.model);
            assert!(
                shard < shards,
                "trace partition routed {:?} to shard {shard} of {shards}",
                e.model
            );
            parts[shard].push(*e);
        }
        // Each partition is a subsequence of an ordered trace, so it is
        // already sorted; construct directly rather than re-sorting.
        parts.into_iter().map(|events| Trace { events }).collect()
    }

    /// Returns a copy with every event's model id remapped. With a monotone
    /// map (as when compacting a shard's owned models to dense local ids)
    /// the `(at, model)` event order is preserved byte for byte; a
    /// non-monotone map still yields a valid trace via re-sorting.
    pub fn with_models_mapped(&self, mut map: impl FnMut(ModelId) -> ModelId) -> Trace {
        Trace::new(
            self.events
                .iter()
                .map(|e| TraceEvent {
                    model: map(e.model),
                    ..*e
                })
                .collect(),
        )
    }

    /// Serialises the trace to a simple CSV (`at_ns,model,slo_ns,tier`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("at_ns,model,slo_ns,tier\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.at.as_nanos(),
                e.model.0,
                e.slo.as_nanos(),
                e.tier.index()
            ));
        }
        out
    }

    /// Parses a trace from the CSV format produced by [`Trace::to_csv`].
    ///
    /// The `tier` column is optional: three-field lines (the pre-tier
    /// format) parse as [`Tier::Strict`].
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 3 && fields.len() != 4 {
                return Err(format!(
                    "line {}: expected 3 or 4 fields, got {}",
                    i + 1,
                    fields.len()
                ));
            }
            let at: u64 = fields[0]
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad timestamp: {e}", i + 1))?;
            let model: u32 = fields[1]
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad model id: {e}", i + 1))?;
            let slo: u64 = fields[2]
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad slo: {e}", i + 1))?;
            let tier = match fields.get(3) {
                Some(raw) => Tier::from_index(
                    raw.trim()
                        .parse()
                        .map_err(|e| format!("line {}: bad tier: {e}", i + 1))?,
                ),
                None => Tier::Strict,
            };
            events.push(TraceEvent {
                at: Timestamp::from_nanos(at),
                model: ModelId(model),
                slo: Nanos::from_nanos(slo),
                tier,
            });
        }
        Ok(Trace::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ms: u64, model: u32) -> TraceEvent {
        TraceEvent {
            at: Timestamp::from_millis(ms),
            model: ModelId(model),
            slo: Nanos::from_millis(100),
            tier: Tier::Strict,
        }
    }

    #[test]
    fn events_are_sorted_by_time() {
        let t = Trace::new(vec![event(30, 1), event(10, 2), event(20, 1)]);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration(), Timestamp::from_millis(30));
        assert_eq!(t.models(), vec![ModelId(1), ModelId(2)]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.mean_rate(), 0.0);
        assert_eq!(t.duration(), Timestamp::ZERO);
    }

    #[test]
    fn mean_rate() {
        let events: Vec<TraceEvent> = (1..=100).map(|i| event(i * 10, 1)).collect();
        let t = Trace::new(events);
        // 100 events over 1 second.
        assert!((t.mean_rate() - 100.0).abs() < 1.0);
    }

    #[test]
    fn partitioning_is_shard_stable_and_lossless() {
        let t = Trace::new((0..60).map(|i| event(i * 10, (i % 5) as u32)).collect());
        let parts = t.partitioned(2, |m| (m.0 % 2) as usize);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len() + parts[1].len(), t.len());
        for (shard, part) in parts.iter().enumerate() {
            assert!(part
                .events()
                .iter()
                .all(|e| (e.model.0 % 2) as usize == shard));
            let times: Vec<u64> = part.events().iter().map(|e| e.at.as_nanos()).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "order preserved");
        }
        // Re-merging the partitions reproduces the original trace exactly.
        assert_eq!(parts[0].merged(&parts[1]), t);
        // Partitioning is per-model, so it commutes with popularity skew:
        // routing everything to one shard leaves the other empty.
        let all_one = t.partitioned(3, |_| 1);
        assert!(all_one[0].is_empty() && all_one[2].is_empty());
        assert_eq!(all_one[1], t);
    }

    #[test]
    #[should_panic(expected = "routed")]
    fn partitioning_rejects_non_total_routing() {
        let t = Trace::new(vec![event(1, 0)]);
        let _ = t.partitioned(2, |_| 7);
    }

    #[test]
    fn model_remapping_preserves_order_for_monotone_maps() {
        let t = Trace::new((0..20).map(|i| event(100, (i % 4) as u32 * 2)).collect());
        // Compact global ids {0,2,4,6} to dense local ids {0,1,2,3}.
        let local = t.with_models_mapped(|m| ModelId(m.0 / 2));
        assert_eq!(local.len(), t.len());
        for (a, b) in t.events().iter().zip(local.events()) {
            assert_eq!(b.model.0, a.model.0 / 2, "same event, remapped id");
            assert_eq!(b.at, a.at);
            assert_eq!(b.slo, a.slo);
        }
    }

    #[test]
    fn truncation_and_scaling() {
        let t = Trace::new((0..100).map(|i| event(i * 10, 1)).collect());
        let first_half = t.truncated(Timestamp::from_millis(500));
        assert_eq!(first_half.len(), 50);
        let double = t.rate_scaled(2.0);
        assert_eq!(double.duration(), Timestamp::from_millis(495));
        assert_eq!(t.rate_scaled(0.0), t, "invalid factors are ignored");
    }

    #[test]
    fn merging_interleaves() {
        let a = Trace::new(vec![event(10, 1), event(30, 1)]);
        let b = Trace::new(vec![event(20, 2)]);
        let m = a.merged(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.events()[1].model, ModelId(2));
    }

    #[test]
    fn csv_round_trip() {
        let mut tiered = event(20, 2);
        tiered.tier = Tier::BestEffort;
        let t = Trace::new(vec![event(10, 1), tiered]);
        let csv = t.to_csv();
        let parsed = Trace::from_csv(&csv).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn csv_without_tier_column_reads_strict() {
        let parsed = Trace::from_csv("at_ns,model,slo_ns\n1000,2,3000\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.events()[0].tier, Tier::Strict);
    }

    #[test]
    fn csv_parse_errors_are_reported() {
        assert!(Trace::from_csv("at_ns,model,slo_ns\n1,2\n").is_err());
        assert!(Trace::from_csv("at_ns,model,slo_ns\nx,2,3\n").is_err());
        assert!(Trace::from_csv("at_ns,model,slo_ns,tier\n1,2,3,x\n").is_err());
        let empty = Trace::from_csv("at_ns,model,slo_ns\n").unwrap();
        assert!(empty.is_empty());
    }
}
