//! Minimal CSV output for experiment results.
//!
//! The benchmark binaries print the rows and series that the paper's tables
//! and figures report. To keep the dependency footprint at the sanctioned
//! set, this module implements the very small subset of CSV we need: quoting
//! of fields containing separators, a header row, and writing to any
//! `io::Write` sink (stdout or a results file).

use std::io::{self, Write};

/// A CSV table writer.
pub struct CsvWriter<W: Write> {
    sink: W,
    columns: usize,
    rows_written: usize,
}

impl<W: Write> CsvWriter<W> {
    /// Creates a writer and emits the header row.
    pub fn new(mut sink: W, header: &[&str]) -> io::Result<Self> {
        write_row(&mut sink, header.iter().map(|s| s.to_string()))?;
        Ok(CsvWriter {
            sink,
            columns: header.len(),
            rows_written: 0,
        })
    }

    /// Writes one data row.
    ///
    /// Returns an error if the number of fields does not match the header.
    pub fn row<I, S>(&mut self, fields: I) -> io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        let fields: Vec<String> = fields.into_iter().map(|f| f.to_string()).collect();
        if fields.len() != self.columns {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "row has {} fields but header has {}",
                    fields.len(),
                    self.columns
                ),
            ));
        }
        write_row(&mut self.sink, fields.into_iter())?;
        self.rows_written += 1;
        Ok(())
    }

    /// Number of data rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn write_row<W: Write>(sink: &mut W, fields: impl Iterator<Item = String>) -> io::Result<()> {
    let mut first = true;
    for field in fields {
        if !first {
            write!(sink, ",")?;
        }
        first = false;
        write!(sink, "{}", escape(&field))?;
    }
    writeln!(sink)
}

/// Escapes a field per RFC 4180: quote if it contains a comma, quote, or
/// newline; double any embedded quotes.
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Formats a float with a fixed number of decimal places, the style used by
/// the result tables.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut out = Vec::new();
        {
            let mut w = CsvWriter::new(&mut out, &["a", "b"]).unwrap();
            w.row(["1", "2"]).unwrap();
            w.row([3.5.to_string(), "x".to_string()]).unwrap();
            assert_eq!(w.rows_written(), 2);
            w.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "a,b\n1,2\n3.5,x\n");
    }

    #[test]
    fn rejects_mismatched_rows() {
        let mut out = Vec::new();
        let mut w = CsvWriter::new(&mut out, &["a", "b"]).unwrap();
        assert!(w.row(["only one"]).is_err());
    }

    #[test]
    fn escaping_follows_rfc4180() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("has,comma"), "\"has,comma\"");
        assert_eq!(escape("has\"quote"), "\"has\"\"quote\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.2345, 2), "1.23");
        assert_eq!(fmt_f64(0.5, 0), "0");
    }
}
