//! Exact percentiles over in-memory sample sets.
//!
//! The rolling action-duration profiles of the controller (last 10
//! measurements, §5.3) and the prediction-error analysis (Fig. 9) work over
//! small sample sets where exact order statistics are cheap and the bucketing
//! error of [`crate::LatencyHistogram`] would be unnecessary.

use clockwork_sim::time::Nanos;

/// Returns the exact `p`-th percentile (0..=100) of the samples using the
/// nearest-rank method, or `None` if the slice is empty.
pub fn percentile_nanos(samples: &[Nanos], p: f64) -> Option<Nanos> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<Nanos> = samples.to_vec();
    sorted.sort_unstable();
    Some(percentile_of_sorted(&sorted, p))
}

/// Returns the exact percentile of an already-sorted slice (nearest-rank).
///
/// # Panics
/// Panics if the slice is empty.
pub fn percentile_of_sorted(sorted: &[Nanos], p: f64) -> Nanos {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if p <= 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Returns the exact percentile of f64 samples (nearest-rank), or `None` if
/// the slice is empty.
pub fn percentile_f64(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    if p <= 0.0 {
        return Some(sorted[0]);
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// A bounded window of the most recent samples, used for the controller's
/// rolling action profiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlidingWindow {
    capacity: usize,
    samples: std::collections::VecDeque<Nanos>,
}

impl SlidingWindow {
    /// Creates a window keeping at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow {
            capacity,
            samples: std::collections::VecDeque::with_capacity(capacity),
        }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, sample: Nanos) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The exact percentile of the samples in the window, or `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<Nanos> {
        let v: Vec<Nanos> = self.samples.iter().copied().collect();
        percentile_nanos(&v, p)
    }

    /// The maximum sample in the window, or `None` if empty.
    pub fn max(&self) -> Option<Nanos> {
        self.samples.iter().copied().max()
    }

    /// The most recent sample, or `None` if empty.
    pub fn latest(&self) -> Option<Nanos> {
        self.samples.back().copied()
    }

    /// The mean of the samples in the window, or `None` if empty.
    pub fn mean(&self) -> Option<Nanos> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|n| n.as_nanos() as u128).sum();
        Some(Nanos::from_nanos((sum / self.samples.len() as u128) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<Nanos> = (1..=100u64).map(Nanos::from_millis).collect();
        assert_eq!(percentile_nanos(&samples, 0.0), Some(Nanos::from_millis(1)));
        assert_eq!(
            percentile_nanos(&samples, 50.0),
            Some(Nanos::from_millis(50))
        );
        assert_eq!(
            percentile_nanos(&samples, 99.0),
            Some(Nanos::from_millis(99))
        );
        assert_eq!(
            percentile_nanos(&samples, 100.0),
            Some(Nanos::from_millis(100))
        );
        assert_eq!(percentile_nanos(&[], 50.0), None);
    }

    #[test]
    fn percentile_single_element() {
        let samples = [Nanos::from_micros(7)];
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(percentile_nanos(&samples, p), Some(Nanos::from_micros(7)));
        }
    }

    #[test]
    fn percentile_f64_works() {
        let samples = [3.0, 1.0, 2.0];
        assert_eq!(percentile_f64(&samples, 0.0), Some(1.0));
        assert_eq!(percentile_f64(&samples, 50.0), Some(2.0));
        assert_eq!(percentile_f64(&samples, 100.0), Some(3.0));
        assert_eq!(percentile_f64(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_sorted_empty_panics() {
        let _ = percentile_of_sorted(&[], 50.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for ms in 1..=5u64 {
            w.push(Nanos::from_millis(ms));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.max(), Some(Nanos::from_millis(5)));
        assert_eq!(w.latest(), Some(Nanos::from_millis(5)));
        // Window holds {3, 4, 5}.
        assert_eq!(w.percentile(0.0), Some(Nanos::from_millis(3)));
        assert_eq!(w.mean(), Some(Nanos::from_millis(4)));
    }

    #[test]
    fn sliding_window_percentile_matches_paper_usage() {
        // The controller uses a rolling window of the last 10 measurements
        // and predicts with a high percentile (p99 ≈ max for 10 samples).
        let mut w = SlidingWindow::new(10);
        for us in [100u64, 101, 99, 100, 102, 100, 100, 98, 101, 100] {
            w.push(Nanos::from_micros(us));
        }
        assert_eq!(w.percentile(99.0), Some(Nanos::from_micros(102)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_panics() {
        let _ = SlidingWindow::new(0);
    }
}
