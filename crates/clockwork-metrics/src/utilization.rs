//! Busy-interval utilization tracking.
//!
//! Fig. 6 (d) and (e) plot PCIe and GPU utilization over time and show that
//! Clockwork's goodput tracks whichever resource is the current bottleneck.
//! [`UtilizationTracker`] accumulates busy intervals into fixed-width time
//! buckets so utilization can be reported per interval, even when a single
//! busy interval spans several buckets.

use serde::{Deserialize, Serialize};

use clockwork_sim::time::{Nanos, Timestamp};

/// Tracks the fraction of each time bucket during which a resource was busy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTracker {
    interval: Nanos,
    busy: Vec<Nanos>,
    total_busy: Nanos,
}

impl UtilizationTracker {
    /// Creates a tracker with the given bucket width.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: Nanos) -> Self {
        assert!(!interval.is_zero(), "utilization interval must be non-zero");
        UtilizationTracker {
            interval,
            busy: Vec::new(),
            total_busy: Nanos::ZERO,
        }
    }

    /// Creates a per-second tracker.
    pub fn per_second() -> Self {
        UtilizationTracker::new(Nanos::from_secs(1))
    }

    /// The bucket width.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Records that the resource was busy during `[start, end)`.
    ///
    /// Intervals may span bucket boundaries; empty or inverted intervals are
    /// ignored.
    pub fn record_busy(&mut self, start: Timestamp, end: Timestamp) {
        if end <= start {
            return;
        }
        self.total_busy += end - start;
        let width = self.interval.as_nanos();
        let mut cursor = start.as_nanos();
        let end_ns = end.as_nanos();
        while cursor < end_ns {
            let bucket = (cursor / width) as usize;
            let bucket_end = (bucket as u64 + 1) * width;
            let slice_end = bucket_end.min(end_ns);
            if bucket >= self.busy.len() {
                self.busy.resize(bucket + 1, Nanos::ZERO);
            }
            self.busy[bucket] += Nanos::from_nanos(slice_end - cursor);
            cursor = slice_end;
        }
    }

    /// Utilization (0..=1) in the given bucket.
    pub fn utilization_at(&self, index: usize) -> f64 {
        match self.busy.get(index) {
            Some(b) => (b.as_nanos() as f64 / self.interval.as_nanos() as f64).min(1.0),
            None => 0.0,
        }
    }

    /// Number of buckets touched so far.
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether no busy time has been recorded.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Total busy time across all buckets.
    pub fn total_busy(&self) -> Nanos {
        self.total_busy
    }

    /// Mean utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: Timestamp) -> f64 {
        if horizon == Timestamp::ZERO {
            return 0.0;
        }
        (self.total_busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Iterates `(bucket start time, utilization)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        (0..self.busy.len()).map(move |i| {
            (
                Timestamp::from_nanos(i as u64 * self.interval.as_nanos()),
                self.utilization_at(i),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = UtilizationTracker::new(Nanos::ZERO);
    }

    #[test]
    fn busy_within_one_bucket() {
        let mut u = UtilizationTracker::per_second();
        u.record_busy(Timestamp::from_millis(100), Timestamp::from_millis(600));
        assert_eq!(u.len(), 1);
        assert!((u.utilization_at(0) - 0.5).abs() < 1e-9);
        assert_eq!(u.utilization_at(5), 0.0);
    }

    #[test]
    fn busy_spanning_buckets_is_split() {
        let mut u = UtilizationTracker::per_second();
        u.record_busy(Timestamp::from_millis(500), Timestamp::from_millis(2_500));
        assert_eq!(u.len(), 3);
        assert!((u.utilization_at(0) - 0.5).abs() < 1e-9);
        assert!((u.utilization_at(1) - 1.0).abs() < 1e-9);
        assert!((u.utilization_at(2) - 0.5).abs() < 1e-9);
        assert_eq!(u.total_busy(), Nanos::from_millis(2_000));
    }

    #[test]
    fn inverted_or_empty_intervals_are_ignored() {
        let mut u = UtilizationTracker::per_second();
        u.record_busy(Timestamp::from_millis(100), Timestamp::from_millis(100));
        u.record_busy(Timestamp::from_millis(200), Timestamp::from_millis(100));
        assert!(u.is_empty());
        assert_eq!(u.total_busy(), Nanos::ZERO);
    }

    #[test]
    fn mean_utilization_over_horizon() {
        let mut u = UtilizationTracker::per_second();
        u.record_busy(Timestamp::ZERO, Timestamp::from_secs(2));
        assert!((u.mean_utilization(Timestamp::from_secs(4)) - 0.5).abs() < 1e-9);
        assert_eq!(u.mean_utilization(Timestamp::ZERO), 0.0);
    }

    #[test]
    fn rows_report_each_bucket() {
        let mut u = UtilizationTracker::per_second();
        u.record_busy(Timestamp::from_secs(1), Timestamp::from_secs(2));
        let rows: Vec<_> = u.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, 0.0);
        assert!((rows[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn many_small_intervals_accumulate() {
        let mut u = UtilizationTracker::per_second();
        for i in 0..100u64 {
            let start = Timestamp::from_millis(i * 10);
            u.record_busy(start, start + Nanos::from_millis(5));
        }
        // 100 * 5 ms of busy time in the first second.
        assert!((u.utilization_at(0) - 0.5).abs() < 1e-9);
    }
}
