//! Telemetry primitives for Clockwork-RS.
//!
//! Every figure in the paper's evaluation is built from the same handful of
//! statistics: latency percentiles and CDFs scaled to emphasise the tail
//! (Figs. 2a, 5, 9), goodput/throughput time series (Figs. 6, 8), resource
//! utilization over time (Fig. 6 d–e), and batch-size / cold-start counters
//! (Fig. 8 c–e). This crate provides those building blocks:
//!
//! * [`LatencyHistogram`] — a log-bucketed histogram with accurate tail
//!   percentiles and CDF export, cheap enough to record every request.
//! * [`Summary`] — streaming count/mean/min/max.
//! * [`TimeSeries`] — fixed-interval bucketed counters and gauges.
//! * [`UtilizationTracker`] — busy-interval accounting per time bucket.
//! * [`percentile`] — exact percentiles over small sample vectors.
//! * [`csv`] — a tiny CSV writer used by the benchmark harness so results can
//!   be plotted without extra dependencies.
//! * [`trace`] — structured request-lifecycle spans ([`TraceEvent`]) behind a
//!   zero-cost-when-off [`Tracer`] trait, with a bounded [`RingTracer`] and
//!   deterministic JSONL export for SLO-blame attribution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod histogram;
pub mod orderstat;
pub mod percentile;
pub mod summary;
pub mod timeseries;
pub mod trace;
pub mod utilization;

pub use histogram::LatencyHistogram;
pub use orderstat::OrderStatWindow;
pub use summary::Summary;
pub use timeseries::TimeSeries;
pub use trace::{NoopTracer, RingTracer, TraceEvent, TraceRecord, Tracer};
pub use utilization::UtilizationTracker;
