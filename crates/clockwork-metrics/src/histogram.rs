//! Log-bucketed latency histogram.
//!
//! The paper's latency plots (Figs. 2a, 5, 9) span five orders of magnitude
//! and are read at extreme percentiles (p99.999 and beyond), so the histogram
//! needs wide dynamic range, bounded relative error, and cheap recording.
//! [`LatencyHistogram`] uses base-2 log buckets with linear sub-buckets
//! (HDR-histogram style), giving a worst-case relative error of
//! `1 / sub_buckets` while using a few kilobytes of memory.

use serde::{Deserialize, Serialize};

use clockwork_sim::time::Nanos;

/// Number of linear sub-buckets per power-of-two bucket.
///
/// 64 sub-buckets bound the relative quantile error at ~1.6 %.
const SUB_BUCKETS: usize = 64;
/// Number of power-of-two buckets; covers 1 ns to ~2^40 ns (~18 minutes).
const LOG_BUCKETS: usize = 41;

/// A log-bucketed histogram of durations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; SUB_BUCKETS * LOG_BUCKETS],
            total: 0,
            sum_nanos: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Maps a value to its bucket index.
    ///
    /// Layout: indices `0..64` cover values `0..64` exactly; after that, each
    /// group of 32 indices covers one power-of-two range `[2^k, 2^(k+1))` for
    /// `k = 6, 7, ...`, split into 32 equal-width sub-buckets.
    fn bucket_index(nanos: u64) -> usize {
        const HALF: usize = SUB_BUCKETS / 2;
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let k = 63 - nanos.leading_zeros() as usize; // floor(log2(nanos)), >= 6
        let group = k - 6;
        let sub = (nanos >> (k - 5)) as usize - HALF; // in [0, 32)
        let bucket = SUB_BUCKETS + group * HALF + sub;
        bucket.min(SUB_BUCKETS * LOG_BUCKETS - 1)
    }

    /// The lower bound of the value range covered by a bucket index.
    fn bucket_value(index: usize) -> u64 {
        const HALF: usize = SUB_BUCKETS / 2;
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let group = (index - SUB_BUCKETS) / HALF;
        let sub = (index - SUB_BUCKETS) % HALF;
        ((HALF + sub) as u64) << (group + 1)
    }

    /// Records one duration.
    pub fn record(&mut self, d: Nanos) {
        let ns = d.as_nanos();
        self.counts[Self::bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_nanos += ns as u128;
        if ns < self.min {
            self.min = ns;
        }
        if ns > self.max {
            self.max = ns;
        }
    }

    /// Records `n` occurrences of the same duration.
    pub fn record_n(&mut self, d: Nanos, n: u64) {
        if n == 0 {
            return;
        }
        let ns = d.as_nanos();
        self.counts[Self::bucket_index(ns)] += n;
        self.total += n;
        self.sum_nanos += ns as u128 * n as u128;
        if ns < self.min {
            self.min = ns;
        }
        if ns > self.max {
            self.max = ns;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The smallest recorded duration, or zero if empty.
    pub fn min(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(self.min)
        }
    }

    /// The largest recorded duration, or zero if empty.
    pub fn max(&self) -> Nanos {
        Nanos::from_nanos(self.max)
    }

    /// The mean of all recorded durations, or zero if empty.
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// The value at quantile `q` in `[0, 1]`, or zero if empty.
    ///
    /// The returned value is a bucket lower bound, so it is within one bucket
    /// width (~1.6 % relative) of the true quantile, and exact for the min
    /// and max.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max();
        }
        let target = (q * self.total as f64).floor() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative > target {
                let v = Self::bucket_value(i);
                return Nanos::from_nanos(v.clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// Convenience wrapper: percentile `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Nanos {
        self.quantile(p / 100.0)
    }

    /// The fraction of samples at or below `threshold`.
    pub fn fraction_below(&self, threshold: Nanos) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = Self::bucket_index(threshold.as_nanos());
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Exports `(latency, cumulative fraction)` points for plotting a CDF.
    ///
    /// Only non-empty buckets are emitted, so the output is compact enough to
    /// print directly from the benchmark binaries.
    pub fn cdf_points(&self) -> Vec<(Nanos, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let v = Self::bucket_value(i).clamp(self.min, self.max);
            points.push((Nanos::from_nanos(v), cumulative as f64 / self.total as f64));
        }
        points
    }

    /// The standard tail-latency row used throughout the evaluation:
    /// (p50, p99, p99.9, p99.99, max).
    pub fn tail_summary(&self) -> TailSummary {
        TailSummary {
            p50: self.percentile(50.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            p9999: self.percentile(99.99),
            max: self.max(),
            mean: self.mean(),
            count: self.count(),
        }
    }
}

/// The tail-latency summary reported by the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    /// Median latency.
    pub p50: Nanos,
    /// 99th percentile latency.
    pub p99: Nanos,
    /// 99.9th percentile latency.
    pub p999: Nanos,
    /// 99.99th percentile latency.
    pub p9999: Nanos,
    /// Maximum latency.
    pub max: Nanos,
    /// Mean latency.
    pub mean: Nanos,
    /// Number of samples.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), Nanos::ZERO);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.min(), Nanos::ZERO);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::from_millis(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Nanos::from_millis(3));
        assert_eq!(h.max(), Nanos::from_millis(3));
        assert_eq!(h.mean(), Nanos::from_millis(3));
        let q = h.quantile(0.5);
        assert!(relative_error(q, Nanos::from_millis(3)) < 0.02);
    }

    fn relative_error(a: Nanos, b: Nanos) -> f64 {
        let a = a.as_nanos() as f64;
        let b = b.as_nanos() as f64;
        (a - b).abs() / b.max(1.0)
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(Nanos::from_micros(us));
        }
        assert_eq!(h.count(), 10_000);
        for (q, expected_us) in [
            (0.1, 1_000.0),
            (0.5, 5_000.0),
            (0.9, 9_000.0),
            (0.99, 9_900.0),
        ] {
            let got = h.quantile(q).as_micros_f64();
            let rel = (got - expected_us).abs() / expected_us;
            assert!(rel < 0.03, "q{q}: expected ~{expected_us}us got {got}us");
        }
        assert_eq!(h.quantile(1.0), Nanos::from_micros(10_000));
        assert_eq!(h.min(), Nanos::from_micros(1));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..SUB_BUCKETS as u64 {
            h.record(Nanos::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.0), Nanos::from_nanos(0));
        assert_eq!(h.max(), Nanos::from_nanos(63));
    }

    #[test]
    fn record_n_equivalent_to_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(Nanos::from_micros(250));
        }
        b.record_n(Nanos::from_micros(250), 10);
        b.record_n(Nanos::from_micros(999), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn fraction_below_threshold() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Nanos::from_millis(ms));
        }
        let f = h.fraction_below(Nanos::from_millis(50));
        assert!((f - 0.5).abs() < 0.05, "fraction {f}");
        assert!(h.fraction_below(Nanos::from_millis(1000)) > 0.999);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Nanos::from_millis(1));
        b.record(Nanos::from_millis(100));
        b.record(Nanos::from_millis(200));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Nanos::from_millis(1));
        assert_eq!(a.max(), Nanos::from_millis(200));
        let empty = LatencyHistogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn cdf_points_are_monotonic() {
        let mut h = LatencyHistogram::new();
        for us in (1..5_000u64).step_by(7) {
            h.record(Nanos::from_micros(us));
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0, "latencies must be non-decreasing");
            assert!(
                w[1].1 >= w[0].1,
                "cumulative fraction must be non-decreasing"
            );
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_summary_reports_consistent_ordering() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100_000u64 {
            h.record(Nanos::from_micros(us % 10_000 + 1));
        }
        let s = h.tail_summary();
        assert!(s.p50 <= s.p99);
        assert!(s.p99 <= s.p999);
        assert!(s.p999 <= s.p9999);
        assert!(s.p9999 <= s.max);
        assert_eq!(s.count, 100_000);
    }

    #[test]
    fn wide_dynamic_range() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::from_nanos(10));
        h.record(Nanos::from_secs(100));
        assert_eq!(h.min(), Nanos::from_nanos(10));
        assert!(relative_error(h.quantile(1.0), Nanos::from_secs(100)) < 0.02);
    }

    #[test]
    fn bucket_value_is_inverse_lower_bound_of_bucket_index() {
        // For any value, bucket_value(bucket_index(v)) <= v and within ~2 %.
        for v in [
            1u64,
            63,
            64,
            65,
            100,
            1_000,
            4_096,
            1_000_000,
            123_456_789,
            10_000_000_000,
        ] {
            let idx = LatencyHistogram::bucket_index(v);
            let lower = LatencyHistogram::bucket_value(idx);
            assert!(lower <= v, "lower {lower} > v {v}");
            assert!(
                (v - lower) as f64 / v as f64 <= 2.0 / SUB_BUCKETS as f64 + 1e-9,
                "v {v} lower {lower}"
            );
        }
    }
}
