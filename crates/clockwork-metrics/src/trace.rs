//! Request-lifecycle tracing: structured spans from admission to completion.
//!
//! The aggregate counters elsewhere in this crate answer *how much* (goodput,
//! percentiles, event mixes); they cannot answer *why this request missed its
//! SLO*. This module is the per-request evidence trail: every stage a request
//! passes through — controller arrival, admission, batch formation, LOAD and
//! INFER issue/completion, network penalties, the terminal outcome — is one
//! [`TraceEvent`] stamped with the simulation time it was observed at.
//!
//! The design follows the lightweight-monitor shape: events are recorded from
//! *outside* the logic under observation (the facade event loop sees every
//! arrival, action and response for every discipline), so tracing can never
//! perturb a scheduling decision. Layers with knowledge the facade lacks
//! (the Clockwork scheduler's admission estimates, deferral decisions) emit
//! additional events through the same channel, guarded by a boolean so the
//! off path costs one predictable branch.
//!
//! Two [`Tracer`] implementations ship:
//!
//! * [`NoopTracer`] — the default. Both methods are empty `#[inline]` bodies,
//!   so with tracing off every emission site compiles down to nothing and
//!   run digests stay byte-identical to an untraced build.
//! * [`RingTracer`] — a bounded ring. At capacity it drops the *oldest*
//!   spans and counts them in [`RingTracer::dropped_spans`]; truncation is
//!   never silent, mirroring the event-mix conservation discipline. Exports
//!   deterministically as JSONL (sim-time stamps, insertion order) with an
//!   FNV-1a digest over the exported bytes for same-seed comparisons.
//!
//! Identifiers are plain integers (request ids, model ids, worker/GPU
//! indices) rather than the typed ids of the higher crates: this crate sits
//! below the model/worker/controller layers, which lets all three emit into
//! one stream without a dependency cycle.

use std::collections::VecDeque;

/// One structured event in a request's lifecycle. Timestamps inside variants
/// (deadlines, completion instants) are simulation-time nanoseconds;
/// `u64::MAX` encodes "none" (a request without an SLO).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request reached the controller and entered the scheduling domain.
    Enqueued {
        /// Request id.
        request: u64,
        /// Model requested.
        model: u32,
        /// Absolute deadline in nanoseconds (`u64::MAX` if no SLO).
        deadline: u64,
    },
    /// The controller admitted the request (emitted by disciplines that run
    /// explicit admission control, with the serving-time estimate that
    /// justified admission).
    Admitted {
        /// Request id.
        request: u64,
        /// Model requested.
        model: u32,
        /// Estimated nanoseconds to serve (execution + any pending load +
        /// network allowance) at admission time.
        estimate: u64,
    },
    /// The request was admitted but left queued by the dispatch pass — the
    /// urgency index deemed it not yet urgent (typically: waiting for a
    /// larger batch or a free executor).
    Deferred {
        /// Request id.
        request: u64,
        /// Model requested.
        model: u32,
        /// When the model's queue becomes urgent (its earliest queued
        /// deadline), nanoseconds; `u64::MAX` if unbounded.
        until: u64,
    },
    /// The request was rejected. Exactly one per rejected request: emitted
    /// by the controller when it knows the dooming estimate, otherwise by
    /// the facade when the rejection response drains (`estimate` 0).
    Rejected {
        /// Request id.
        request: u64,
        /// Model requested.
        model: u32,
        /// Rejection reason (the telemetry reason key, e.g.
        /// `cannot_meet_slo`).
        reason: &'static str,
        /// The serving-time estimate that doomed the request, nanoseconds
        /// (0 when the rejecting layer had no estimate).
        estimate: u64,
    },
    /// A LOAD action left the controller for a worker.
    LoadIssued {
        /// Action id.
        action: u64,
        /// Model whose weights are being loaded.
        model: u32,
        /// Destination worker.
        worker: u32,
        /// Destination GPU.
        gpu: u32,
        /// The controller's predicted transfer duration, nanoseconds.
        est: u64,
    },
    /// A LOAD action's result reached the controller.
    LoadDone {
        /// Action id.
        action: u64,
        /// Model loaded.
        model: u32,
        /// Worker that executed it.
        worker: u32,
        /// GPU involved.
        gpu: u32,
        /// The predicted duration echoed back, nanoseconds.
        est: u64,
        /// Measured on-device transfer duration, nanoseconds (0 on error).
        actual: u64,
        /// When the weights became resident, nanoseconds (0 on error).
        end: u64,
        /// Whether this load brought weights to a GPU that did not hold
        /// them (always true in the current protocol; kept explicit so a
        /// future prefetch/refresh path stays distinguishable).
        cold: bool,
        /// Whether the action succeeded.
        ok: bool,
    },
    /// The controller bundled requests into one INFER batch and dispatched
    /// it. `members` is the batch's request-id list in submission order.
    BatchFormed {
        /// Action id of the INFER carrying the batch.
        action: u64,
        /// Model executed.
        model: u32,
        /// Destination worker.
        worker: u32,
        /// Destination GPU.
        gpu: u32,
        /// Batch size (compiled kernel size, >= member count).
        size: u32,
        /// Request ids riding in this batch.
        members: Vec<u64>,
    },
    /// An INFER action left the controller for a worker.
    InferIssued {
        /// Action id.
        action: u64,
        /// Model executed.
        model: u32,
        /// Destination worker.
        worker: u32,
        /// Destination GPU.
        gpu: u32,
        /// Batch size.
        batch: u32,
        /// The controller's predicted execution duration, nanoseconds.
        est: u64,
    },
    /// An INFER action's result reached the controller: the est-vs-actual
    /// pair every discipline's prediction error is measured from.
    InferDone {
        /// Action id.
        action: u64,
        /// Model executed.
        model: u32,
        /// Worker that executed it.
        worker: u32,
        /// GPU involved.
        gpu: u32,
        /// Batch size.
        batch: u32,
        /// The predicted duration echoed back, nanoseconds.
        est: u64,
        /// Measured on-device execution duration, nanoseconds (0 on error).
        actual: u64,
        /// When execution began on the device, nanoseconds (0 on error).
        start: u64,
        /// When outputs were available, nanoseconds (0 on error).
        end: u64,
        /// Whether the action succeeded.
        ok: bool,
    },
    /// A controller↔worker message crossed a degraded link and paid more
    /// than the healthy network delay.
    LinkDelay {
        /// The worker whose link is degraded.
        worker: u32,
        /// The healthy-network delay, nanoseconds.
        base: u64,
        /// The delay actually paid, nanoseconds.
        actual: u64,
    },
    /// One request's completion inside a (possibly batched) INFER, as
    /// recorded by the worker's per-member completion ring.
    MemberDone {
        /// The request served.
        request: u64,
        /// Model executed.
        model: u32,
        /// Batch size the member rode in.
        batch: u32,
        /// When the member's outputs finished, nanoseconds.
        completed: u64,
    },
    /// Terminal span: the request completed within its SLO.
    Completed {
        /// Request id.
        request: u64,
        /// Model served.
        model: u32,
        /// Controller arrival, nanoseconds.
        arrival: u64,
        /// Completion instant, nanoseconds.
        completed: u64,
        /// Absolute deadline, nanoseconds (`u64::MAX` if no SLO).
        deadline: u64,
        /// Batch size served in.
        batch: u32,
        /// Worker that served it.
        worker: u32,
        /// GPU that served it.
        gpu: u32,
        /// Whether the model was loaded on demand for this request.
        cold: bool,
    },
    /// Terminal span: the request completed but after its deadline — the
    /// SLO violations the blame attribution explains.
    DeadlineMissed {
        /// Request id.
        request: u64,
        /// Model served.
        model: u32,
        /// Controller arrival, nanoseconds.
        arrival: u64,
        /// Completion instant, nanoseconds.
        completed: u64,
        /// Absolute deadline, nanoseconds.
        deadline: u64,
        /// Batch size served in.
        batch: u32,
        /// Worker that served it.
        worker: u32,
        /// GPU that served it.
        gpu: u32,
        /// Whether the model was loaded on demand for this request.
        cold: bool,
    },
}

impl TraceEvent {
    /// The snake-case kind label used in the JSONL export.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Enqueued { .. } => "enqueued",
            TraceEvent::Admitted { .. } => "admitted",
            TraceEvent::Deferred { .. } => "deferred",
            TraceEvent::Rejected { .. } => "rejected",
            TraceEvent::LoadIssued { .. } => "load_issued",
            TraceEvent::LoadDone { .. } => "load_done",
            TraceEvent::BatchFormed { .. } => "batch_formed",
            TraceEvent::InferIssued { .. } => "infer_issued",
            TraceEvent::InferDone { .. } => "infer_done",
            TraceEvent::LinkDelay { .. } => "link_delay",
            TraceEvent::MemberDone { .. } => "member_done",
            TraceEvent::Completed { .. } => "completed",
            TraceEvent::DeadlineMissed { .. } => "deadline_missed",
        }
    }

    /// Appends this event as one JSONL object (no trailing newline) to
    /// `out`. Field order is fixed, so the export is byte-deterministic.
    pub fn write_json(&self, at: u64, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "{{\"at\":{at},\"ev\":\"{}\"", self.kind());
        match self {
            TraceEvent::Enqueued {
                request,
                model,
                deadline,
            } => {
                let _ = write!(out, ",\"req\":{request},\"model\":{model}");
                if *deadline != u64::MAX {
                    let _ = write!(out, ",\"deadline\":{deadline}");
                }
            }
            TraceEvent::Admitted {
                request,
                model,
                estimate,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{request},\"model\":{model},\"est\":{estimate}"
                );
            }
            TraceEvent::Deferred {
                request,
                model,
                until,
            } => {
                let _ = write!(out, ",\"req\":{request},\"model\":{model}");
                if *until != u64::MAX {
                    let _ = write!(out, ",\"until\":{until}");
                }
            }
            TraceEvent::Rejected {
                request,
                model,
                reason,
                estimate,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{request},\"model\":{model},\"reason\":\"{reason}\",\"est\":{estimate}"
                );
            }
            TraceEvent::LoadIssued {
                action,
                model,
                worker,
                gpu,
                est,
            } => {
                let _ = write!(
                    out,
                    ",\"action\":{action},\"model\":{model},\"worker\":{worker},\"gpu\":{gpu},\"est\":{est}"
                );
            }
            TraceEvent::LoadDone {
                action,
                model,
                worker,
                gpu,
                est,
                actual,
                end,
                cold,
                ok,
            } => {
                let _ = write!(
                    out,
                    ",\"action\":{action},\"model\":{model},\"worker\":{worker},\"gpu\":{gpu},\"est\":{est},\"actual\":{actual},\"end\":{end},\"cold\":{cold},\"ok\":{ok}"
                );
            }
            TraceEvent::BatchFormed {
                action,
                model,
                worker,
                gpu,
                size,
                members,
            } => {
                let _ = write!(
                    out,
                    ",\"action\":{action},\"model\":{model},\"worker\":{worker},\"gpu\":{gpu},\"size\":{size},\"members\":["
                );
                for (i, member) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{member}");
                }
                out.push(']');
            }
            TraceEvent::InferIssued {
                action,
                model,
                worker,
                gpu,
                batch,
                est,
            } => {
                let _ = write!(
                    out,
                    ",\"action\":{action},\"model\":{model},\"worker\":{worker},\"gpu\":{gpu},\"batch\":{batch},\"est\":{est}"
                );
            }
            TraceEvent::InferDone {
                action,
                model,
                worker,
                gpu,
                batch,
                est,
                actual,
                start,
                end,
                ok,
            } => {
                let _ = write!(
                    out,
                    ",\"action\":{action},\"model\":{model},\"worker\":{worker},\"gpu\":{gpu},\"batch\":{batch},\"est\":{est},\"actual\":{actual},\"start\":{start},\"end\":{end},\"ok\":{ok}"
                );
            }
            TraceEvent::LinkDelay {
                worker,
                base,
                actual,
            } => {
                let _ = write!(
                    out,
                    ",\"worker\":{worker},\"base\":{base},\"actual\":{actual}"
                );
            }
            TraceEvent::MemberDone {
                request,
                model,
                batch,
                completed,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{request},\"model\":{model},\"batch\":{batch},\"completed\":{completed}"
                );
            }
            TraceEvent::Completed {
                request,
                model,
                arrival,
                completed,
                deadline,
                batch,
                worker,
                gpu,
                cold,
            }
            | TraceEvent::DeadlineMissed {
                request,
                model,
                arrival,
                completed,
                deadline,
                batch,
                worker,
                gpu,
                cold,
            } => {
                let _ = write!(
                    out,
                    ",\"req\":{request},\"model\":{model},\"arrival\":{arrival},\"completed\":{completed}"
                );
                if *deadline != u64::MAX {
                    let _ = write!(out, ",\"deadline\":{deadline}");
                }
                let _ = write!(
                    out,
                    ",\"batch\":{batch},\"worker\":{worker},\"gpu\":{gpu},\"cold\":{cold}"
                );
            }
        }
        out.push('}');
    }
}

/// One recorded span: a [`TraceEvent`] stamped with the simulation time it
/// was observed at (nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation-time nanoseconds of the observation.
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A sink for lifecycle events.
///
/// The default methods are no-ops, so [`NoopTracer`] (an empty struct using
/// only the defaults) compiles away entirely — the zero-cost-when-off
/// guarantee the digest-identity tests pin down.
pub trait Tracer {
    /// Whether this tracer records anything. Emission sites that must build
    /// an event (clone a member list, format a label) check this first so
    /// the off path pays one branch, not an allocation.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event observed at simulation time `at` (nanoseconds).
    #[inline]
    fn record(&mut self, at: u64, event: TraceEvent) {
        let _ = (at, event);
    }
}

/// The do-nothing tracer: tracing off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// A bounded in-memory trace: the most recent `capacity` spans, oldest
/// dropped first, every drop counted. Exports as deterministic JSONL.
#[derive(Clone, Debug)]
pub struct RingTracer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained spans, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Spans lost to capacity (ring overflow) or to upstream bounded logs
    /// (see [`RingTracer::note_dropped`]). Surfaced in `BENCH_blame.json`
    /// so truncation is never silent.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// Counts spans an upstream bounded buffer lost before this tracer
    /// could observe them (e.g. a worker's member-completion ring wrapping
    /// between polls).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// The retained spans as JSONL: one `{"at":..,"ev":"..",..}` object per
    /// line, insertion order, byte-deterministic for a given record set.
    pub fn export_jsonl(&self) -> String {
        // Pre-size roughly: most lines are under 120 bytes.
        let mut out = String::with_capacity(self.records.len() * 96);
        for record in &self.records {
            record.event.write_json(record.at, &mut out);
            out.push('\n');
        }
        out
    }

    /// FNV-1a over the JSONL export — the determinism fingerprint two
    /// same-seed traced runs must agree on.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for byte in self.export_jsonl().bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: u64, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enqueued(request: u64) -> TraceEvent {
        TraceEvent::Enqueued {
            request,
            model: 1,
            deadline: 1_000,
        }
    }

    #[test]
    fn noop_tracer_is_disabled_and_inert() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.record(5, enqueued(1));
    }

    #[test]
    fn ring_records_in_order() {
        let mut t = RingTracer::new(8);
        assert!(t.enabled());
        for i in 0..3 {
            t.record(i, enqueued(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped_spans(), 0);
        let ats: Vec<u64> = t.records().map(|r| r.at).collect();
        assert_eq!(ats, vec![0, 1, 2]);
    }

    #[test]
    fn ring_at_capacity_drops_oldest_and_counts() {
        let mut t = RingTracer::new(4);
        for i in 0..10 {
            t.record(i, enqueued(i));
        }
        assert_eq!(t.len(), 4, "bounded at capacity");
        assert_eq!(t.dropped_spans(), 6, "every drop counted");
        let oldest = t.records().next().expect("non-empty").at;
        assert_eq!(oldest, 6, "oldest spans dropped first");
        t.note_dropped(3);
        assert_eq!(t.dropped_spans(), 9, "upstream drops accumulate");
    }

    #[test]
    fn jsonl_export_is_deterministic_and_digested() {
        let build = || {
            let mut t = RingTracer::new(16);
            t.record(1, enqueued(7));
            t.record(
                2,
                TraceEvent::BatchFormed {
                    action: 3,
                    model: 1,
                    worker: 0,
                    gpu: 1,
                    size: 4,
                    members: vec![7, 8],
                },
            );
            t.record(
                9,
                TraceEvent::Completed {
                    request: 7,
                    model: 1,
                    arrival: 1,
                    completed: 9,
                    deadline: 1_000,
                    batch: 4,
                    worker: 0,
                    gpu: 1,
                    cold: false,
                },
            );
            t
        };
        let a = build();
        let b = build();
        assert_eq!(a.export_jsonl(), b.export_jsonl());
        assert_eq!(a.digest(), b.digest());
        let jsonl = a.export_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"ev\":\"batch_formed\""));
        assert!(jsonl.contains("\"members\":[7,8]"));
        let mut c = build();
        c.record(10, enqueued(9));
        assert_ne!(a.digest(), c.digest(), "digest is content-sensitive");
    }

    #[test]
    fn omitted_fields_encode_no_slo() {
        let mut line = String::new();
        TraceEvent::Enqueued {
            request: 1,
            model: 2,
            deadline: u64::MAX,
        }
        .write_json(0, &mut line);
        assert!(
            !line.contains("deadline"),
            "u64::MAX deadline is omitted: {line}"
        );
    }
}
