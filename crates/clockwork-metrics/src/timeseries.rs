//! Fixed-interval time series.
//!
//! The time-series plots of the evaluation (Fig. 6 and Fig. 8) report
//! per-interval aggregates: goodput per second, mean batch size per minute,
//! number of unique cold models per minute, and so on. [`TimeSeries`] buckets
//! observations by virtual time into fixed-width intervals and exposes both
//! counts (for rates) and means (for gauges).

use serde::{Deserialize, Serialize};

use clockwork_sim::time::{Nanos, Timestamp};

/// A bucketed time series of scalar observations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    interval: Nanos,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Creates a time series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: Nanos) -> Self {
        assert!(!interval.is_zero(), "time series interval must be non-zero");
        TimeSeries {
            interval,
            counts: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Creates a per-second time series, the granularity used for the
    /// goodput plots.
    pub fn per_second() -> Self {
        TimeSeries::new(Nanos::from_secs(1))
    }

    /// Creates a per-minute time series, the granularity used for the
    /// cold-start plots.
    pub fn per_minute() -> Self {
        TimeSeries::new(Nanos::from_secs(60))
    }

    /// The bucket width.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    fn bucket(&self, at: Timestamp) -> usize {
        (at.as_nanos() / self.interval.as_nanos()) as usize
    }

    fn ensure(&mut self, bucket: usize) {
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
            self.sums.resize(bucket + 1, 0.0);
        }
    }

    /// Records an event at `at` (counted, with value 1.0).
    pub fn record_event(&mut self, at: Timestamp) {
        self.record_value(at, 1.0);
    }

    /// Records a value at `at`.
    pub fn record_value(&mut self, at: Timestamp, value: f64) {
        let b = self.bucket(at);
        self.ensure(b);
        self.counts[b] += 1;
        self.sums[b] += value;
    }

    /// Number of buckets that have been touched (the series length).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the series has no buckets.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Count of observations in the bucket starting at `index * interval`.
    pub fn count_at(&self, index: usize) -> u64 {
        self.counts.get(index).copied().unwrap_or(0)
    }

    /// Sum of values in the given bucket.
    pub fn sum_at(&self, index: usize) -> f64 {
        self.sums.get(index).copied().unwrap_or(0.0)
    }

    /// Mean value in the given bucket, or 0 if the bucket is empty.
    pub fn mean_at(&self, index: usize) -> f64 {
        let c = self.count_at(index);
        if c == 0 {
            0.0
        } else {
            self.sum_at(index) / c as f64
        }
    }

    /// Rate of events per second in the given bucket.
    pub fn rate_at(&self, index: usize) -> f64 {
        self.count_at(index) as f64 / self.interval.as_secs_f64()
    }

    /// Total count of observations across all buckets.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total sum across all buckets.
    pub fn total_sum(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Iterates over `(bucket start time, count, sum)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (Timestamp, u64, f64)> + '_ {
        self.counts
            .iter()
            .zip(&self.sums)
            .enumerate()
            .map(move |(i, (&c, &s))| {
                (
                    Timestamp::from_nanos(i as u64 * self.interval.as_nanos()),
                    c,
                    s,
                )
            })
    }

    /// Mean event rate over the whole series, in events per second.
    pub fn overall_rate(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total_count() as f64 / (self.counts.len() as f64 * self.interval.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = TimeSeries::new(Nanos::ZERO);
    }

    #[test]
    fn events_bucket_by_time() {
        let mut ts = TimeSeries::per_second();
        ts.record_event(Timestamp::from_millis(100));
        ts.record_event(Timestamp::from_millis(900));
        ts.record_event(Timestamp::from_millis(1_100));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.count_at(0), 2);
        assert_eq!(ts.count_at(1), 1);
        assert_eq!(ts.count_at(7), 0);
        assert_eq!(ts.total_count(), 3);
        assert_eq!(ts.rate_at(0), 2.0);
    }

    #[test]
    fn values_track_sums_and_means() {
        let mut ts = TimeSeries::per_minute();
        ts.record_value(Timestamp::from_secs(10), 4.0);
        ts.record_value(Timestamp::from_secs(50), 8.0);
        ts.record_value(Timestamp::from_secs(70), 2.0);
        assert_eq!(ts.sum_at(0), 12.0);
        assert_eq!(ts.mean_at(0), 6.0);
        assert_eq!(ts.mean_at(1), 2.0);
        assert_eq!(ts.mean_at(9), 0.0);
        assert_eq!(ts.total_sum(), 14.0);
    }

    #[test]
    fn rows_iterate_in_order() {
        let mut ts = TimeSeries::per_second();
        ts.record_event(Timestamp::from_secs(2));
        let rows: Vec<_> = ts.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (Timestamp::ZERO, 0, 0.0));
        assert_eq!(rows[2], (Timestamp::from_secs(2), 1, 1.0));
    }

    #[test]
    fn overall_rate() {
        let mut ts = TimeSeries::per_second();
        for i in 0..100 {
            ts.record_event(Timestamp::from_millis(i * 100));
        }
        // 100 events over 10 seconds.
        assert!((ts.overall_rate() - 10.0).abs() < 1e-9);
        assert_eq!(TimeSeries::per_second().overall_rate(), 0.0);
    }
}
