//! Streaming scalar summaries.

use serde::{Deserialize, Serialize};

/// A streaming summary of a scalar quantity: count, sum, mean, min, max,
/// and variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.mean = mean;
        self.m2 = m2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn basic_statistics() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 40.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_stream() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 + 1.0).collect();
        let mut whole = Summary::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());

        let mut empty = Summary::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let before = whole;
        let mut whole2 = whole;
        whole2.merge(&Summary::new());
        assert_eq!(whole2, before);
    }
}
