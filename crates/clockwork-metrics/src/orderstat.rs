//! Incrementally maintained order statistics over a sliding window.
//!
//! The controller's rolling action profiles (§5.3) ask for a percentile of
//! the last N measurements on every scheduling decision — many thousands of
//! times per simulated second at fleet scale.
//! [`SlidingWindow`](crate::percentile::SlidingWindow) answers that query by cloning and
//! sorting the window each time, which dominated the scheduler's hot path.
//! [`OrderStatWindow`] keeps the window sorted as samples arrive instead:
//! inserts and evictions locate their slot by O(log n) binary search (the
//! slot shift itself is an O(n) memmove — cheap at profile window sizes,
//! quadratic territory if the capacity is ever scaled to many thousands),
//! and any percentile query is a single index into the sorted buffer.
//!
//! The window is exact: for the same stream of samples it returns bit-for-bit
//! the same nearest-rank percentiles as
//! [`crate::percentile::percentile_nanos`] (a property test in
//! `tests/properties.rs` pins this equivalence down).

use std::collections::VecDeque;

use clockwork_sim::time::Nanos;

use crate::percentile::percentile_of_sorted;

/// A bounded window of the most recent samples with binary-searched ordered
/// maintenance and O(1) percentile queries.
///
/// Samples are evicted oldest-first once `capacity` is reached, exactly like
/// `SlidingWindow`; the difference is purely in query cost. Pushes pay an
/// O(n)-in-capacity element shift, so this is built for small windows
/// queried far more often than they are written (the profiler's default is
/// 10 samples).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OrderStatWindow {
    capacity: usize,
    /// Samples in arrival order (front = oldest), driving eviction.
    recency: VecDeque<Nanos>,
    /// The same samples in ascending order, driving percentile queries.
    sorted: Vec<Nanos>,
    /// Running sum of the window, so `mean` is O(1) too.
    sum: u128,
}

impl OrderStatWindow {
    /// Creates a window keeping at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "order-stat window capacity must be positive");
        OrderStatWindow {
            capacity,
            recency: VecDeque::with_capacity(capacity),
            sorted: Vec::with_capacity(capacity),
            sum: 0,
        }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, sample: Nanos) {
        if self.recency.len() == self.capacity {
            let evicted = self.recency.pop_front().expect("window is full");
            let at = self.sorted.partition_point(|&v| v < evicted);
            debug_assert!(self.sorted.get(at) == Some(&evicted));
            self.sorted.remove(at);
            self.sum -= evicted.as_nanos() as u128;
        }
        self.recency.push_back(sample);
        let at = self.sorted.partition_point(|&v| v <= sample);
        self.sorted.insert(at, sample);
        self.sum += sample.as_nanos() as u128;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.recency.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.recency.is_empty()
    }

    /// The exact nearest-rank percentile of the window, or `None` if empty.
    ///
    /// Unlike `SlidingWindow::percentile` this neither clones nor sorts: the
    /// window is already ordered, so the query is one index computation.
    pub fn percentile(&self, p: f64) -> Option<Nanos> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(percentile_of_sorted(&self.sorted, p))
    }

    /// The maximum sample in the window, or `None` if empty.
    pub fn max(&self) -> Option<Nanos> {
        self.sorted.last().copied()
    }

    /// The minimum sample in the window, or `None` if empty.
    pub fn min(&self) -> Option<Nanos> {
        self.sorted.first().copied()
    }

    /// The most recent sample, or `None` if empty.
    pub fn latest(&self) -> Option<Nanos> {
        self.recency.back().copied()
    }

    /// The mean of the samples in the window, or `None` if empty.
    pub fn mean(&self) -> Option<Nanos> {
        if self.recency.is_empty() {
            return None;
        }
        Some(Nanos::from_nanos(
            (self.sum / self.recency.len() as u128) as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile_nanos;

    #[test]
    fn matches_clone_and_sort_reference() {
        let mut w = OrderStatWindow::new(10);
        let mut reference = Vec::new();
        let stream = [100u64, 101, 99, 100, 102, 100, 100, 98, 101, 100, 97, 250];
        for (i, us) in stream.into_iter().enumerate() {
            let s = Nanos::from_micros(us);
            w.push(s);
            reference.push(s);
            if reference.len() > 10 {
                reference.remove(0);
            }
            for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(
                    w.percentile(p),
                    percentile_nanos(&reference, p),
                    "sample {i} percentile {p}"
                );
            }
        }
    }

    #[test]
    fn evicts_oldest_and_tracks_extremes() {
        let mut w = OrderStatWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.percentile(50.0), None);
        assert_eq!(w.mean(), None);
        for ms in 1..=5u64 {
            w.push(Nanos::from_millis(ms));
        }
        // Window holds {3, 4, 5}.
        assert_eq!(w.len(), 3);
        assert_eq!(w.min(), Some(Nanos::from_millis(3)));
        assert_eq!(w.max(), Some(Nanos::from_millis(5)));
        assert_eq!(w.latest(), Some(Nanos::from_millis(5)));
        assert_eq!(w.mean(), Some(Nanos::from_millis(4)));
        assert_eq!(w.percentile(0.0), Some(Nanos::from_millis(3)));
    }

    #[test]
    fn duplicate_values_evict_correctly() {
        let mut w = OrderStatWindow::new(2);
        let a = Nanos::from_micros(7);
        w.push(a);
        w.push(a);
        w.push(Nanos::from_micros(9));
        assert_eq!(w.len(), 2);
        assert_eq!(w.min(), Some(a));
        assert_eq!(w.max(), Some(Nanos::from_micros(9)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = OrderStatWindow::new(0);
    }
}
