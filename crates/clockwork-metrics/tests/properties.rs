//! Property-based tests for the metrics crate.
//!
//! Every number the evaluation harness reports flows through these types, so
//! their invariants (quantiles bracketed by observed extremes, monotone CDFs,
//! merge equivalence, conservation of counts across time-series bucketing)
//! are what make the reproduced tables trustworthy.

use proptest::prelude::*;

use clockwork_metrics::histogram::LatencyHistogram;
use clockwork_metrics::orderstat::OrderStatWindow;
use clockwork_metrics::percentile::{percentile_nanos, SlidingWindow};
use clockwork_metrics::summary::Summary;
use clockwork_metrics::timeseries::TimeSeries;
use clockwork_metrics::utilization::UtilizationTracker;
use clockwork_sim::time::{Nanos, Timestamp};

const HOUR_NS: u64 = 3_600_000_000_000;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000_000_000, 1..400)
}

proptest! {
    // ------------------------------------------------------------------
    // LatencyHistogram
    // ------------------------------------------------------------------

    #[test]
    fn histogram_quantiles_are_bracketed_and_monotone(values in samples(), qs in proptest::collection::vec(0.0f64..=1.0, 1..20)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Nanos::from_nanos(v));
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.min().as_nanos(), lo);
        prop_assert_eq!(h.max().as_nanos(), hi);
        prop_assert!(h.mean().as_nanos() >= lo && h.mean().as_nanos() <= hi);

        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = Nanos::ZERO;
        for q in sorted_qs {
            let v = h.quantile(q);
            prop_assert!(v.as_nanos() >= lo && v.as_nanos() <= hi,
                "quantile {} = {} outside [{}, {}]", q, v, lo, hi);
            prop_assert!(v >= prev, "quantile not monotone at q={}", q);
            prev = v;
        }
        prop_assert_eq!(h.quantile(1.0).as_nanos(), hi);
    }

    #[test]
    fn histogram_quantile_tracks_exact_percentile_within_bucket_error(values in samples(), q in 0.0f64..=1.0) {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<Nanos> = values.iter().map(|&v| Nanos::from_nanos(v)).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        let true_q = percentile_nanos(&exact, q * 100.0).unwrap();
        let approx = h.quantile(q);
        // The histogram's log buckets have ~3.2 % relative width; allow a
        // slightly looser bound plus an absolute floor for tiny values.
        let tolerance = Nanos::from_nanos((true_q.as_nanos() as f64 * 0.07) as u64)
            + Nanos::from_nanos(64);
        let diff = if approx > true_q { approx - true_q } else { true_q - approx };
        prop_assert!(diff <= tolerance,
            "quantile {} too far from exact: {} vs {}", q, approx, true_q);
    }

    #[test]
    fn histogram_fraction_below_is_monotone_and_complete(values in samples(), probes in proptest::collection::vec(0u64..10_000_000_000, 1..20)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Nanos::from_nanos(v));
        }
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = 0.0;
        for p in sorted {
            let f = h.fraction_below(Nanos::from_nanos(p));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f + 1e-12 >= prev);
            prev = f;
        }
        prop_assert!((h.fraction_below(h.max()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_recording_everything_in_one(a in samples(), b in samples()) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hall = LatencyHistogram::new();
        for &v in &a {
            ha.record(Nanos::from_nanos(v));
            hall.record(Nanos::from_nanos(v));
        }
        for &v in &b {
            hb.record(Nanos::from_nanos(v));
            hall.record(Nanos::from_nanos(v));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.min(), hall.min());
        prop_assert_eq!(ha.max(), hall.max());
        prop_assert_eq!(ha.mean(), hall.mean());
        for p in [50.0, 90.0, 99.0, 99.9] {
            prop_assert_eq!(ha.percentile(p), hall.percentile(p));
        }
    }

    #[test]
    fn histogram_record_n_equals_repeated_record(v in 0u64..10_000_000_000, n in 1u64..1000) {
        let mut bulk = LatencyHistogram::new();
        bulk.record_n(Nanos::from_nanos(v), n);
        let mut loop_h = LatencyHistogram::new();
        for _ in 0..n {
            loop_h.record(Nanos::from_nanos(v));
        }
        prop_assert_eq!(bulk.count(), loop_h.count());
        prop_assert_eq!(bulk.mean(), loop_h.mean());
        prop_assert_eq!(bulk.percentile(50.0), loop_h.percentile(50.0));
        prop_assert_eq!(bulk.cdf_points(), loop_h.cdf_points());
    }

    #[test]
    fn histogram_cdf_points_are_monotone_and_end_at_one(values in samples()) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Nanos::from_nanos(v));
        }
        let points = h.cdf_points();
        prop_assert!(!points.is_empty());
        let mut prev_x = Nanos::ZERO;
        let mut prev_y = 0.0;
        for &(x, y) in &points {
            prop_assert!(x >= prev_x);
            prop_assert!(y >= prev_y);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&y));
            prev_x = x;
            prev_y = y;
        }
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_summary_is_internally_ordered(values in samples()) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Nanos::from_nanos(v));
        }
        let t = h.tail_summary();
        prop_assert!(t.p50 <= t.p99);
        prop_assert!(t.p99 <= t.p999);
        prop_assert!(t.p999 <= t.p9999);
        prop_assert!(t.p9999 <= t.max);
        prop_assert_eq!(t.count, values.len() as u64);
    }

    // ------------------------------------------------------------------
    // Exact percentiles and reservoir sampling
    // ------------------------------------------------------------------

    #[test]
    fn exact_percentile_is_bracketed_and_monotone(values in samples()) {
        let ns: Vec<Nanos> = values.iter().map(|&v| Nanos::from_nanos(v)).collect();
        let lo = *ns.iter().min().unwrap();
        let hi = *ns.iter().max().unwrap();
        prop_assert_eq!(percentile_nanos(&ns, 0.0).unwrap(), lo);
        prop_assert_eq!(percentile_nanos(&ns, 100.0).unwrap(), hi);
        let mut prev = Nanos::ZERO;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = percentile_nanos(&ns, p).unwrap();
            prop_assert!(v >= lo && v <= hi);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!(percentile_nanos(&[], 50.0).is_none());
    }

    #[test]
    fn sliding_window_keeps_at_most_capacity_and_tracks_extremes(values in samples(), capacity in 1usize..64) {
        let mut r = SlidingWindow::new(capacity);
        for &v in &values {
            r.push(Nanos::from_nanos(v));
        }
        prop_assert!(r.len() <= capacity);
        prop_assert!(!r.is_empty());
        prop_assert_eq!(r.latest(), Some(Nanos::from_nanos(*values.last().unwrap())));
        if let Some(p100) = r.percentile(100.0) {
            prop_assert!(p100 <= Nanos::from_nanos(*values.iter().max().unwrap()));
        }
        if let Some(mean) = r.mean() {
            let lo = *values.iter().min().unwrap();
            let hi = *values.iter().max().unwrap();
            prop_assert!(mean.as_nanos() >= lo && mean.as_nanos() <= hi);
        }
    }

    // ------------------------------------------------------------------
    // OrderStatWindow
    // ------------------------------------------------------------------

    // The incrementally sorted window must be indistinguishable from the
    // clone-and-sort reference at every step of a random stream: same
    // percentiles (for the profiler's p99 and any other rank), same
    // extremes, same mean. The scheduler's prediction path relies on this
    // equivalence being exact, not approximate.
    #[test]
    fn orderstat_window_matches_percentile_nanos(
        values in samples(),
        capacity in 1usize..64,
        ps in proptest::collection::vec(0.0f64..=100.0, 1..8),
    ) {
        let mut w = OrderStatWindow::new(capacity);
        let mut reference: Vec<Nanos> = Vec::new();
        for &v in &values {
            let sample = Nanos::from_nanos(v);
            w.push(sample);
            reference.push(sample);
            if reference.len() > capacity {
                reference.remove(0);
            }
            for &p in &ps {
                prop_assert_eq!(w.percentile(p), percentile_nanos(&reference, p));
            }
            prop_assert_eq!(w.percentile(99.0), percentile_nanos(&reference, 99.0));
            prop_assert_eq!(w.len(), reference.len());
            prop_assert_eq!(w.max(), reference.iter().copied().max());
            prop_assert_eq!(w.min(), reference.iter().copied().min());
            prop_assert_eq!(w.latest(), reference.last().copied());
        }
        let sum: u128 = reference.iter().map(|n| n.as_nanos() as u128).sum();
        let mean = Nanos::from_nanos((sum / reference.len() as u128) as u64);
        prop_assert_eq!(w.mean(), Some(mean));
    }

    // The two window implementations agree sample for sample, so the
    // profiler switch cannot have changed any estimate.
    #[test]
    fn orderstat_window_matches_sliding_window(values in samples(), capacity in 1usize..32) {
        let mut fast = OrderStatWindow::new(capacity);
        let mut slow = SlidingWindow::new(capacity);
        for &v in &values {
            let sample = Nanos::from_nanos(v);
            fast.push(sample);
            slow.push(sample);
            for p in [0.0, 50.0, 99.0, 100.0] {
                prop_assert_eq!(fast.percentile(p), slow.percentile(p));
            }
            prop_assert_eq!(fast.mean(), slow.mean());
            prop_assert_eq!(fast.latest(), slow.latest());
            prop_assert_eq!(fast.max(), slow.max());
        }
    }

    // ------------------------------------------------------------------
    // Summary
    // ------------------------------------------------------------------

    #[test]
    fn summary_moments_are_consistent(values in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        prop_assert_eq!(s.count(), values.len() as u64);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= -1e-6);
        prop_assert!(s.std_dev() >= 0.0);
    }

    #[test]
    fn summary_merge_matches_single_pass(a in proptest::collection::vec(-1e6f64..1e6, 1..200), b in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut sa = Summary::new();
        let mut sb = Summary::new();
        let mut all = Summary::new();
        for &v in &a {
            sa.record(v);
            all.record(v);
        }
        for &v in &b {
            sb.record(v);
            all.record(v);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), all.count());
        prop_assert!((sa.sum() - all.sum()).abs() <= 1e-6 * (1.0 + all.sum().abs()));
        prop_assert!((sa.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        prop_assert_eq!(sa.min(), all.min());
        prop_assert_eq!(sa.max(), all.max());
    }

    // ------------------------------------------------------------------
    // TimeSeries
    // ------------------------------------------------------------------

    #[test]
    fn timeseries_conserves_event_counts(events in proptest::collection::vec(0u64..HOUR_NS, 0..400)) {
        let mut ts = TimeSeries::per_second();
        for &e in &events {
            ts.record_event(Timestamp::from_nanos(e));
        }
        prop_assert_eq!(ts.total_count(), events.len() as u64);
        let bucketed: u64 = (0..ts.len()).map(|i| ts.count_at(i)).sum();
        prop_assert_eq!(bucketed, events.len() as u64);
        for i in 0..ts.len() {
            prop_assert!(ts.rate_at(i) >= 0.0);
        }
    }

    #[test]
    fn timeseries_conserves_value_sums(points in proptest::collection::vec((0u64..HOUR_NS, 0.0f64..1e6), 1..300)) {
        let mut ts = TimeSeries::per_minute();
        let mut total = 0.0;
        for &(at, v) in &points {
            ts.record_value(Timestamp::from_nanos(at), v);
            total += v;
        }
        prop_assert!((ts.total_sum() - total).abs() <= 1e-6 * (1.0 + total));
        let bucketed: f64 = (0..ts.len()).map(|i| ts.sum_at(i)).sum();
        prop_assert!((bucketed - total).abs() <= 1e-6 * (1.0 + total));
    }

    // ------------------------------------------------------------------
    // UtilizationTracker
    // ------------------------------------------------------------------

    #[test]
    fn utilization_stays_in_unit_interval_for_serial_busy_spans(
        spans in proptest::collection::vec((0u64..HOUR_NS, 1u64..500_000_000u64), 1..200),
    ) {
        let mut tracker = UtilizationTracker::per_second();
        // Serialise the spans the way a single GPU would: each starts no
        // earlier than the previous one ended.
        let mut sorted = spans.clone();
        sorted.sort_by_key(|(s, _)| *s);
        let mut cursor = Timestamp::ZERO;
        let mut total = Nanos::ZERO;
        let mut horizon = Timestamp::ZERO;
        for (start, dur) in sorted {
            let s = Timestamp::from_nanos(start).max(cursor);
            let e = s + Nanos::from_nanos(dur);
            tracker.record_busy(s, e);
            cursor = e;
            total += Nanos::from_nanos(dur);
            horizon = e;
        }
        prop_assert_eq!(tracker.total_busy(), total);
        for i in 0..tracker.len() {
            let u = tracker.utilization_at(i);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "bucket {} utilization {}", i, u);
        }
        let mean = tracker.mean_utilization(horizon);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&mean));
    }
}
