//! Multi-tenant isolation (the §6.4 scenario).
//!
//! ```bash
//! cargo run --release --example multi_tenant_isolation
//! ```
//!
//! Latency-sensitive (LS) tenants with a 30 ms SLO share a 2-worker cluster
//! with batch-client (BC) tenants that submit as fast as they can with no SLO
//! at all. Clockwork's SLO-aware scheduling should keep the LS tenants'
//! satisfaction high while letting the batch clients soak up leftover
//! capacity.

use clockwork::prelude::*;

fn run(with_batch_clients: bool) -> (f64, f64) {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(2)
        .seed(44)
        .drop_raw_responses()
        .build();
    let ls_models = system.register_copies(zoo.resnet50(), 4);
    let bc_models = system.register_copies(zoo.resnet50(), 8);
    let duration = Nanos::from_secs(10);

    // LS tenants: open-loop 150 r/s each with a 30 ms SLO.
    let trace = OpenLoopClient::generate_many(
        &ls_models,
        150.0,
        Nanos::from_millis(30),
        duration,
        &mut SimRng::seeded(5),
    );
    let ls_total = trace.len() as f64;
    system.submit_trace(&trace);

    // BC tenants: closed-loop, 8 outstanding each, no SLO.
    if with_batch_clients {
        for (i, &m) in bc_models.iter().enumerate() {
            system.add_closed_loop_client(
                ClosedLoopClient::new(m, 8, Nanos::MAX),
                Timestamp::from_millis(i as u64),
            );
        }
    }
    system.run_until(Timestamp::ZERO + duration + Nanos::from_secs(1));
    let m = system.telemetry().metrics();
    let ls_satisfaction = m.goodput as f64 / ls_total;
    let bc_throughput = (m.successes - m.goodput) as f64 / duration.as_secs_f64();
    (ls_satisfaction, bc_throughput)
}

fn main() {
    let (alone, _) = run(false);
    let (shared, bc_rps) = run(true);
    println!(
        "LS satisfaction without batch clients: {:.1}%",
        alone * 100.0
    );
    println!(
        "LS satisfaction with batch clients:    {:.1}%",
        shared * 100.0
    );
    println!("batch-client throughput:               {bc_rps:.0} r/s");
    println!(
        "isolation penalty: {:.1} percentage points",
        (alone - shared) * 100.0
    );
    assert!(
        shared > alone - 0.1,
        "latency-sensitive tenants must be isolated from batch tenants"
    );
}
