//! Quickstart: serve one model and inspect the results.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Builds a single-worker Clockwork cluster, registers ResNet50 from the
//! Appendix A model zoo, submits a short warm workload with a 25 ms SLO and
//! prints the latency distribution and goodput.

use clockwork::prelude::*;

fn main() {
    // 1. Build a cluster: one worker machine with one simulated Tesla V100,
    //    driven by the Clockwork scheduler.
    let mut system = SystemBuilder::new()
        .workers(1)
        .discipline(Box::new(ClockworkFactory::default()))
        .seed(1)
        .build();

    // 2. Upload a model. The zoo carries the 60+ models of the paper's
    //    Appendix A with their measured execution profiles.
    let zoo = ModelZoo::new();
    let resnet50 = system.register_model(zoo.resnet50());

    // 3. Submit requests: one cold request, then a steady stream of warm
    //    requests with a 25 ms SLO.
    system.submit_request(Timestamp::ZERO, resnet50, Nanos::from_millis(100));
    for i in 1..=500u64 {
        system.submit_request(
            Timestamp::from_millis(20 + i * 5),
            resnet50,
            Nanos::from_millis(25),
        );
    }

    // 4. Run the virtual-time event loop to completion and read telemetry.
    system.run_to_completion();
    let metrics = system.telemetry().metrics();

    println!("requests:        {}", metrics.total_requests);
    println!("goodput (in SLO): {}", metrics.goodput);
    println!("satisfaction:    {:.2}%", metrics.satisfaction() * 100.0);
    println!("cold starts:     {}", metrics.cold_starts);
    println!(
        "latency p50 / p99 / max: {:.2} / {:.2} / {:.2} ms",
        metrics.latency.percentile(50.0).as_millis_f64(),
        metrics.latency.percentile(99.0).as_millis_f64(),
        metrics.latency.max().as_millis_f64()
    );

    assert!(
        metrics.satisfaction() > 0.99,
        "warm requests should meet a 25 ms SLO"
    );
}
