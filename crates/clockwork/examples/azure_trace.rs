//! Replay an Azure-Functions-like workload (the §6.5 scenario, scaled down).
//!
//! ```bash
//! cargo run --release --example azure_trace
//! ```
//!
//! Generates a synthetic serverless workload (heavy sustained, cold, bursty,
//! and periodic-spike functions), maps it onto 100 model instances drawn
//! from the Appendix A zoo, serves it on a 3-worker cluster with a 100 ms
//! SLO, and prints per-minute goodput plus the cold-start breakdown.

use clockwork::prelude::*;

fn main() {
    let zoo = ModelZoo::new();
    let config = AzureTraceConfig {
        functions: 400,
        models: 100,
        duration: Nanos::from_minutes(5),
        target_rate: 600.0,
        slo: Nanos::from_millis(100),
        seed: 2024,
    };
    let generator = AzureTraceGenerator::new(config);
    let trace = generator.generate();
    println!(
        "generated {} requests across {} model instances ({} functions)",
        trace.len(),
        config.models,
        config.functions
    );

    let mut system = SystemBuilder::new()
        .workers(3)
        .seed(3)
        .drop_raw_responses()
        .build();
    for i in 0..config.models {
        // Cycle through the zoo so the cluster serves heterogeneous models.
        system.register_model(&zoo.all()[i % zoo.len()]);
    }
    system.submit_trace(&trace);
    system.run_until(Timestamp::ZERO + config.duration + Nanos::from_secs(2));

    let tel = system.telemetry();
    println!("minute  goodput_rps  cold_start_rps  mean_batch");
    for minute in 0..(config.duration.as_secs_f64() / 60.0) as usize {
        let mut goodput = 0.0;
        let mut cold = 0.0;
        let mut batch = 0.0;
        for s in minute * 60..(minute + 1) * 60 {
            goodput += tel.goodput_series.count_at(s) as f64;
            cold += tel.cold_start_series.count_at(s) as f64;
            batch += tel.batch_series.mean_at(s);
        }
        println!(
            "{minute:>6}  {:>11.1}  {:>14.2}  {:>10.2}",
            goodput / 60.0,
            cold / 60.0,
            batch / 60.0
        );
    }
    let m = tel.metrics();
    println!(
        "\noverall: {} requests, satisfaction {:.3}%, cold-start fraction {:.2}%, p99 {:.1} ms",
        m.total_requests,
        m.satisfaction() * 100.0,
        m.cold_start_fraction() * 100.0,
        m.latency.percentile(99.0).as_millis_f64()
    );
}
