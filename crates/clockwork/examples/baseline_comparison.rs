//! Compare Clockwork against the reactive baselines (a miniature Fig. 5).
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```
//!
//! Runs the same closed-loop workload (6 copies of ResNet50, 16 outstanding
//! requests each, 50 ms SLO) against Clockwork, the Clipper-like baseline,
//! the INFaaS-like baseline and the FIFO strawman, and prints goodput and
//! tail latency for each.

use clockwork::prelude::*;
use clockwork_baselines::{ClipperConfig, InfaasConfig};

fn run(kind: SchedulerKind) -> (String, f64, f64, f64) {
    let zoo = ModelZoo::new();
    let label = kind.label().to_string();
    let mut system = SystemBuilder::new()
        .scheduler(kind)
        .seed(9)
        .drop_raw_responses()
        .build();
    let models = system.register_copies(zoo.resnet50(), 6);
    for (i, &m) in models.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(m, 16, Nanos::from_millis(50)),
            Timestamp::from_millis(i as u64),
        );
    }
    system.run_until(Timestamp::from_secs(10));
    let m = system.telemetry().metrics();
    (
        label,
        m.goodput_rate(),
        m.satisfaction(),
        m.latency.percentile(99.0).as_millis_f64(),
    )
}

fn main() {
    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "system", "goodput r/s", "satisfaction", "p99 ms"
    );
    let mut clockwork_goodput = 0.0;
    let mut best_baseline = 0.0f64;
    for kind in [
        SchedulerKind::default(),
        SchedulerKind::Clipper(ClipperConfig::default()),
        SchedulerKind::Infaas(InfaasConfig::default()),
        SchedulerKind::Fifo,
    ] {
        let (label, goodput, satisfaction, p99) = run(kind);
        println!(
            "{label:<12} {goodput:>12.0} {:>13.1}% {p99:>10.2}",
            satisfaction * 100.0
        );
        if label == "clockwork" {
            clockwork_goodput = goodput;
        } else {
            best_baseline = best_baseline.max(goodput);
        }
    }
    println!();
    println!(
        "Clockwork goodput vs best baseline: {:.2}x",
        clockwork_goodput / best_baseline.max(1.0)
    );
}
