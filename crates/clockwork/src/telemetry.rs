//! End-to-end experiment telemetry.
//!
//! Every figure of the evaluation is computed from the per-request responses
//! and per-interval series collected here: goodput (responses within SLO) and
//! throughput over time, the latency distribution scaled to the tail, batch
//! sizes, cold-start counts, and rejection breakdowns.

use std::collections::HashMap;

use clockwork_controller::request::{RejectReason, RequestOutcome, Response};
use clockwork_metrics::{LatencyHistogram, Summary, TimeSeries};
use clockwork_model::{ModelId, Tier};
use clockwork_sim::engine::FaultKind;
use clockwork_sim::time::{Nanos, Timestamp};

/// One fleet fault observed by the system, with the availability it left
/// behind — the per-phase availability timeline of a chaos run is read
/// straight off these records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the fault fired.
    pub at: Timestamp,
    /// What happened.
    pub kind: FaultKind,
    /// Usable GPUs across the fleet immediately after the fault.
    pub alive_gpus: u32,
    /// Total GPUs in the fleet.
    pub total_gpus: u32,
}

impl FaultRecord {
    /// Fraction of the fleet's GPUs usable immediately after this fault.
    pub fn availability(&self) -> f64 {
        if self.total_gpus == 0 {
            return 0.0;
        }
        f64::from(self.alive_gpus) / f64::from(self.total_gpus)
    }
}

/// Push/deliver/cancel counters for one kind of simulation event.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventMixEntry {
    /// Snake-case label of the event kind (e.g. `worker_wake`).
    pub kind: &'static str,
    /// Events of this kind ever scheduled.
    pub pushed: u64,
    /// Events of this kind delivered to the loop.
    pub delivered: u64,
    /// Events of this kind cancelled before delivery (superseded wakes and
    /// ticks).
    pub cancelled: u64,
}

/// The event-mix breakdown of a run: how many simulation events of each kind
/// were pushed, delivered and cancelled.
///
/// The perf harnesses report this next to events/sec so a wake-amplification
/// regression (an event loop drowning in redundant self-scheduled events) is
/// visible in CI artifacts, not just as a mysterious slowdown. The counters
/// obey the conservation identity `pushed == delivered + cancelled + live`
/// at every instant, where `live` is what is still queued.
#[derive(Clone, Debug, Default)]
pub struct EventMix {
    entries: Vec<EventMixEntry>,
    noop_wakes: u64,
}

impl EventMix {
    /// Creates a mix with one zeroed entry per kind label.
    pub fn with_kinds(kinds: &[&'static str]) -> Self {
        EventMix {
            entries: kinds
                .iter()
                .map(|&kind| EventMixEntry {
                    kind,
                    ..Default::default()
                })
                .collect(),
            noop_wakes: 0,
        }
    }

    pub(crate) fn note_pushed(&mut self, kind: usize) {
        self.entries[kind].pushed += 1;
    }

    pub(crate) fn note_pushed_n(&mut self, kind: usize, n: u64) {
        self.entries[kind].pushed += n;
    }

    pub(crate) fn note_delivered(&mut self, kind: usize) {
        self.entries[kind].delivered += 1;
    }

    pub(crate) fn note_cancelled(&mut self, kind: usize) {
        self.entries[kind].cancelled += 1;
    }

    pub(crate) fn note_noop_wake(&mut self) {
        self.noop_wakes += 1;
    }

    /// Per-kind counters, in the event loop's kind order.
    pub fn entries(&self) -> &[EventMixEntry] {
        &self.entries
    }

    /// The entry for a kind label, if that kind exists.
    pub fn entry(&self, kind: &str) -> Option<&EventMixEntry> {
        self.entries.iter().find(|e| e.kind == kind)
    }

    /// Total events pushed across all kinds.
    pub fn pushed(&self) -> u64 {
        self.entries.iter().map(|e| e.pushed).sum()
    }

    /// Total events delivered across all kinds.
    pub fn delivered(&self) -> u64 {
        self.entries.iter().map(|e| e.delivered).sum()
    }

    /// Total events cancelled across all kinds.
    pub fn cancelled(&self) -> u64 {
        self.entries.iter().map(|e| e.cancelled).sum()
    }

    /// Events still scheduled (pushed but neither delivered nor cancelled).
    pub fn live(&self) -> u64 {
        self.pushed() - self.delivered() - self.cancelled()
    }

    /// Worker wakes that were delivered but found nothing actionable (no
    /// action started, no completion finished). A healthy event loop keeps
    /// this a small fraction of delivered events; before the wake-chain fix
    /// it was ~95 % of all events in the fleet scenario.
    pub fn noop_wakes(&self) -> u64 {
        self.noop_wakes
    }
}

/// Outcome counters for one service tier.
///
/// Graceful degradation is judged by comparing these across tiers: under
/// overload the strict tier should retain a larger fraction of its traffic
/// than the best-effort tier (which is shed first).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierOutcomes {
    /// Requests of this tier that arrived at the controller.
    pub submitted: u64,
    /// Requests that returned a successful inference.
    pub successes: u64,
    /// Successful requests that met their SLO.
    pub goodput: u64,
    /// Requests rejected (all reasons, shedding included).
    pub rejected: u64,
    /// Requests shed by tier-aware admission
    /// ([`RejectReason::BestEffortShed`]).
    pub shed: u64,
}

impl TierOutcomes {
    /// Fraction of this tier's submitted requests that met their SLO — the
    /// per-tier analogue of workload satisfaction, called *retention* in the
    /// scenario-matrix tables. 1.0 when the tier saw no traffic.
    pub fn retention(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.goodput as f64 / self.submitted as f64
    }
}

/// Aggregated metrics of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentMetrics {
    /// Total requests submitted to the controller.
    pub total_requests: u64,
    /// Requests that returned a successful inference.
    pub successes: u64,
    /// Successful requests that met their SLO (goodput).
    pub goodput: u64,
    /// Requests rejected, by reason.
    pub rejections: HashMap<&'static str, u64>,
    /// Latency distribution of all completed requests.
    pub latency: LatencyHistogram,
    /// Latency distribution of only the requests that met their SLO.
    pub goodput_latency: LatencyHistogram,
    /// Mean batch size over all successful requests.
    pub mean_batch: f64,
    /// Number of successful requests served from a cold model.
    pub cold_starts: u64,
    /// Duration of the experiment (last event seen).
    pub horizon: Timestamp,
    /// Per-tier outcome breakdown, indexed by [`Tier::index`].
    pub tiers: [TierOutcomes; Tier::COUNT],
}

impl ExperimentMetrics {
    /// Fraction of all requests that met their SLO ("workload satisfaction",
    /// Fig. 7).
    pub fn satisfaction(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.goodput as f64 / self.total_requests as f64
    }

    /// Goodput in requests per second over the experiment horizon.
    pub fn goodput_rate(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.goodput as f64 / secs
    }

    /// Throughput (successful responses, SLO-met or not) in requests per
    /// second.
    pub fn throughput_rate(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.successes as f64 / secs
    }

    /// Fraction of successful requests that were cold starts.
    pub fn cold_start_fraction(&self) -> f64 {
        if self.successes == 0 {
            return 0.0;
        }
        self.cold_starts as f64 / self.successes as f64
    }

    /// The outcome counters of one tier.
    pub fn tier(&self, tier: Tier) -> &TierOutcomes {
        &self.tiers[tier.index()]
    }
}

/// Collects per-request outcomes and time series during a run.
#[derive(Clone, Debug)]
pub struct SystemTelemetry {
    keep_responses: bool,
    responses: Vec<Response>,
    total_requests: u64,
    successes: u64,
    goodput: u64,
    cold_starts: u64,
    rejections: HashMap<&'static str, u64>,
    latency: LatencyHistogram,
    goodput_latency: LatencyHistogram,
    batch_sizes: Summary,
    /// Requests submitted per second.
    pub request_series: TimeSeries,
    /// Successful responses per second.
    pub throughput_series: TimeSeries,
    /// SLO-met responses per second.
    pub goodput_series: TimeSeries,
    /// Cold-start responses per second.
    pub cold_start_series: TimeSeries,
    /// Mean batch size per second (gauge).
    pub batch_series: TimeSeries,
    /// Latency (ms) samples per second (gauge, for max/percentile plots).
    pub latency_series: TimeSeries,
    per_model_success: HashMap<ModelId, u64>,
    /// Per-tier outcome counters, indexed by [`Tier::index`]. Deliberately
    /// NOT folded into the determinism digest: the tier annotation must not
    /// change the digest of a run whose scheduling decisions are unchanged.
    tiers: [TierOutcomes; Tier::COUNT],
    faults: Vec<FaultRecord>,
    /// Event-mix counters, maintained by the driving event loop.
    pub(crate) event_mix: EventMix,
    /// Scheduler ticks that ran a full pass, counted from the
    /// [`TickOutcome`](clockwork_controller::TickOutcome) each delivered
    /// tick reports.
    sched_ticks_full: u64,
    /// Scheduler ticks answered by the early-out.
    sched_ticks_skipped: u64,
    horizon: Timestamp,
    digest: u64,
}

impl Default for SystemTelemetry {
    fn default() -> Self {
        Self::new(true)
    }
}

impl SystemTelemetry {
    /// Creates an empty telemetry collector.
    pub fn new(keep_responses: bool) -> Self {
        SystemTelemetry {
            keep_responses,
            responses: Vec::new(),
            total_requests: 0,
            successes: 0,
            goodput: 0,
            cold_starts: 0,
            rejections: HashMap::new(),
            latency: LatencyHistogram::new(),
            goodput_latency: LatencyHistogram::new(),
            batch_sizes: Summary::new(),
            request_series: TimeSeries::per_second(),
            throughput_series: TimeSeries::per_second(),
            goodput_series: TimeSeries::per_second(),
            cold_start_series: TimeSeries::per_second(),
            batch_series: TimeSeries::per_second(),
            latency_series: TimeSeries::per_second(),
            per_model_success: HashMap::new(),
            tiers: [TierOutcomes::default(); Tier::COUNT],
            faults: Vec::new(),
            event_mix: EventMix::default(),
            sched_ticks_full: 0,
            sched_ticks_skipped: 0,
            horizon: Timestamp::ZERO,
            digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    /// The event-mix breakdown (pushed/delivered/cancelled per event kind)
    /// the driving event loop maintained during the run.
    pub fn event_mix(&self) -> &EventMix {
        &self.event_mix
    }

    /// Counts one delivered scheduler tick by what it did (`full` ran the
    /// whole pass, otherwise it early-outed).
    pub(crate) fn note_tick_outcome(&mut self, full: bool) {
        if full {
            self.sched_ticks_full += 1;
        } else {
            self.sched_ticks_skipped += 1;
        }
    }

    /// Delivered scheduler ticks that ran a full pass.
    pub fn sched_ticks_full(&self) -> u64 {
        self.sched_ticks_full
    }

    /// Delivered scheduler ticks answered by the early-out. A healthy
    /// incremental scheduler keeps this small: most skippable ticks are
    /// never scheduled at all (`next_tick` returns the first productive
    /// grid point), so only races between a queued tick and an intervening
    /// event land here.
    pub fn sched_ticks_skipped(&self) -> u64 {
        self.sched_ticks_skipped
    }

    fn digest_fold(&mut self, value: u64) {
        // FNV-1a over the 8 bytes of `value`.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.digest;
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        self.digest = h;
    }

    /// An order-sensitive FNV-1a digest over every response the controller
    /// produced (request id, model, outcome kind, timing, placement).
    ///
    /// Two runs of the same configuration with the same seed must report the
    /// same digest — the golden-digest test and the fleet-scale perf harness
    /// both use this to pin down that optimisations did not change
    /// scheduling decisions.
    pub fn response_digest(&self) -> u64 {
        self.digest
    }

    fn advance(&mut self, t: Timestamp) {
        if t > self.horizon && t != Timestamp::MAX {
            self.horizon = t;
        }
    }

    /// Records that a request arrived at the controller.
    pub fn record_arrival(&mut self, at: Timestamp, tier: Tier) {
        self.total_requests += 1;
        self.tiers[tier.index()].submitted += 1;
        self.request_series.record_event(at);
        self.advance(at);
    }

    /// Records a response returned to a client, attributed to
    /// [`Tier::Strict`]. Callers that know the tier (the facade event loop)
    /// use [`SystemTelemetry::record_response_with_tier`].
    pub fn record_response(&mut self, response: &Response) {
        self.record_response_with_tier(response, Tier::Strict);
    }

    /// Records a response returned to a client of a known tier.
    pub fn record_response_with_tier(&mut self, response: &Response, tier: Tier) {
        self.digest_fold(response.request.0);
        self.digest_fold(u64::from(response.model.0));
        match &response.outcome {
            RequestOutcome::Success {
                completed,
                batch,
                worker,
                gpu,
                cold_start,
            } => {
                self.digest_fold(1);
                self.digest_fold(completed.as_nanos());
                self.digest_fold(u64::from(*batch));
                self.digest_fold(u64::from(worker.0));
                self.digest_fold(u64::from(gpu.0));
                self.digest_fold(u64::from(*cold_start));
                self.successes += 1;
                self.tiers[tier.index()].successes += 1;
                let latency = *completed - response.arrival;
                self.latency.record(latency);
                self.latency_series
                    .record_value(*completed, latency.as_millis_f64());
                self.throughput_series.record_event(*completed);
                self.batch_sizes.record(f64::from(*batch));
                self.batch_series
                    .record_value(*completed, f64::from(*batch));
                if *cold_start {
                    self.cold_starts += 1;
                    self.cold_start_series.record_event(*completed);
                }
                if response.met_slo() {
                    self.goodput += 1;
                    self.tiers[tier.index()].goodput += 1;
                    self.goodput_latency.record(latency);
                    self.goodput_series.record_event(*completed);
                }
                *self.per_model_success.entry(response.model).or_insert(0) += 1;
                self.advance(*completed);
            }
            RequestOutcome::Rejected { at, reason } => {
                self.digest_fold(2);
                self.digest_fold(at.as_nanos());
                self.digest_fold(*reason as u64);
                *self.rejections.entry(reason.as_str()).or_insert(0) += 1;
                self.tiers[tier.index()].rejected += 1;
                if *reason == RejectReason::BestEffortShed {
                    self.tiers[tier.index()].shed += 1;
                }
                self.advance(*at);
            }
        }
        if self.keep_responses {
            self.responses.push(*response);
        }
    }

    /// Records a fleet fault: folds it into the determinism digest (fault
    /// plans are part of the configuration, so two runs only compare equal
    /// when their fault histories match) and keeps the availability record
    /// that chaos experiments report per phase.
    pub fn record_fault(
        &mut self,
        at: Timestamp,
        kind: &FaultKind,
        alive_gpus: u32,
        total_gpus: u32,
    ) {
        self.digest_fold(3);
        self.digest_fold(kind.digest_code());
        self.digest_fold(u64::from(kind.worker()));
        self.digest_fold(kind.aux());
        self.digest_fold(at.as_nanos());
        self.digest_fold(u64::from(alive_gpus));
        self.faults.push(FaultRecord {
            at,
            kind: *kind,
            alive_gpus,
            total_gpus,
        });
        self.advance(at);
    }

    /// Every fault observed so far, in delivery order.
    pub fn fault_records(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// The lowest fleet availability seen across all faults (1.0 if none).
    pub fn min_availability(&self) -> f64 {
        self.faults
            .iter()
            .map(FaultRecord::availability)
            .fold(1.0, f64::min)
    }

    /// The fleet availability after the last fault (1.0 if none fired).
    pub fn final_availability(&self) -> f64 {
        self.faults
            .last()
            .map(FaultRecord::availability)
            .unwrap_or(1.0)
    }

    fn series_count_between(series: &TimeSeries, from: Timestamp, to: Timestamp) -> u64 {
        if to < from {
            return 0;
        }
        let interval = series.interval().as_nanos().max(1);
        let first = (from.as_nanos() / interval) as usize;
        let last = (to.as_nanos() / interval) as usize;
        (first..=last).map(|i| series.count_at(i)).sum()
    }

    /// SLO-met responses completed in `[from, to]`, at the resolution of the
    /// per-second goodput series — the phase metric of the chaos harness.
    pub fn goodput_between(&self, from: Timestamp, to: Timestamp) -> u64 {
        Self::series_count_between(&self.goodput_series, from, to)
    }

    /// Requests that arrived at the controller in `[from, to]`, at the
    /// resolution of the per-second arrival series.
    pub fn arrivals_between(&self, from: Timestamp, to: Timestamp) -> u64 {
        Self::series_count_between(&self.request_series, from, to)
    }

    /// All individual responses (empty if `keep_responses` was disabled).
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// End-to-end latency distribution of completed requests.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Successful-response counts per model.
    pub fn per_model_successes(&self) -> &HashMap<ModelId, u64> {
        &self.per_model_success
    }

    /// Per-tier outcome counters, indexed by [`Tier::index`].
    pub fn tier_outcomes(&self) -> &[TierOutcomes; Tier::COUNT] {
        &self.tiers
    }

    /// Latency of all completed requests at a percentile.
    pub fn latency_percentile(&self, p: f64) -> Nanos {
        self.latency.percentile(p)
    }

    /// Finalises the aggregate metrics.
    pub fn metrics(&self) -> ExperimentMetrics {
        ExperimentMetrics {
            total_requests: self.total_requests,
            successes: self.successes,
            goodput: self.goodput,
            rejections: self.rejections.clone(),
            latency: self.latency.clone(),
            goodput_latency: self.goodput_latency.clone(),
            mean_batch: self.batch_sizes.mean(),
            cold_starts: self.cold_starts,
            horizon: self.horizon,
            tiers: self.tiers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::request::{RejectReason, RequestId};
    use clockwork_worker::{GpuId, WorkerId};

    fn success(arrival_ms: u64, completed_ms: u64, deadline_ms: u64, cold: bool) -> Response {
        Response {
            request: RequestId(arrival_ms),
            model: ModelId(1),
            arrival: Timestamp::from_millis(arrival_ms),
            deadline: Timestamp::from_millis(deadline_ms),
            outcome: RequestOutcome::Success {
                completed: Timestamp::from_millis(completed_ms),
                batch: 4,
                worker: WorkerId(0),
                gpu: GpuId(0),
                cold_start: cold,
            },
        }
    }

    #[test]
    fn aggregates_follow_responses() {
        let mut t = SystemTelemetry::new(true);
        t.record_arrival(Timestamp::from_millis(0), Tier::Strict);
        t.record_arrival(Timestamp::from_millis(1), Tier::Strict);
        t.record_arrival(Timestamp::from_millis(2), Tier::Strict);
        t.record_response(&success(0, 10, 100, false)); // met SLO
        t.record_response(&success(1, 500, 100, true)); // missed SLO
        t.record_response(&Response {
            request: RequestId(3),
            model: ModelId(1),
            arrival: Timestamp::from_millis(2),
            deadline: Timestamp::from_millis(50),
            outcome: RequestOutcome::Rejected {
                at: Timestamp::from_millis(2),
                reason: RejectReason::CannotMeetSlo,
            },
        });
        let m = t.metrics();
        assert_eq!(m.total_requests, 3);
        assert_eq!(m.successes, 2);
        assert_eq!(m.goodput, 1);
        assert_eq!(m.cold_starts, 1);
        assert!((m.satisfaction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.rejections.get("cannot_meet_slo"), Some(&1));
        assert_eq!(m.mean_batch, 4.0);
        assert!((m.cold_start_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(t.responses().len(), 3);
        assert_eq!(t.per_model_successes().get(&ModelId(1)), Some(&2));
        assert!(m.goodput_rate() > 0.0);
        assert!(m.throughput_rate() >= m.goodput_rate());
    }

    #[test]
    fn keep_responses_flag_controls_raw_storage() {
        let mut t = SystemTelemetry::new(false);
        t.record_arrival(Timestamp::ZERO, Tier::Strict);
        t.record_response(&success(0, 10, 100, false));
        assert!(t.responses().is_empty());
        assert_eq!(t.metrics().successes, 1);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let t = SystemTelemetry::default();
        let m = t.metrics();
        assert_eq!(m.satisfaction(), 0.0);
        assert_eq!(m.goodput_rate(), 0.0);
        assert_eq!(m.cold_start_fraction(), 0.0);
    }

    #[test]
    fn fault_records_fold_into_the_digest_and_track_availability() {
        let mut quiet = SystemTelemetry::new(false);
        let mut faulted = SystemTelemetry::new(false);
        quiet.record_response(&success(0, 10, 100, false));
        faulted.record_response(&success(0, 10, 100, false));
        assert_eq!(quiet.response_digest(), faulted.response_digest());
        faulted.record_fault(
            Timestamp::from_millis(20),
            &FaultKind::WorkerCrash { worker: 3 },
            76,
            80,
        );
        assert_ne!(
            quiet.response_digest(),
            faulted.response_digest(),
            "a fault must change the digest"
        );
        faulted.record_fault(
            Timestamp::from_millis(30),
            &FaultKind::WorkerRestart { worker: 3 },
            80,
            80,
        );
        assert_eq!(faulted.fault_records().len(), 2);
        assert!((faulted.min_availability() - 0.95).abs() < 1e-9);
        assert!((faulted.final_availability() - 1.0).abs() < 1e-9);
        assert!(faulted.fault_records()[0].kind.worker() == 3);
    }

    #[test]
    fn phase_windows_sum_the_per_second_series() {
        let mut t = SystemTelemetry::new(false);
        for s in 0..10u64 {
            t.record_arrival(Timestamp::from_secs(s), Tier::Strict);
            t.record_response(&success(s * 1000, s * 1000 + 10, s * 1000 + 100, false));
        }
        assert_eq!(
            t.goodput_between(Timestamp::ZERO, Timestamp::from_secs(9)),
            10
        );
        assert_eq!(
            t.goodput_between(Timestamp::from_secs(2), Timestamp::from_secs(4)),
            3
        );
        assert_eq!(
            t.arrivals_between(Timestamp::from_secs(5), Timestamp::from_secs(5)),
            1
        );
        assert_eq!(
            t.goodput_between(Timestamp::from_secs(9), Timestamp::from_secs(2)),
            0,
            "inverted windows are empty"
        );
    }

    #[test]
    fn tier_breakdown_tracks_outcomes_without_touching_the_digest() {
        let mut strict = SystemTelemetry::new(false);
        let mut tiered = SystemTelemetry::new(false);
        strict.record_arrival(Timestamp::ZERO, Tier::Strict);
        tiered.record_arrival(Timestamp::ZERO, Tier::BestEffort);
        strict.record_response(&success(0, 10, 100, false));
        tiered.record_response_with_tier(&success(0, 10, 100, false), Tier::BestEffort);
        assert_eq!(
            strict.response_digest(),
            tiered.response_digest(),
            "the tier annotation must not alter the determinism digest"
        );
        let m = tiered.metrics();
        assert_eq!(m.tier(Tier::BestEffort).submitted, 1);
        assert_eq!(m.tier(Tier::BestEffort).goodput, 1);
        assert_eq!(m.tier(Tier::Strict).submitted, 0);
        assert!((m.tier(Tier::BestEffort).retention() - 1.0).abs() < 1e-9);

        let mut shed = SystemTelemetry::new(false);
        shed.record_arrival(Timestamp::ZERO, Tier::BestEffort);
        shed.record_response_with_tier(
            &Response {
                request: RequestId(7),
                model: ModelId(1),
                arrival: Timestamp::ZERO,
                deadline: Timestamp::from_millis(50),
                outcome: RequestOutcome::Rejected {
                    at: Timestamp::from_millis(1),
                    reason: RejectReason::BestEffortShed,
                },
            },
            Tier::BestEffort,
        );
        let be = shed.tier_outcomes()[Tier::BestEffort.index()];
        assert_eq!(be.rejected, 1);
        assert_eq!(be.shed, 1);
        assert_eq!(be.retention(), 0.0);
        assert_eq!(
            shed.metrics().rejections.get("best_effort_shed"),
            Some(&1),
            "shedding shows up in the global rejection breakdown too"
        );
    }

    #[test]
    fn latency_percentiles_track_recorded_values() {
        let mut t = SystemTelemetry::new(false);
        for i in 1..=100u64 {
            t.record_arrival(Timestamp::ZERO, Tier::Strict);
            t.record_response(&success(0, i, 1_000, false));
        }
        let p50 = t.latency_percentile(50.0).as_millis_f64();
        assert!((p50 - 50.0).abs() < 3.0, "p50 {p50}");
    }
}
