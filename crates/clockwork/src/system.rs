//! The serving system: controller + workers + network in one event loop.
//!
//! [`SystemBuilder`] assembles a cluster from a [`SystemConfig`];
//! [`ServingSystem`] then runs it in virtual time. Requests enter either from
//! a pre-generated [`Trace`] (open-loop and Azure-like workloads) or from
//! interactive [`ClosedLoopClient`]s; actions and results travel over the
//! simulated network; workers execute them with the timing models of
//! `clockwork-sim`; and every response is folded into [`SystemTelemetry`].
//!
//! The event loop mirrors the deployment of the paper: clients, controller
//! and workers are distinct machines, every hop pays a network delay, and the
//! controller is the only component that makes decisions.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use clockwork_controller::registry::{ClockworkFactory, SchedulerFactory};
use clockwork_controller::request::{InferenceRequest, RequestId, RequestOutcome, Response};
use clockwork_controller::scheduler::{Scheduler, SchedulerCtx, TickOutcome};
use clockwork_controller::worker_state::GpuRef;
use clockwork_controller::SchedProfile;
use clockwork_faults::FaultPlan;
use clockwork_metrics::trace::{RingTracer, TraceEvent, Tracer};
use clockwork_model::{ModelId, ModelSpec, Tier};
use clockwork_sim::engine::{EventId, EventQueue, FaultKind};
use clockwork_sim::network::NetworkModel;
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_worker::telemetry::MemberCompletion;
use clockwork_worker::{
    Action, ActionKind, ActionOutcome, ActionResult, ExecMode, GpuId, Worker, WorkerConfig,
    WorkerId,
};
use clockwork_workload::{ClosedLoopClient, Trace};

use crate::config::SystemConfig;
use crate::telemetry::SystemTelemetry;

/// Builder for a [`ServingSystem`].
///
/// The discipline is supplied as a [`SchedulerFactory`] — the facade only
/// knows the [`Scheduler`] trait, so any registered discipline (built-in,
/// baseline, or user-provided) plugs in the same way. Without an explicit
/// [`SystemBuilder::discipline`] call the Clockwork scheduler with its
/// default configuration is used.
#[derive(Default)]
pub struct SystemBuilder {
    config: SystemConfig,
    factory: Option<Box<dyn SchedulerFactory>>,
}

impl SystemBuilder {
    /// Starts from the default configuration (one worker, one GPU, the
    /// Clockwork scheduler, an ideal 100 µs network).
    pub fn new() -> Self {
        SystemBuilder::default()
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: SystemConfig) -> Self {
        SystemBuilder {
            config,
            factory: None,
        }
    }

    /// Sets the number of workers.
    pub fn workers(mut self, workers: u32) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the number of GPUs per worker.
    pub fn gpus_per_worker(mut self, gpus: u32) -> Self {
        self.config.gpus_per_worker = gpus;
        self
    }

    /// Sets the serving discipline via its factory.
    pub fn discipline(mut self, factory: Box<dyn SchedulerFactory>) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Sets the per-GPU weights cache size in bytes.
    pub fn weights_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.weights_cache_bytes = bytes;
        self
    }

    /// Applies an external-variance profile to every worker.
    pub fn variance(mut self, variance: clockwork_sim::variance::VarianceConfig) -> Self {
        self.config.variance = variance;
        self
    }

    /// Overrides the worker execution mode.
    pub fn exec_mode(mut self, mode: clockwork_worker::ExecMode) -> Self {
        self.config.exec_mode = Some(mode);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Disables raw per-response storage (for very large traces).
    pub fn drop_raw_responses(mut self) -> Self {
        self.config.keep_responses = false;
        self
    }

    /// Schedules a fault plan: fleet churn (worker crashes, GPU failures,
    /// link degradation, partitions and elastic worker joins) compiled into
    /// simulation events. Every discipline is fault-aware — Clockwork and
    /// the baselines alike resolve dead capacity and re-admit recovered
    /// capacity cold — so any plan may be combined with any scheduler.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Builds the system.
    pub fn build(self) -> ServingSystem {
        match self.factory {
            Some(factory) => ServingSystem::with_factory(self.config, factory.as_ref()),
            None => ServingSystem::new(self.config),
        }
    }
}

enum SystemEvent {
    /// A request leaves a client (trace replay or closed-loop resubmission).
    ClientSubmit {
        model: ModelId,
        slo: Nanos,
        tier: Tier,
        client: Option<usize>,
    },
    /// The request reaches the controller.
    ControllerRequest { request: InferenceRequest },
    /// An action reaches a worker.
    WorkerAction { worker: usize, action: Action },
    /// A worker may have work to process at this time.
    WorkerWake { worker: usize },
    /// A result reaches the controller.
    ControllerResult { result: ActionResult },
    /// A response reaches the client that issued the request.
    ClientResponse {
        response: Response,
        client: Option<usize>,
    },
    /// A dynamically uploaded model's weights finish arriving at the workers
    /// (§5.1 "dynamic model loading over the network").
    ModelUpload { id: ModelId, spec: Arc<ModelSpec> },
    /// Periodic scheduler tick.
    SchedulerTick,
    /// A scheduled fleet fault fires.
    Fault { kind: FaultKind },
}

// Dense event-kind indices for the telemetry event-mix counters. Kept as
// consts (not an enum discriminant read) so the cancel paths, which know
// their kind statically, pay no match.
const KIND_CLIENT_SUBMIT: usize = 0;
const KIND_CONTROLLER_REQUEST: usize = 1;
const KIND_WORKER_ACTION: usize = 2;
const KIND_WORKER_WAKE: usize = 3;
const KIND_CONTROLLER_RESULT: usize = 4;
const KIND_CLIENT_RESPONSE: usize = 5;
const KIND_MODEL_UPLOAD: usize = 6;
const KIND_SCHEDULER_TICK: usize = 7;
const KIND_FAULT: usize = 8;

impl SystemEvent {
    /// Kind labels in `kind_index` order (the telemetry event-mix order).
    const KIND_LABELS: [&'static str; 9] = [
        "client_submit",
        "controller_request",
        "worker_action",
        "worker_wake",
        "controller_result",
        "client_response",
        "model_upload",
        "scheduler_tick",
        "fault",
    ];

    fn kind_index(&self) -> usize {
        match self {
            SystemEvent::ClientSubmit { .. } => KIND_CLIENT_SUBMIT,
            SystemEvent::ControllerRequest { .. } => KIND_CONTROLLER_REQUEST,
            SystemEvent::WorkerAction { .. } => KIND_WORKER_ACTION,
            SystemEvent::WorkerWake { .. } => KIND_WORKER_WAKE,
            SystemEvent::ControllerResult { .. } => KIND_CONTROLLER_RESULT,
            SystemEvent::ClientResponse { .. } => KIND_CLIENT_RESPONSE,
            SystemEvent::ModelUpload { .. } => KIND_MODEL_UPLOAD,
            SystemEvent::SchedulerTick => KIND_SCHEDULER_TICK,
            SystemEvent::Fault { .. } => KIND_FAULT,
        }
    }
}

/// Condition of one controller↔worker link, adjusted by fault events.
struct LinkState {
    /// Delay multiplier in thousandths (1000 = healthy).
    factor_milli: u64,
    /// Whether the link is partitioned. Partitioned messages are held, not
    /// lost: real networks buffer and retry, and losing them would break the
    /// exactly-once response accounting the controller maintains.
    partitioned: bool,
    /// Messages held during the partition, with the residual network delay
    /// they still owe once the partition heals.
    held: Vec<(Nanos, SystemEvent)>,
}

impl LinkState {
    fn healthy() -> Self {
        LinkState {
            factor_milli: 1000,
            partitioned: false,
            held: Vec::new(),
        }
    }

    /// Scales a base network delay by the link's degradation factor.
    fn scale(&self, base: Nanos) -> Nanos {
        if self.factor_milli == 1000 {
            base
        } else {
            Nanos::from_nanos(base.as_nanos().saturating_mul(self.factor_milli) / 1000)
        }
    }
}

/// A running serving cluster in virtual time.
pub struct ServingSystem {
    config: SystemConfig,
    scheduler: Box<dyn Scheduler>,
    /// The execution mode workers run with (resolved from the discipline's
    /// default and any [`SystemConfig::exec_mode`] override); workers that
    /// join at runtime are admitted with the same mode.
    exec_mode: ExecMode,
    ctx: SchedulerCtx,
    workers: Vec<Worker>,
    /// Handle of the one queued wake per worker: `(due, event id)`. A wake
    /// that needs to move — earlier because new work arrived, later or away
    /// because a fault took work with it — cancels this entry instead of
    /// piling a duplicate onto the chain.
    worker_wake_scheduled: Vec<Option<(Timestamp, EventId)>>,
    /// Handle of the one queued scheduler tick, same discipline.
    tick_scheduled: Option<(Timestamp, EventId)>,
    network: NetworkModel,
    queue: EventQueue<SystemEvent>,
    telemetry: SystemTelemetry,
    clients: Vec<ClosedLoopClient>,
    request_owner: HashMap<RequestId, usize>,
    /// Ids of in-flight best-effort requests. Strict requests (the default
    /// and the entire population of legacy scenarios) are never inserted,
    /// so the set stays empty and costs one lookup per response at most.
    best_effort: HashSet<RequestId>,
    models: HashMap<ModelId, Arc<ModelSpec>>,
    /// Dense worker lookup by id, so routing an action is one hash probe
    /// instead of a scan over the fleet.
    worker_index: HashMap<WorkerId, usize>,
    /// Per-worker controller↔worker link condition (degradation/partition).
    links: Vec<LinkState>,
    /// Reusable buffers the scheduler outputs are drained into each pass.
    action_buf: Vec<(WorkerId, Action)>,
    response_buf: Vec<Response>,
    result_buf: Vec<ActionResult>,
    /// The lifecycle tracer, when [`SystemConfig::trace_capacity`] asked for
    /// one. `None` is the no-op path: no event is ever built and the run is
    /// byte-identical to an untraced build.
    tracer: Option<Box<RingTracer>>,
    /// Per-worker cursor into [`WorkerTelemetry::members_recorded`]
    /// (`clockwork_worker::telemetry`): how many member completions of that
    /// worker the tracer has already observed. The gap between a poll's
    /// count and this cursor is the tail to emit; any part of the gap the
    /// bounded member ring no longer holds is counted as dropped spans.
    member_seen: Vec<u64>,
    /// Reusable drain buffers for scheduler-emitted trace events and member
    /// completion tails (only touched on traced runs).
    trace_buf: Vec<TraceEvent>,
    member_buf: Vec<MemberCompletion>,
    /// Request ids whose estimate-bearing `Rejected` span the scheduler
    /// emitted in the current drain pass; the facade skips its own
    /// estimate-free span for these so every rejection traces exactly once.
    sched_rejected: Vec<u64>,
    events_processed: u64,
    next_model_id: u32,
    next_request_id: u64,
    now: Timestamp,
}

impl ServingSystem {
    /// Creates a system from a configuration, with the default discipline
    /// (the Clockwork scheduler in its default configuration).
    pub fn new(config: SystemConfig) -> Self {
        ServingSystem::with_factory(config, &ClockworkFactory::default())
    }

    /// Creates a system from a configuration and a discipline factory. The
    /// workers' execution mode is the factory's default unless
    /// [`SystemConfig::exec_mode`] overrides it.
    pub fn with_factory(config: SystemConfig, factory: &dyn SchedulerFactory) -> Self {
        let exec_mode = config.exec_mode.unwrap_or(factory.default_exec_mode());
        ServingSystem::assemble(config, factory.build(), exec_mode)
    }

    /// Assembles the cluster around an already-built scheduler.
    fn assemble(
        config: SystemConfig,
        mut scheduler: Box<dyn Scheduler>,
        exec_mode: ExecMode,
    ) -> Self {
        let rng = SimRng::seeded(config.seed);
        let workers: Vec<Worker> = (0..config.workers)
            .map(|w| {
                let wc = WorkerConfig::new(WorkerId(w))
                    .with_gpus(config.gpus_per_worker)
                    .with_exec_mode(exec_mode)
                    .with_variance(config.variance)
                    .with_weights_cache(config.weights_cache_bytes)
                    .with_seed(config.seed ^ (u64::from(w) << 16));
                Worker::new(wc)
            })
            .collect();
        for worker in &workers {
            for g in 0..worker.num_gpus() {
                scheduler.add_gpu(
                    GpuRef {
                        worker: worker.id(),
                        gpu: GpuId(g),
                    },
                    worker.total_pages(GpuId(g)),
                    worker.config().page_size,
                );
            }
        }
        let mut telemetry = SystemTelemetry::new(config.keep_responses);
        telemetry.event_mix = crate::telemetry::EventMix::with_kinds(&SystemEvent::KIND_LABELS);
        let worker_count = workers.len();
        let worker_index = workers
            .iter()
            .enumerate()
            .map(|(i, w)| (w.id(), i))
            .collect();
        // Compile the fault plan into simulation events up front; the plan
        // is sorted, and same-time faults keep their plan order.
        let mut queue = EventQueue::new();
        for event in config.faults.events() {
            telemetry.event_mix.note_pushed(KIND_FAULT);
            queue.push(event.at, SystemEvent::Fault { kind: event.kind });
        }
        let tracer = config
            .trace_capacity
            .map(|cap| Box::new(RingTracer::new(cap)));
        let mut ctx = SchedulerCtx::new();
        ctx.set_tracing(tracer.is_some());
        ServingSystem {
            network: NetworkModel::new(config.network, rng.derive(1)),
            scheduler,
            exec_mode,
            ctx,
            workers,
            worker_wake_scheduled: vec![None; worker_count],
            tick_scheduled: None,
            queue,
            telemetry,
            clients: Vec::new(),
            request_owner: HashMap::new(),
            best_effort: HashSet::new(),
            models: HashMap::new(),
            worker_index,
            links: (0..worker_count).map(|_| LinkState::healthy()).collect(),
            action_buf: Vec::new(),
            response_buf: Vec::new(),
            result_buf: Vec::new(),
            tracer,
            member_seen: vec![0; worker_count],
            trace_buf: Vec::new(),
            member_buf: Vec::new(),
            sched_rejected: Vec::new(),
            events_processed: 0,
            next_model_id: 0,
            next_request_id: 0,
            now: Timestamp::ZERO,
            config,
        }
    }

    /// The configuration of this system.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The telemetry collected so far.
    pub fn telemetry(&self) -> &SystemTelemetry {
        &self.telemetry
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Read access to the workers (for utilization reporting).
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The configured discipline's name (e.g. `"clockwork"`, `"clipper"`),
    /// as reported by [`Scheduler::name`].
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The execution mode the workers run with.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// The scheduler's self-profiling counters with the facade's
    /// authoritative tick counts folded in: the scheduler reports what its
    /// passes scanned and recomputed, the facade counts every delivered
    /// tick by its [`TickOutcome`] (which also covers disciplines without
    /// an incremental core).
    pub fn sched_profile(&self) -> SchedProfile {
        SchedProfile {
            ticks_full: self.telemetry.sched_ticks_full(),
            ticks_skipped: self.telemetry.sched_ticks_skipped(),
            ..self.scheduler.sched_profile()
        }
    }

    /// The lifecycle tracer, when this run was assembled with
    /// [`SystemConfig::trace_capacity`] set. Experiments read the recorded
    /// spans, JSONL export and drop counter through this.
    pub fn tracer(&self) -> Option<&RingTracer> {
        self.tracer.as_deref()
    }

    /// Records one lifecycle span at the current virtual time. A single
    /// `Option` branch when tracing is off — every emission site that must
    /// *build* something (clone a member list, walk a log) additionally
    /// guards on `self.tracer.is_some()` so the untraced path allocates
    /// nothing.
    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record(self.now.as_nanos(), event);
        }
    }

    /// Emits the issue-side spans of an action leaving the controller:
    /// `BatchFormed` + `InferIssued` for INFERs, `LoadIssued` for LOADs.
    /// Only called on traced runs.
    fn trace_action_issue(&mut self, worker: WorkerId, action: &Action) {
        match &action.kind {
            ActionKind::Infer {
                model,
                batch,
                request_ids,
            } => {
                self.trace(TraceEvent::BatchFormed {
                    action: action.id.0,
                    model: model.0,
                    worker: worker.0,
                    gpu: action.gpu.0,
                    size: *batch,
                    members: request_ids.clone(),
                });
                self.trace(TraceEvent::InferIssued {
                    action: action.id.0,
                    model: model.0,
                    worker: worker.0,
                    gpu: action.gpu.0,
                    batch: *batch,
                    est: action.expected_duration.as_nanos(),
                });
            }
            ActionKind::Load { model } => {
                self.trace(TraceEvent::LoadIssued {
                    action: action.id.0,
                    model: model.0,
                    worker: worker.0,
                    gpu: action.gpu.0,
                    est: action.expected_duration.as_nanos(),
                });
            }
            ActionKind::Unload { .. } => {}
        }
    }

    /// Emits the completion-side span of a worker result reaching the
    /// controller (`InferDone`/`LoadDone` with the est-vs-actual pair).
    /// Only called on traced runs.
    fn trace_result(&mut self, result: &ActionResult) {
        let (actual, start, end, ok) = match &result.outcome {
            ActionOutcome::Success(t) => (
                t.device_duration.as_nanos(),
                t.start.as_nanos(),
                t.end.as_nanos(),
                true,
            ),
            ActionOutcome::Error { .. } => (0, 0, 0, false),
        };
        match result.action_type {
            "INFER" => self.trace(TraceEvent::InferDone {
                action: result.action_id.0,
                model: result.model.0,
                worker: result.worker.0,
                gpu: result.gpu.0,
                batch: result.batch,
                est: result.expected_duration.as_nanos(),
                actual,
                start,
                end,
                ok,
            }),
            "LOAD" => self.trace(TraceEvent::LoadDone {
                action: result.action_id.0,
                model: result.model.0,
                worker: result.worker.0,
                gpu: result.gpu.0,
                est: result.expected_duration.as_nanos(),
                actual,
                end,
                cold: true,
                ok,
            }),
            _ => {}
        }
    }

    /// Emits the terminal span of a response leaving the controller:
    /// `Completed`/`DeadlineMissed` for successes, `Rejected` for rejections
    /// the scheduler did not already trace with an estimate. Only called on
    /// traced runs.
    fn trace_response(&mut self, response: &Response) {
        match response.outcome {
            RequestOutcome::Success {
                completed,
                batch,
                worker,
                gpu,
                cold_start,
            } => {
                let request = response.request.0;
                let model = response.model.0;
                let arrival = response.arrival.as_nanos();
                let completed = completed.as_nanos();
                let deadline = response.deadline.as_nanos();
                let event = if response.met_slo() {
                    TraceEvent::Completed {
                        request,
                        model,
                        arrival,
                        completed,
                        deadline,
                        batch,
                        worker: worker.0,
                        gpu: gpu.0,
                        cold: cold_start,
                    }
                } else {
                    TraceEvent::DeadlineMissed {
                        request,
                        model,
                        arrival,
                        completed,
                        deadline,
                        batch,
                        worker: worker.0,
                        gpu: gpu.0,
                        cold: cold_start,
                    }
                };
                self.trace(event);
            }
            RequestOutcome::Rejected { reason, .. } => {
                if self.sched_rejected.contains(&response.request.0) {
                    return;
                }
                self.trace(TraceEvent::Rejected {
                    request: response.request.0,
                    model: response.model.0,
                    reason: reason.as_str(),
                    estimate: 0,
                });
            }
        }
    }

    /// Emits the per-member batch spans a worker's completion ring recorded
    /// since the last poll, advancing this worker's cursor. Members the
    /// bounded ring evicted before this poll are counted as dropped spans
    /// rather than silently lost. Only called on traced runs.
    fn trace_members(&mut self, worker: usize) {
        let telemetry = self.workers[worker].telemetry();
        let total = telemetry.members_recorded();
        let new = total - self.member_seen[worker];
        if new == 0 {
            return;
        }
        self.member_seen[worker] = total;
        let mut members = std::mem::take(&mut self.member_buf);
        members.clear();
        members.extend(telemetry.member_log_tail(new as usize).copied());
        let lost = new - members.len() as u64;
        if lost > 0 {
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.note_dropped(lost);
            }
        }
        for member in members.drain(..) {
            self.trace(TraceEvent::MemberDone {
                request: member.request_id,
                model: member.model.0,
                batch: member.batch,
                completed: member.completed.as_nanos(),
            });
        }
        self.member_buf = members;
    }

    /// Registers one model instance and returns its id.
    pub fn register_model(&mut self, spec: &ModelSpec) -> ModelId {
        let id = ModelId(self.next_model_id);
        self.next_model_id += 1;
        self.install_model(id, Arc::new(spec.clone()));
        id
    }

    /// Uploads a model at a virtual time while the system is running (§5.1
    /// "dynamic model loading over the network").
    ///
    /// The weights are shipped to the worker fleet over the simulated
    /// network, and the model only becomes servable once that transfer has
    /// arrived; requests that reach the controller earlier are rejected as
    /// unknown, exactly as they would be against a real deployment that has
    /// not finished the upload. Returns the id the model will be servable
    /// under.
    pub fn upload_model(&mut self, at: Timestamp, spec: &ModelSpec) -> ModelId {
        let id = ModelId(self.next_model_id);
        self.next_model_id += 1;
        let spec = Arc::new(spec.clone());
        // Shipping the weights over the shared network dominates an upload.
        let delay = self.network.delay(spec.weights_bytes());
        self.push_event(at + delay, SystemEvent::ModelUpload { id, spec });
        id
    }

    /// Makes a model known to every worker (host memory), the scheduler and
    /// the telemetry layer. Shared by start-of-run registration and runtime
    /// uploads.
    fn install_model(&mut self, id: ModelId, spec: Arc<ModelSpec>) {
        for worker in &mut self.workers {
            worker
                .register_model(id, Arc::clone(&spec))
                .expect("host memory exhausted while registering models");
        }
        let load_seed = spec.weights_transfer_duration(&self.workers[0].config().pcie);
        self.scheduler.add_model(id, Arc::clone(&spec), load_seed);
        self.models.insert(id, spec);
    }

    /// Registers `copies` instances of the same model (the paper's
    /// experiments duplicate one model many times) and returns their ids.
    pub fn register_copies(&mut self, spec: &ModelSpec, copies: usize) -> Vec<ModelId> {
        (0..copies).map(|_| self.register_model(spec)).collect()
    }

    /// Registers one instance for each spec in a slice.
    pub fn register_all(&mut self, specs: &[&ModelSpec]) -> Vec<ModelId> {
        specs.iter().map(|s| self.register_model(s)).collect()
    }

    /// Submits every request of a trace in one batched push.
    pub fn submit_trace(&mut self, trace: &Trace) {
        self.telemetry
            .event_mix
            .note_pushed_n(KIND_CLIENT_SUBMIT, trace.len() as u64);
        self.queue.push_batch(trace.events().iter().map(|event| {
            (
                event.at,
                SystemEvent::ClientSubmit {
                    model: event.model,
                    slo: event.slo,
                    tier: event.tier,
                    client: None,
                },
            )
        }));
    }

    /// Adds a closed-loop client; its initial requests are submitted at
    /// `start`.
    pub fn add_closed_loop_client(&mut self, mut client: ClosedLoopClient, start: Timestamp) {
        let submissions = client.initial_submissions(start);
        let index = self.clients.len();
        self.clients.push(client);
        for (at, model, slo) in submissions {
            self.push_event(
                at,
                SystemEvent::ClientSubmit {
                    model,
                    slo,
                    tier: Tier::Strict,
                    client: Some(index),
                },
            );
        }
    }

    /// Submits a single request at a given time (convenience for examples).
    pub fn submit_request(&mut self, at: Timestamp, model: ModelId, slo: Nanos) {
        self.push_event(
            at,
            SystemEvent::ClientSubmit {
                model,
                slo,
                tier: Tier::Strict,
                client: None,
            },
        );
    }

    /// Schedules an event and counts the push in the telemetry event mix.
    /// Every push goes through here so the mix stays conservation-complete
    /// (`pushed == delivered + cancelled + live`).
    fn push_event(&mut self, at: Timestamp, event: SystemEvent) -> EventId {
        self.telemetry.event_mix.note_pushed(event.kind_index());
        self.queue.push(at, event)
    }

    /// Reconciles the single queued wake of a worker with the worker's
    /// current `next_wakeup`.
    ///
    /// At most one `WorkerWake` per worker is ever live in the queue. When
    /// the wanted wake time is unchanged, nothing is touched; when it moved
    /// (earlier because new work arrived, later or away because work was
    /// consumed or lost to a fault) the stale wake is cancelled and a fresh
    /// one pushed. Before this discipline every "earlier wake" push left the
    /// superseded later wake in the queue, and each of those no-op wakes
    /// re-armed the chain on delivery — ~95 % of all simulation events in the
    /// fleet scenario were such redundant wakes.
    fn schedule_worker_wake(&mut self, worker: usize) {
        let desired = self.workers[worker].next_wakeup().map(|w| w.max(self.now));
        match (desired, self.worker_wake_scheduled[worker]) {
            (Some(due), Some((at, _))) if due == at => {}
            (Some(due), prev) => {
                if let Some((_, id)) = prev {
                    let cancelled = self.queue.cancel(id);
                    debug_assert!(cancelled, "wake handle out of lockstep with the queue");
                    self.telemetry.event_mix.note_cancelled(KIND_WORKER_WAKE);
                }
                let id = self.push_event(due, SystemEvent::WorkerWake { worker });
                self.worker_wake_scheduled[worker] = Some((due, id));
            }
            (None, Some((_, id))) => {
                let cancelled = self.queue.cancel(id);
                debug_assert!(cancelled, "wake handle out of lockstep with the queue");
                self.telemetry.event_mix.note_cancelled(KIND_WORKER_WAKE);
                self.worker_wake_scheduled[worker] = None;
            }
            (None, None) => {}
        }
    }

    /// Reconciles the single queued scheduler tick with `next_tick`.
    ///
    /// Unlike wakes, a tick never needs to move later: an incremental
    /// scheduler may answer with a *later* grid point after new work
    /// settled, but the already-queued earlier tick is kept — it lands on
    /// the same tick grid and at worst early-outs (an O(1) skipped tick the
    /// telemetry counts). The tick is cancelled outright when the scheduler
    /// reports quiescence (`next_tick` of `None`).
    fn schedule_tick(&mut self) {
        let desired = self.scheduler.next_tick(self.now);
        match (desired, self.tick_scheduled) {
            (Some(tick), Some((at, _))) if at <= tick => {}
            (Some(tick), prev) => {
                if let Some((_, id)) = prev {
                    let cancelled = self.queue.cancel(id);
                    debug_assert!(cancelled, "tick handle out of lockstep with the queue");
                    self.telemetry.event_mix.note_cancelled(KIND_SCHEDULER_TICK);
                }
                let id = self.push_event(tick, SystemEvent::SchedulerTick);
                self.tick_scheduled = Some((tick, id));
            }
            (None, Some((_, id))) => {
                let cancelled = self.queue.cancel(id);
                debug_assert!(cancelled, "tick handle out of lockstep with the queue");
                self.telemetry.event_mix.note_cancelled(KIND_SCHEDULER_TICK);
                self.tick_scheduled = None;
            }
            (None, None) => {}
        }
    }

    /// Drains scheduler outputs: actions go to workers (over the network),
    /// responses go back to clients (over the network). The drain buffers are
    /// reused across calls so the steady-state loop allocates nothing here.
    fn drain_ctx(&mut self) {
        if self.tracer.is_some() {
            // The scheduler's own spans drain first: they were decided
            // before the actions/responses below, and any estimate-bearing
            // `Rejected` among them suppresses the facade's estimate-free
            // duplicate for the same request in this pass.
            let mut events = std::mem::take(&mut self.trace_buf);
            self.ctx.drain_trace_into(&mut events);
            self.sched_rejected.clear();
            for event in events.drain(..) {
                if let TraceEvent::Rejected { request, .. } = &event {
                    self.sched_rejected.push(*request);
                }
                self.trace(event);
            }
            self.trace_buf = events;
        }
        let mut actions = std::mem::take(&mut self.action_buf);
        self.ctx.drain_actions_into(&mut actions);
        for (worker_id, action) in actions.drain(..) {
            // A scheduler emitting an action for a worker that does not exist
            // is a routing bug; silently falling back to worker 0 would let
            // it masquerade as worker-0 load.
            let worker_index = self
                .worker_index
                .get(&worker_id)
                .copied()
                .unwrap_or_else(|| {
                    panic!(
                        "scheduler routed action {:?} to unknown {worker_id}",
                        action.id
                    )
                });
            // INFER inputs are forwarded through the controller (§7), so the
            // message size includes the batch's input tensors.
            let bytes = match &action.kind {
                clockwork_worker::ActionKind::Infer { model, batch, .. } => {
                    self.models
                        .get(model)
                        .map(|m| m.input_bytes() * u64::from(*batch))
                        .unwrap_or(1_000)
                        + 256
                }
                _ => 256,
            };
            if self.tracer.is_some() {
                self.trace_action_issue(worker_id, &action);
            }
            let base = self.network.delay(bytes);
            let delay = self.links[worker_index].scale(base);
            if self.tracer.is_some() && delay != base {
                self.trace(TraceEvent::LinkDelay {
                    worker: worker_id.0,
                    base: base.as_nanos(),
                    actual: delay.as_nanos(),
                });
            }
            let event = SystemEvent::WorkerAction {
                worker: worker_index,
                action,
            };
            if self.links[worker_index].partitioned {
                self.links[worker_index].held.push((delay, event));
            } else {
                let at = self.now + delay;
                self.push_event(at, event);
            }
        }
        self.action_buf = actions;
        let mut responses = std::mem::take(&mut self.response_buf);
        self.ctx.drain_responses_into(&mut responses);
        for response in responses.drain(..) {
            let tier = if self.best_effort.is_empty() || !self.best_effort.remove(&response.request)
            {
                Tier::Strict
            } else {
                Tier::BestEffort
            };
            self.telemetry.record_response_with_tier(&response, tier);
            if self.tracer.is_some() {
                self.trace_response(&response);
            }
            let client = self.request_owner.remove(&response.request);
            let bytes = self
                .models
                .get(&response.model)
                .map(|m| m.output_bytes())
                .unwrap_or(1_000)
                + 128;
            let delay = self.network.delay(bytes);
            let at = self.now + delay;
            self.push_event(at, SystemEvent::ClientResponse { response, client });
        }
        self.response_buf = responses;
        self.schedule_tick();
    }

    fn handle_event(&mut self, event: SystemEvent) {
        match event {
            SystemEvent::ClientSubmit {
                model,
                slo,
                tier,
                client,
            } => {
                let bytes = self
                    .models
                    .get(&model)
                    .map(|m| m.input_bytes())
                    .unwrap_or(1_000);
                let delay = self.network.delay(bytes + 128);
                let id = RequestId(self.next_request_id);
                self.next_request_id += 1;
                if let Some(client) = client {
                    self.request_owner.insert(id, client);
                }
                if tier != Tier::Strict {
                    // Tier is recovered at response time from this set; only
                    // best-effort ids are stored so all-strict runs never
                    // touch it.
                    self.best_effort.insert(id);
                }
                let at_controller = self.now + delay;
                let request = InferenceRequest {
                    id,
                    model,
                    arrival: at_controller,
                    slo,
                    tier,
                };
                self.push_event(at_controller, SystemEvent::ControllerRequest { request });
            }
            SystemEvent::ControllerRequest { request } => {
                self.telemetry.record_arrival(self.now, request.tier);
                if self.tracer.is_some() {
                    self.trace(TraceEvent::Enqueued {
                        request: request.id.0,
                        model: request.model.0,
                        deadline: request.deadline().as_nanos(),
                    });
                }
                self.scheduler.on_request(self.now, request, &mut self.ctx);
                self.drain_ctx();
            }
            SystemEvent::WorkerAction { worker, action } => {
                self.workers[worker].submit(self.now, action);
                self.schedule_worker_wake(worker);
            }
            SystemEvent::WorkerWake { worker } => {
                // The fired wake is the one queued wake this worker had; its
                // handle is now spent.
                self.worker_wake_scheduled[worker] = None;
                let mut results = std::mem::take(&mut self.result_buf);
                results.clear();
                let steps = self.workers[worker].poll_into(self.now, &mut results);
                if steps == 0 {
                    self.telemetry.event_mix.note_noop_wake();
                }
                if self.tracer.is_some() {
                    self.trace_members(worker);
                }
                for result in results.drain(..) {
                    let bytes = match result.action_type {
                        "INFER" => {
                            self.models
                                .get(&result.model)
                                .map(|m| m.output_bytes() * u64::from(result.batch))
                                .unwrap_or(1_000)
                                + 128
                        }
                        _ => 128,
                    };
                    let base = self.network.delay(bytes);
                    let delay = self.links[worker].scale(base);
                    if self.tracer.is_some() && delay != base {
                        self.trace(TraceEvent::LinkDelay {
                            worker: self.workers[worker].id().0,
                            base: base.as_nanos(),
                            actual: delay.as_nanos(),
                        });
                    }
                    let event = SystemEvent::ControllerResult { result };
                    if self.links[worker].partitioned {
                        self.links[worker].held.push((delay, event));
                    } else {
                        let at = self.now + delay;
                        self.push_event(at, event);
                    }
                }
                self.result_buf = results;
                self.schedule_worker_wake(worker);
            }
            SystemEvent::ControllerResult { result } => {
                if self.tracer.is_some() {
                    self.trace_result(&result);
                }
                self.scheduler.on_result(self.now, &result, &mut self.ctx);
                self.drain_ctx();
            }
            SystemEvent::ClientResponse { response, client } => {
                if let Some(index) = client {
                    if let Some((at, model, slo)) = self.clients[index].on_response(self.now) {
                        self.push_event(
                            at,
                            SystemEvent::ClientSubmit {
                                model,
                                slo,
                                tier: Tier::Strict,
                                client: Some(index),
                            },
                        );
                    }
                }
                let _ = response;
            }
            SystemEvent::ModelUpload { id, spec } => {
                self.install_model(id, spec);
            }
            SystemEvent::SchedulerTick => {
                self.tick_scheduled = None;
                let outcome = self.scheduler.on_tick(self.now, &mut self.ctx);
                self.telemetry
                    .note_tick_outcome(outcome == TickOutcome::Full);
                self.drain_ctx();
            }
            SystemEvent::Fault { kind } => {
                self.apply_fault(kind);
            }
        }
    }

    /// Applies one fault atomically to the worker fleet, the transport layer
    /// and the controller, and folds it into the telemetry digest. Faults
    /// naming a worker or GPU that does not exist are ignored, as is a
    /// `WorkerJoin` naming a fleet index that already exists.
    fn apply_fault(&mut self, kind: FaultKind) {
        if let FaultKind::WorkerJoin { worker } = kind {
            if !self.admit_worker(worker) {
                return;
            }
            self.finish_fault(kind);
            return;
        }
        let Some(&idx) = self.worker_index.get(&WorkerId(kind.worker())) else {
            return;
        };
        match kind {
            FaultKind::WorkerCrash { .. } => {
                self.workers[idx].crash(self.now);
                // The dead worker will never act again: its queued wake (if
                // any) is cancelled rather than left to fire as a no-op.
                self.schedule_worker_wake(idx);
            }
            FaultKind::WorkerRestart { .. } => {
                self.workers[idx].restart(self.now);
                self.schedule_worker_wake(idx);
            }
            FaultKind::GpuFail { gpu, .. } => {
                if gpu >= self.workers[idx].num_gpus() {
                    return;
                }
                self.workers[idx].fail_gpu(GpuId(gpu));
                // The failure took that GPU's queued work and completions
                // with it; the worker's wake moves later or goes away.
                self.schedule_worker_wake(idx);
            }
            FaultKind::GpuRecover { gpu, .. } => {
                if gpu >= self.workers[idx].num_gpus() {
                    return;
                }
                self.workers[idx].recover_gpu(GpuId(gpu));
                self.schedule_worker_wake(idx);
            }
            FaultKind::LinkDegrade { factor_milli, .. } => {
                self.links[idx].factor_milli = u64::from(factor_milli).max(1);
            }
            FaultKind::LinkRestore { .. } => self.links[idx].factor_milli = 1000,
            FaultKind::PartitionStart { .. } => self.links[idx].partitioned = true,
            FaultKind::PartitionEnd { .. } => {
                self.links[idx].partitioned = false;
                // Held messages were already on the wire; they pay their
                // residual delay from the heal instant.
                let held = std::mem::take(&mut self.links[idx].held);
                for (delay, event) in held {
                    let at = self.now + delay;
                    self.push_event(at, event);
                }
            }
            FaultKind::WorkerJoin { .. } => unreachable!("handled above"),
        }
        self.finish_fault(kind);
    }

    /// The tail every applied fault shares: fold it into the telemetry
    /// digest with the post-fault availability, let the scheduler react, and
    /// drain whatever it emitted.
    fn finish_fault(&mut self, kind: FaultKind) {
        let (alive, total) = self.gpu_availability();
        self.telemetry.record_fault(self.now, &kind, alive, total);
        self.scheduler.on_fault(self.now, &kind, &mut self.ctx);
        self.drain_ctx();
    }

    /// Admits a brand-new cold worker at runtime (elastic scale-up): builds
    /// the machine with the cluster's GPU shape and execution mode, registers
    /// every known model in its host memory, announces its GPUs to the
    /// scheduler, and wires up its link and wake bookkeeping. Returns `false`
    /// — admitting nothing — when the fleet index is already occupied.
    fn admit_worker(&mut self, worker: u32) -> bool {
        let id = WorkerId(worker);
        if self.worker_index.contains_key(&id) {
            return false;
        }
        let wc = WorkerConfig::new(id)
            .with_gpus(self.config.gpus_per_worker)
            .with_exec_mode(self.exec_mode)
            .with_variance(self.config.variance)
            .with_weights_cache(self.config.weights_cache_bytes)
            .with_seed(self.config.seed ^ (u64::from(worker) << 16));
        let mut joined = Worker::new(wc);
        // Known models land in the newcomer's host memory in id order — the
        // registration order is part of the deterministic execution.
        let mut ids: Vec<ModelId> = self.models.keys().copied().collect();
        ids.sort_unstable();
        for model in ids {
            joined
                .register_model(model, Arc::clone(&self.models[&model]))
                .expect("host memory exhausted while admitting a joined worker");
        }
        for g in 0..joined.num_gpus() {
            self.scheduler.add_gpu(
                GpuRef {
                    worker: id,
                    gpu: GpuId(g),
                },
                joined.total_pages(GpuId(g)),
                joined.config().page_size,
            );
        }
        let index = self.workers.len();
        self.workers.push(joined);
        self.worker_index.insert(id, index);
        self.worker_wake_scheduled.push(None);
        self.links.push(LinkState::healthy());
        self.member_seen.push(0);
        true
    }

    /// Schedules a fault at a virtual time while the system is running; the
    /// equivalent of one entry of a [`FaultPlan`] (see
    /// [`SystemBuilder::faults`] for whole-plan scheduling).
    pub fn inject_fault(&mut self, at: Timestamp, kind: FaultKind) {
        self.push_event(at, SystemEvent::Fault { kind });
    }

    /// `(alive, total)` GPU counts across the fleet — the availability that
    /// fault telemetry records per event.
    pub fn gpu_availability(&self) -> (u32, u32) {
        let mut alive = 0;
        let mut total = 0;
        for worker in &self.workers {
            total += worker.num_gpus();
            alive += worker.alive_gpus();
        }
        (alive, total)
    }

    /// Total number of simulation events delivered so far (a wall-clock-free
    /// measure of how much work a run performed; perf harnesses divide it by
    /// elapsed host time to get events/sec).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still scheduled (pushed but neither delivered nor
    /// cancelled) — the `live` term of the event-mix conservation identity.
    pub fn pending_events(&self) -> u64 {
        self.queue.len() as u64
    }

    /// The event queue's own lifetime counters `(pushed, delivered,
    /// cancelled)`, independent of the per-kind telemetry mix. Tests use
    /// these to pin that the mix accounts for every push site.
    pub fn queue_counters(&self) -> (u64, u64, u64) {
        (
            self.queue.pushed_total(),
            self.queue.delivered_total(),
            self.queue.cancelled_total(),
        )
    }

    /// Runs the system until `until`, or until no events remain.
    pub fn run_until(&mut self, until: Timestamp) {
        self.run_until_events(until, u64::MAX);
    }

    /// Runs the system until `until`, until no events remain, or until
    /// `max_events` further events have been delivered — whichever comes
    /// first. The event cap gives perf harnesses a fixed-work smoke mode
    /// whose cost does not drift as scheduling behaviour evolves.
    pub fn run_until_events(&mut self, until: Timestamp, max_events: u64) {
        let mut budget = max_events;
        while budget > 0 {
            let Some(t) = self.queue.peek_time() else {
                break;
            };
            if t > until {
                break;
            }
            let (t, event) = self.queue.pop().expect("event exists");
            if t > self.now {
                self.now = t;
            }
            self.events_processed += 1;
            budget -= 1;
            self.telemetry.event_mix.note_delivered(event.kind_index());
            self.handle_event(event);
        }
        let drained = self.queue.peek_time().map(|t| t > until).unwrap_or(true);
        if drained && until > self.now && until != Timestamp::MAX {
            self.now = until;
        }
    }

    /// Runs for a duration of virtual time from the current instant.
    pub fn run_for(&mut self, duration: Nanos) {
        let until = self.now + duration;
        self.run_until(until);
    }

    /// Runs until every event has been processed (all trace requests answered
    /// and all actions completed). Closed-loop clients keep resubmitting
    /// forever, so systems with closed-loop clients should use
    /// [`ServingSystem::run_until`] instead.
    pub fn run_to_completion(&mut self) {
        self.run_until(Timestamp::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_model::zoo::ModelZoo;
    use clockwork_workload::OpenLoopClient;

    #[test]
    fn single_request_round_trip() {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().build();
        let model = system.register_model(zoo.resnet50());
        system.submit_request(Timestamp::ZERO, model, Nanos::from_millis(100));
        system.run_to_completion();
        let m = system.telemetry().metrics();
        assert_eq!(m.total_requests, 1);
        assert_eq!(m.successes, 1);
        assert_eq!(m.goodput, 1);
        assert_eq!(m.cold_starts, 1, "first request is a cold start");
        // Cold start: load (~8.3 ms) + exec (~2.6 ms) + network.
        let latency = m.latency.max().as_millis_f64();
        assert!(latency > 10.0 && latency < 20.0, "latency {latency} ms");
    }

    #[test]
    fn warm_requests_meet_tight_slos() {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().seed(7).build();
        let model = system.register_model(zoo.resnet50());
        // Warm up.
        system.submit_request(Timestamp::ZERO, model, Nanos::from_millis(100));
        // Steady warm requests every 10 ms with a 10 ms SLO.
        for i in 1..100u64 {
            system.submit_request(
                Timestamp::from_millis(50 + i * 10),
                model,
                Nanos::from_millis(10),
            );
        }
        system.run_to_completion();
        let m = system.telemetry().metrics();
        assert_eq!(m.total_requests, 100);
        assert!(
            m.goodput >= 99,
            "warm requests should meet 10 ms SLOs: goodput {}",
            m.goodput
        );
    }

    #[test]
    fn open_loop_workload_on_multiple_models() {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().seed(11).build();
        let models = system.register_copies(zoo.resnet50(), 4);
        let trace = OpenLoopClient::generate_many(
            &models,
            50.0,
            Nanos::from_millis(100),
            Nanos::from_secs(2),
            &mut SimRng::seeded(3),
        );
        let expected = trace.len() as u64;
        system.submit_trace(&trace);
        system.run_to_completion();
        let m = system.telemetry().metrics();
        assert_eq!(m.total_requests, expected);
        assert!(
            m.satisfaction() > 0.95,
            "satisfaction {} with {} requests",
            m.satisfaction(),
            expected
        );
    }

    #[test]
    fn closed_loop_clients_sustain_throughput() {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().seed(13).build();
        let model = system.register_model(zoo.resnet50());
        system.add_closed_loop_client(
            ClosedLoopClient::new(model, 8, Nanos::from_millis(250)),
            Timestamp::ZERO,
        );
        system.run_until(Timestamp::from_secs(2));
        let m = system.telemetry().metrics();
        // Batch-8 ResNet50 sustains several hundred requests per second.
        assert!(
            m.throughput_rate() > 300.0,
            "throughput {}",
            m.throughput_rate()
        );
        assert!(m.successes > 500);
    }

    #[test]
    fn fifo_ablation_serves_but_with_less_goodput_under_load() {
        use clockwork_controller::registry::FifoFactory;
        let zoo = ModelZoo::new();
        let run = |factory: Box<dyn SchedulerFactory>| {
            let mut system = SystemBuilder::new().discipline(factory).seed(17).build();
            let models = system.register_copies(zoo.resnet50(), 4);
            let trace = OpenLoopClient::generate_many(
                &models,
                120.0,
                Nanos::from_millis(50),
                Nanos::from_secs(2),
                &mut SimRng::seeded(5),
            );
            system.submit_trace(&trace);
            system.run_until(Timestamp::from_secs(4));
            system.telemetry().metrics()
        };
        let clockwork = run(Box::<ClockworkFactory>::default());
        let fifo = run(Box::new(FifoFactory));
        assert!(clockwork.satisfaction() >= fifo.satisfaction());
        assert!(fifo.successes > 0, "fifo still serves requests");
    }

    #[test]
    fn multi_worker_clusters_scale_throughput() {
        let zoo = ModelZoo::new();
        let run = |workers: u32| {
            let mut system = SystemBuilder::new().workers(workers).seed(19).build();
            let models = system.register_copies(zoo.resnet50(), workers as usize * 2);
            for (i, m) in models.iter().enumerate() {
                system.add_closed_loop_client(
                    ClosedLoopClient::new(*m, 8, Nanos::from_millis(500)),
                    Timestamp::from_millis(i as u64),
                );
            }
            system.run_until(Timestamp::from_secs(2));
            system.telemetry().metrics().throughput_rate()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four > one * 2.0,
            "4 workers ({four} r/s) should beat 1 worker ({one} r/s) by >2x"
        );
    }
}
