//! System-level configuration.
//!
//! [`SystemConfig`] describes the *cluster*: machines, GPUs, memory, network,
//! variance, faults and seed. It deliberately does not name a serving
//! discipline — disciplines are constructed behind the
//! [`Scheduler`](clockwork_controller::Scheduler) trait and handed to the
//! [`SystemBuilder`](crate::SystemBuilder) via a
//! [`SchedulerFactory`](clockwork_controller::SchedulerFactory), so the
//! facade never depends on any concrete discipline crate.

use clockwork_faults::FaultPlan;
use clockwork_sim::network::NetworkConfig;
use clockwork_sim::variance::VarianceConfig;
use clockwork_worker::ExecMode;

/// Configuration of a serving cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of worker machines.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Device memory dedicated to the weights cache, per GPU, in bytes.
    pub weights_cache_bytes: u64,
    /// Execution discipline override. `None` defers to the scheduler
    /// factory's natural mode (exclusive for Clockwork-style proactive
    /// disciplines, concurrent for the reactive baselines).
    pub exec_mode: Option<ExecMode>,
    /// External interference profile applied to every worker.
    pub variance: VarianceConfig,
    /// Network model between clients, controller and workers.
    pub network: NetworkConfig,
    /// Keep every individual response in memory (disable for very large
    /// traces; aggregates are always collected).
    pub keep_responses: bool,
    /// Scheduled fleet faults (worker crashes/joins, GPU failures, link
    /// faults). Empty by default. Every discipline is fault-aware, so any
    /// plan may be combined with any scheduler.
    pub faults: FaultPlan,
    /// Request-lifecycle tracing: `Some(capacity)` wires a bounded
    /// [`RingTracer`](clockwork_metrics::RingTracer) retaining at most
    /// `capacity` spans (oldest dropped first, drops counted). `None` — the
    /// default — uses the no-op tracer: no events are built anywhere and
    /// run digests are byte-identical to an untraced build.
    pub trace_capacity: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            workers: 1,
            gpus_per_worker: 1,
            weights_cache_bytes: 31 * 1024 * 1024 * 1024,
            exec_mode: None,
            variance: VarianceConfig::none(),
            network: NetworkConfig::ideal(clockwork_sim::time::Nanos::from_micros(100)),
            keep_responses: true,
            faults: FaultPlan::new(),
            trace_capacity: None,
            seed: 0xc10c,
        }
    }
}

impl SystemConfig {
    /// Total number of GPUs in the cluster (before any runtime joins).
    pub fn total_gpus(&self) -> u32 {
        self.workers * self.gpus_per_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SystemConfig::default();
        assert_eq!(c.workers, 1);
        assert_eq!(c.total_gpus(), 1);
        assert_eq!(c.exec_mode, None);
        assert!(c.faults.is_empty());
        assert_eq!(c.trace_capacity, None, "tracing is off by default");
    }
}
