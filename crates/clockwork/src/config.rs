//! System-level configuration.

use clockwork_controller::ClockworkSchedulerConfig;
use clockwork_faults::FaultPlan;
use clockwork_sim::network::NetworkConfig;
use clockwork_sim::variance::VarianceConfig;
use clockwork_worker::ExecMode;

use clockwork_baselines::{ClipperConfig, InfaasConfig};

/// Which serving discipline drives the cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerKind {
    /// The Clockwork scheduler (proactive, consolidated choice).
    Clockwork(ClockworkSchedulerConfig),
    /// The naive FIFO ablation scheduler.
    Fifo,
    /// The Clipper-like reactive baseline.
    Clipper(ClipperConfig),
    /// The INFaaS-like reactive baseline.
    Infaas(InfaasConfig),
}

impl Default for SchedulerKind {
    fn default() -> Self {
        SchedulerKind::Clockwork(ClockworkSchedulerConfig::default())
    }
}

impl SchedulerKind {
    /// The execution discipline the paired workers should run with: Clockwork
    /// and the FIFO ablation assume exclusive one-at-a-time execution, while
    /// the reactive baselines run atop frameworks that execute concurrently.
    pub fn default_exec_mode(&self) -> ExecMode {
        match self {
            SchedulerKind::Clockwork(_) | SchedulerKind::Fifo => ExecMode::Exclusive,
            SchedulerKind::Clipper(_) | SchedulerKind::Infaas(_) => {
                ExecMode::Concurrent { max_concurrent: 16 }
            }
        }
    }

    /// A short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Clockwork(_) => "clockwork",
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Clipper(_) => "clipper",
            SchedulerKind::Infaas(_) => "infaas",
        }
    }
}

/// Configuration of a serving cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of worker machines.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Device memory dedicated to the weights cache, per GPU, in bytes.
    pub weights_cache_bytes: u64,
    /// Execution discipline override (defaults to the scheduler's natural
    /// mode when `None`).
    pub exec_mode: Option<ExecMode>,
    /// External interference profile applied to every worker.
    pub variance: VarianceConfig,
    /// Network model between clients, controller and workers.
    pub network: NetworkConfig,
    /// The serving discipline.
    pub scheduler: SchedulerKind,
    /// Keep every individual response in memory (disable for very large
    /// traces; aggregates are always collected).
    pub keep_responses: bool,
    /// Scheduled fleet faults (worker crashes, GPU failures, link faults).
    /// Empty by default. Fault handling is implemented by the Clockwork
    /// scheduler; do not combine a non-empty plan with the baseline
    /// disciplines, which ignore faults.
    pub faults: FaultPlan,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            workers: 1,
            gpus_per_worker: 1,
            weights_cache_bytes: 31 * 1024 * 1024 * 1024,
            exec_mode: None,
            variance: VarianceConfig::none(),
            network: NetworkConfig::ideal(clockwork_sim::time::Nanos::from_micros(100)),
            scheduler: SchedulerKind::default(),
            keep_responses: true,
            faults: FaultPlan::new(),
            seed: 0xc10c,
        }
    }
}

impl SystemConfig {
    /// The execution mode workers should use.
    pub fn effective_exec_mode(&self) -> ExecMode {
        self.exec_mode.unwrap_or(self.scheduler.default_exec_mode())
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.workers * self.gpus_per_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SystemConfig::default();
        assert_eq!(c.workers, 1);
        assert_eq!(c.total_gpus(), 1);
        assert_eq!(c.scheduler.label(), "clockwork");
        assert_eq!(c.effective_exec_mode(), ExecMode::Exclusive);
    }

    #[test]
    fn baselines_default_to_concurrent_execution() {
        let clipper = SchedulerKind::Clipper(ClipperConfig::default());
        assert!(matches!(
            clipper.default_exec_mode(),
            ExecMode::Concurrent { .. }
        ));
        assert_eq!(clipper.label(), "clipper");
        assert_eq!(SchedulerKind::Fifo.label(), "fifo");
        assert_eq!(
            SchedulerKind::Infaas(InfaasConfig::default()).label(),
            "infaas"
        );
    }

    #[test]
    fn exec_mode_override_wins() {
        let c = SystemConfig {
            exec_mode: Some(ExecMode::Concurrent { max_concurrent: 4 }),
            ..Default::default()
        };
        assert_eq!(
            c.effective_exec_mode(),
            ExecMode::Concurrent { max_concurrent: 4 }
        );
    }
}
