//! Clockwork-RS: a distributed model serving system with predictable
//! performance, reproducing "Serving DNNs like Clockwork" (OSDI 2020).
//!
//! This crate assembles the pieces from the rest of the workspace — the
//! simulated hardware substrate, the model zoo, predictable workers, the
//! centralized controller, workload generators and the baseline disciplines —
//! into a runnable serving system driven by a discrete-event loop.
//!
//! # Quick start
//!
//! ```
//! use clockwork::prelude::*;
//!
//! // One worker with one (simulated) V100, the Clockwork scheduler.
//! let mut system = SystemBuilder::new()
//!     .workers(1)
//!     .discipline(Box::new(ClockworkFactory::default()))
//!     .build();
//!
//! // Register 3 copies of ResNet50 from the Appendix A model zoo.
//! let zoo = ModelZoo::new();
//! let models = system.register_copies(zoo.resnet50(), 3);
//!
//! // Drive them with open-loop Poisson clients at 100 r/s each, 100 ms SLO.
//! let trace = OpenLoopClient::generate_many(
//!     &models,
//!     100.0,
//!     Nanos::from_millis(100),
//!     Nanos::from_secs(2),
//!     &mut SimRng::seeded(1),
//! );
//! system.submit_trace(&trace);
//! system.run_to_completion();
//!
//! let m = system.telemetry().metrics();
//! assert!(m.satisfaction() > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiment;
pub mod scenario;
pub mod system;
pub mod telemetry;

pub use config::SystemConfig;
pub use experiment::{Experiment, RunReport};
pub use scenario::{ModelSet, ScenarioSpec, WorkloadSpec};
pub use system::{ServingSystem, SystemBuilder};
pub use telemetry::{
    EventMix, EventMixEntry, ExperimentMetrics, FaultRecord, SystemTelemetry, TierOutcomes,
};
// Request-lifecycle tracing surface (the workload crate's `TraceEvent` — a
// *workload* trace entry — already owns that name in the prelude, so the
// lifecycle span enum is re-exported here as `LifecycleEvent`).
pub use clockwork_metrics::trace::TraceEvent as LifecycleEvent;
pub use clockwork_metrics::trace::{RingTracer, TraceRecord, Tracer};

/// Convenience re-exports for examples, tests and benchmarks.
pub mod prelude {
    pub use crate::config::SystemConfig;
    pub use crate::experiment::{Experiment, RunReport};
    pub use crate::scenario::{ModelSet, ScenarioSpec, WorkloadSpec};
    pub use crate::system::{ServingSystem, SystemBuilder};
    pub use crate::telemetry::{
        EventMix, EventMixEntry, ExperimentMetrics, FaultRecord, SystemTelemetry, TierOutcomes,
    };
    pub use clockwork_controller::registry::{
        ClockworkFactory, ClockworkNoBatchFactory, FifoFactory, SchedulerFactory, SchedulerRegistry,
    };
    pub use clockwork_controller::{
        ClockworkScheduler, ClockworkSchedulerConfig, InferenceRequest, RequestId, SchedProfile,
        Scheduler, TickOutcome,
    };
    pub use clockwork_faults::{ChurnConfig, FaultKind, FaultPlan};
    pub use clockwork_metrics::trace::TraceEvent as LifecycleEvent;
    pub use clockwork_metrics::trace::{RingTracer, TraceRecord, Tracer};
    pub use clockwork_model::{zoo::ModelZoo, ModelId, ModelSpec, Tier};
    pub use clockwork_sim::rng::SimRng;
    pub use clockwork_sim::time::{Nanos, Timestamp};
    pub use clockwork_sim::variance::VarianceConfig;
    pub use clockwork_worker::{ExecMode, WorkerConfig, WorkerId};
    pub use clockwork_workload::{
        AzureTraceConfig, AzureTraceGenerator, ClosedLoopClient, OpenLoopClient, PopularityModel,
        RateProfile, ShapedWorkload, TierMix, Trace, TraceEvent,
    };
}
