//! The one experiment runner behind every bench binary.
//!
//! [`Experiment::run`] takes a declarative [`ScenarioSpec`] and a discipline
//! ([`SchedulerFactory`]) and owns the whole loop the bench binaries used to
//! hand-roll: build the cluster, register the models, submit the workload,
//! drive virtual time to the horizon, and package telemetry, digest and
//! accounting checks into a [`RunReport`]. Running the *same* spec across
//! *different* disciplines is exactly the paper's comparison methodology —
//! and is one `for` loop over a
//! [`SchedulerRegistry`](clockwork_controller::SchedulerRegistry).

use std::time::Instant;

use clockwork_controller::registry::SchedulerFactory;
use clockwork_model::ModelId;
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::Timestamp;
use clockwork_workload::{ClosedLoopClient, OpenLoopClient};

use crate::scenario::{ScenarioSpec, WorkloadSpec};
use crate::system::ServingSystem;
use crate::telemetry::{EventMix, ExperimentMetrics, SystemTelemetry};

/// A scenario bound to the runner that executes it.
pub struct Experiment {
    spec: ScenarioSpec,
}

impl Experiment {
    /// Wraps a spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        Experiment { spec }
    }

    /// The spec this experiment runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Runs the full scenario under the given discipline.
    pub fn run(&self, factory: &dyn SchedulerFactory) -> RunReport {
        self.run_capped(factory, u64::MAX)
    }

    /// Runs the scenario under the given discipline, stopping after at most
    /// `max_events` delivered simulation events — the fixed-work smoke mode
    /// perf gates rely on.
    pub fn run_capped(&self, factory: &dyn SchedulerFactory, max_events: u64) -> RunReport {
        let spec = &self.spec;
        let mut system = ServingSystem::from_spec(spec, factory);
        let models: Vec<ModelId> = (0..spec.models as u32).map(ModelId).collect();
        let submitted;
        match spec.workload {
            WorkloadSpec::Azure { .. } | WorkloadSpec::Shaped { .. } => {
                let trace = spec
                    .generated_trace()
                    .expect("pre-generated workload has a trace");
                submitted = trace.len() as u64;
                system.submit_trace(&trace);
            }
            WorkloadSpec::OpenLoop { rate_per_model } => {
                let trace = OpenLoopClient::generate_many(
                    &models,
                    rate_per_model,
                    spec.slo(),
                    spec.duration(),
                    &mut SimRng::seeded(spec.workload_seed),
                );
                submitted = trace.len() as u64;
                system.submit_trace(&trace);
            }
            WorkloadSpec::ClosedLoop { concurrency } => {
                // Clients start staggered by 1 µs so their first submissions
                // have a deterministic order without landing synchronized.
                for (i, &model) in models.iter().enumerate() {
                    system.add_closed_loop_client(
                        ClosedLoopClient::new(model, concurrency, spec.slo()),
                        Timestamp::from_nanos(i as u64 * 1_000),
                    );
                }
                submitted = 0;
            }
        }
        let started = Instant::now();
        system.run_until_events(spec.horizon(), max_events);
        let wall_secs = started.elapsed().as_secs_f64();
        RunReport {
            discipline: system.scheduler_name().to_string(),
            submitted,
            wall_secs,
            max_events,
            system,
        }
    }
}

/// Everything a finished run produced: the final system (telemetry, workers,
/// digest) plus run bookkeeping, with the derived figures and invariant
/// checks the bench binaries report.
pub struct RunReport {
    /// Name of the discipline that drove the run.
    pub discipline: String,
    /// Requests submitted up front (0 for closed-loop workloads, which
    /// generate load interactively).
    pub submitted: u64,
    /// Host wall-clock seconds the run took.
    pub wall_secs: f64,
    /// The event cap the run was given (`u64::MAX` for full runs).
    pub max_events: u64,
    /// The finished system, for telemetry and worker inspection.
    pub system: ServingSystem,
}

impl RunReport {
    /// The run's telemetry.
    pub fn telemetry(&self) -> &SystemTelemetry {
        self.system.telemetry()
    }

    /// The run's aggregate serving metrics.
    pub fn metrics(&self) -> ExperimentMetrics {
        self.telemetry().metrics()
    }

    /// The order-sensitive FNV-1a completion digest (determinism fingerprint).
    pub fn digest(&self) -> u64 {
        self.telemetry().response_digest()
    }

    /// Simulation events delivered.
    pub fn events_processed(&self) -> u64 {
        self.system.events_processed()
    }

    /// Events still scheduled when the run stopped.
    pub fn live_events(&self) -> u64 {
        self.system.pending_events()
    }

    /// Delivered events per host wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Whether the run ran out of work — no live events left, so nothing
    /// further could ever happen — as opposed to stopping at its event cap
    /// or at the horizon with work still pending. Only a drained run can be
    /// held to the exactly-once accounting identity: a best-effort
    /// discipline stopped mid-flight may legitimately still hold queued
    /// requests it would eventually answer (it keeps its tick chain alive
    /// exactly while requests are pending, so a discipline that silently
    /// *dropped* a request empties its queue and still gets caught).
    pub fn drained(&self) -> bool {
        self.live_events() == 0
    }

    /// The per-kind event mix.
    pub fn event_mix(&self) -> &EventMix {
        self.telemetry().event_mix()
    }

    /// The request-lifecycle tracer, when the spec asked for one
    /// ([`ScenarioSpec::with_trace`](crate::scenario::ScenarioSpec::with_trace)).
    /// `None` on untraced runs.
    pub fn trace(&self) -> Option<&clockwork_metrics::RingTracer> {
        self.system.tracer()
    }

    /// Scheduler self-profiling counters (ticks run, early-outs, candidates
    /// scanned, strategies recomputed) — the `sched` object of the bench
    /// JSON artifacts.
    pub fn sched_stats(&self) -> clockwork_controller::SchedProfile {
        self.system.sched_profile()
    }

    /// Total up-front rejections across all reject reasons.
    pub fn rejected(&self) -> u64 {
        self.metrics().rejections.values().sum()
    }

    /// The exactly-once accounting identity `successes + rejected == total`.
    /// Only meaningful for drained runs; an event-capped run legitimately
    /// leaves requests unanswered (but must never answer one twice, which
    /// [`RunReport::overdelivered`] checks).
    pub fn identity_ok(&self) -> bool {
        let m = self.metrics();
        m.successes + self.rejected() == m.total_requests
    }

    /// Whether more responses than requests were recorded — a violation even
    /// for interrupted runs.
    pub fn overdelivered(&self) -> bool {
        let m = self.metrics();
        m.successes + self.rejected() > m.total_requests
    }

    /// The event-mix conservation identity
    /// `pushed == delivered + cancelled + live`.
    pub fn mix_conserved(&self) -> bool {
        let mix = self.event_mix();
        mix.pushed() == mix.delivered() + mix.cancelled() + self.live_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::registry::{ClockworkFactory, FifoFactory};

    #[test]
    fn experiment_runs_a_spec_end_to_end_and_reports() {
        let spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            duration_secs: 2,
            ..ScenarioSpec::smoke(11)
        };
        let report = Experiment::new(spec).run(&ClockworkFactory::default());
        assert_eq!(report.discipline, "clockwork");
        assert!(report.submitted > 0);
        assert!(report.drained());
        assert_eq!(report.metrics().total_requests, report.submitted);
        assert!(report.identity_ok(), "successes + rejected == total");
        assert!(report.mix_conserved(), "event accounting holds");
        assert!(!report.overdelivered());
        assert!(report.events_processed() > 0);
    }

    #[test]
    fn same_spec_same_discipline_same_digest() {
        let spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            duration_secs: 2,
            ..ScenarioSpec::smoke(13)
        };
        let experiment = Experiment::new(spec);
        let a = experiment.run(&ClockworkFactory::default());
        let b = experiment.run(&ClockworkFactory::default());
        assert_eq!(a.digest(), b.digest());
        let fifo = experiment.run(&FifoFactory);
        assert_eq!(fifo.discipline, "fifo");
        assert!(fifo.metrics().total_requests > 0);
    }

    #[test]
    fn closed_loop_workloads_generate_their_own_load() {
        let spec = ScenarioSpec {
            name: "closed".to_string(),
            workers: 1,
            gpus_per_worker: 1,
            models: 2,
            model_set: crate::scenario::ModelSet::Resnet50Copies,
            workload: WorkloadSpec::ClosedLoop { concurrency: 4 },
            duration_secs: 1,
            drain_secs: 0,
            ..ScenarioSpec::smoke(17)
        };
        let report = Experiment::new(spec).run(&ClockworkFactory::default());
        assert_eq!(report.submitted, 0);
        assert!(report.metrics().successes > 0, "clients sustained load");
    }
}
