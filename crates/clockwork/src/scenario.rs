//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] is pure data: cluster shape, model population, workload
//! source (including the Azure-derived MAF-like load), SLO, fault plan,
//! seeds and horizon. It says *what* to run; it deliberately does not say
//! *which discipline* runs it — the discipline arrives separately as a
//! [`SchedulerFactory`], which is what lets one spec drive the paper's
//! headline comparison (the same chaos scenario across Clockwork, FIFO,
//! Clipper and INFaaS).
//!
//! Specs are serde-serializable plain-old data, so they can be stored
//! alongside results: a `BENCH_*.json` document that embeds its spec is a
//! complete, replayable description of the experiment that produced it.
//!
//! [`ServingSystem::from_spec`] builds the cluster (discipline injected);
//! [`Experiment`](crate::experiment::Experiment) owns the full
//! submit/run/drain loop on top.

use serde::{Deserialize, Serialize};

use clockwork_controller::registry::SchedulerFactory;
use clockwork_faults::FaultPlan;
use clockwork_model::zoo::ModelZoo;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_sim::variance::VarianceConfig;
use clockwork_workload::{AzureTraceConfig, AzureTraceGenerator, Trace};

use crate::config::SystemConfig;
use crate::system::ServingSystem;

/// Which model population a scenario registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSet {
    /// `models` instances cycling through the full Appendix A zoo — the
    /// heterogeneous population of the fleet-scale and Azure experiments.
    ZooCycle,
    /// `models` copies of ResNet50 — the homogeneous population of the
    /// Fig. 5 comparison.
    Resnet50Copies,
}

/// Where a scenario's requests come from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// An Azure-Functions-like open-loop trace (`AzureTraceGenerator`):
    /// `functions` workloads with realistic popularity skew and burstiness
    /// mapped onto the scenario's models, at an aggregate `target_rate`
    /// requests/second.
    Azure {
        /// Number of function workloads mapped onto the models.
        functions: usize,
        /// Aggregate request rate in requests/second.
        target_rate: f64,
    },
    /// Independent open-loop Poisson clients, one per model.
    OpenLoop {
        /// Per-model request rate in requests/second.
        rate_per_model: f64,
    },
    /// Closed-loop clients, one per model, each keeping `concurrency`
    /// requests in flight (the §6.1 setup).
    ClosedLoop {
        /// Requests kept in flight per model.
        concurrency: u32,
    },
}

/// A declarative, serializable experiment scenario.
///
/// Build one with a preset ([`ScenarioSpec::fleet_scale`],
/// [`ScenarioSpec::chaos_fleet`], [`ScenarioSpec::smoke`]) or field by
/// field, then hand it to [`Experiment`](crate::experiment::Experiment)
/// together with any registered discipline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, used in experiment output and result files.
    pub name: String,
    /// Number of worker machines.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Model instances registered (see [`ScenarioSpec::model_set`]).
    pub models: usize,
    /// Which model population to register.
    pub model_set: ModelSet,
    /// Where requests come from.
    pub workload: WorkloadSpec,
    /// Per-request latency SLO in milliseconds.
    pub slo_ms: u64,
    /// Virtual duration of the workload in seconds.
    pub duration_secs: u64,
    /// Extra virtual time after the workload ends for in-flight tails to
    /// resolve.
    pub drain_secs: u64,
    /// System seed (workers, network, variance).
    pub seed: u64,
    /// Workload-generation seed (kept separate so a workload can be replayed
    /// against differently-seeded clusters; presets set both equal).
    pub workload_seed: u64,
    /// External interference profile applied to every worker
    /// (`VarianceConfig::none()` for the deterministic-baseline scenarios).
    pub variance: VarianceConfig,
    /// Keep every individual response in memory (disable for large traces).
    pub keep_responses: bool,
    /// Scheduled fleet faults (empty for fault-free runs).
    pub faults: FaultPlan,
    /// Record request-lifecycle trace spans (admission, batch formation,
    /// LOAD/INFER issue and completion, terminal outcomes). Off by default:
    /// the no-op tracer compiles away and the run is byte-identical to an
    /// untraced one — presets all ship with `trace: false` so goldens never
    /// move. Enable with [`ScenarioSpec::with_trace`].
    pub trace: bool,
    /// Span retention when `trace` is on: the wired
    /// [`RingTracer`](clockwork_metrics::RingTracer) keeps at most this many
    /// spans, dropping oldest first and counting every drop. Ignored while
    /// `trace` is off.
    pub trace_capacity: usize,
}

/// Default span retention of a traced scenario (~2 M spans; a traced
/// 10-second smoke emits well under half that, so smokes never wrap).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 21;

impl ScenarioSpec {
    /// The fleet-scale scenario shared by the `fleet_scale` perf harness,
    /// the `chaos_fleet` chaos harness and the `chaos_compare` comparison:
    /// 20 workers × 4 GPUs, 200 model instances cycling through the
    /// Appendix A zoo, and an open-loop Azure-derived trace at 1 500 r/s for
    /// 120 virtual seconds.
    pub fn fleet_scale() -> Self {
        ScenarioSpec {
            name: "fleet_scale".to_string(),
            workers: 20,
            gpus_per_worker: 4,
            models: 200,
            model_set: ModelSet::ZooCycle,
            workload: WorkloadSpec::Azure {
                functions: 800,
                target_rate: 1_500.0,
            },
            slo_ms: 100,
            duration_secs: 120,
            drain_secs: 2,
            seed: 2020,
            workload_seed: 2020,
            variance: VarianceConfig::none(),
            keep_responses: false,
            faults: FaultPlan::new(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The fleet-scale scenario overlaid with the scripted churn schedule
    /// (see [`ScenarioSpec::scripted_churn`]); the chaos run differs from
    /// the perf run *only* by its fault plan.
    pub fn chaos_fleet() -> Self {
        let mut spec = ScenarioSpec::fleet_scale();
        spec.name = "chaos_fleet".to_string();
        spec.faults = spec.scripted_churn();
        spec
    }

    /// A small fleet for fast smoke and determinism tests: 4 workers ×
    /// 2 GPUs, 20 zoo models, a 10 s Azure-like trace at 400 r/s.
    pub fn smoke(seed: u64) -> Self {
        ScenarioSpec {
            name: "smoke".to_string(),
            workers: 4,
            gpus_per_worker: 2,
            models: 20,
            model_set: ModelSet::ZooCycle,
            workload: WorkloadSpec::Azure {
                functions: 80,
                target_rate: 400.0,
            },
            slo_ms: 100,
            duration_secs: 10,
            drain_secs: 2,
            seed,
            workload_seed: seed,
            variance: VarianceConfig::none(),
            keep_responses: false,
            faults: FaultPlan::new(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Renames the scenario (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets both the system and workload seed (builder style) — the usual
    /// meaning of an experiment's `--seed` flag.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.workload_seed = seed;
        self
    }

    /// Scales the scenario duration (builder style). Call *before*
    /// generating a churn plan so the plan scales with it.
    pub fn with_duration_secs(mut self, duration_secs: u64) -> Self {
        self.duration_secs = duration_secs;
        self
    }

    /// Installs a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Turns request-lifecycle tracing on or off (builder style). A traced
    /// run wires a bounded ring tracer (capacity
    /// [`ScenarioSpec::trace_capacity`]) whose JSONL export and digest are
    /// reachable through
    /// [`RunReport::trace`](crate::experiment::RunReport::trace).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the traced-run span retention (builder style); implies nothing
    /// about [`ScenarioSpec::trace`] itself.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Scales the offered load by `multiplier` (builder style): the Azure
    /// aggregate target rate, the open-loop per-model rate, or the
    /// closed-loop client count (rounded, floored at 1). This is the knob
    /// behind load sweeps — the workload *shape* (trace mixture, model
    /// popularity, seeds) is untouched, only its intensity moves.
    pub fn with_rate_multiplier(mut self, multiplier: f64) -> Self {
        match &mut self.workload {
            WorkloadSpec::Azure { target_rate, .. } => *target_rate *= multiplier,
            WorkloadSpec::OpenLoop { rate_per_model } => *rate_per_model *= multiplier,
            WorkloadSpec::ClosedLoop { concurrency } => {
                *concurrency = (((*concurrency as f64) * multiplier).round() as u32).max(1);
            }
        }
        self
    }

    /// The scripted churn schedule, scaled to the scenario duration: two
    /// worker crashes, four extra GPU failures, one partition window and one
    /// degraded link, all recovered by 60 % of the run so the tail measures
    /// recovery.
    pub fn scripted_churn(&self) -> FaultPlan {
        let span = self.duration_secs as f64 * 1e9;
        let at = |f: f64| Timestamp::from_nanos((f * span) as u64);
        let lasting = |f: f64| Nanos::from_nanos((f * span) as u64);
        let worker = |i: u32| i % self.workers.max(1);
        let gpu = |g: u32| g % self.gpus_per_worker.max(1);
        FaultPlan::new()
            .crash_worker_for(at(0.20), worker(3), lasting(0.30))
            .crash_worker_for(at(0.25), worker(11), lasting(0.30))
            .fail_gpu_for(at(0.30), worker(0), gpu(1), lasting(0.30))
            .fail_gpu_for(at(0.32), worker(5), gpu(2), lasting(0.26))
            .fail_gpu_for(at(0.34), worker(8), gpu(0), lasting(0.24))
            .fail_gpu_for(at(0.36), worker(14), gpu(3), lasting(0.22))
            .partition(at(0.35), worker(7), lasting(0.10))
            .degrade_link_for(at(0.40), worker(16), 4.0, lasting(0.15))
    }

    /// The workload duration in virtual time.
    pub fn duration(&self) -> Nanos {
        Nanos::from_secs(self.duration_secs)
    }

    /// The virtual horizon a run is driven to: the workload duration plus
    /// the drain slack.
    pub fn horizon(&self) -> Timestamp {
        Timestamp::ZERO + self.duration() + Nanos::from_secs(self.drain_secs)
    }

    /// The SLO in virtual time.
    pub fn slo(&self) -> Nanos {
        Nanos::from_millis(self.slo_ms)
    }

    /// Generates the Azure-derived trace of an
    /// [`WorkloadSpec::Azure`] scenario (`None` for other workloads, whose
    /// requests are generated per model by the experiment runner).
    pub fn azure_trace(&self) -> Option<Trace> {
        match self.workload {
            WorkloadSpec::Azure {
                functions,
                target_rate,
            } => Some(
                AzureTraceGenerator::new(AzureTraceConfig {
                    functions,
                    models: self.models,
                    duration: self.duration(),
                    target_rate,
                    slo: self.slo(),
                    seed: self.workload_seed,
                })
                .generate(),
            ),
            WorkloadSpec::OpenLoop { .. } | WorkloadSpec::ClosedLoop { .. } => None,
        }
    }

    /// The cluster configuration this spec describes.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            workers: self.workers,
            gpus_per_worker: self.gpus_per_worker,
            variance: self.variance,
            keep_responses: self.keep_responses,
            faults: self.faults.clone(),
            trace_capacity: self.trace.then_some(self.trace_capacity),
            seed: self.seed,
            ..SystemConfig::default()
        }
    }
}

impl ServingSystem {
    /// Builds the cluster a [`ScenarioSpec`] describes, driven by the given
    /// discipline, with the scenario's model population registered and its
    /// fault plan installed. The caller (usually
    /// [`Experiment`](crate::experiment::Experiment)) submits the workload.
    pub fn from_spec(spec: &ScenarioSpec, factory: &dyn SchedulerFactory) -> ServingSystem {
        let mut system = ServingSystem::with_factory(spec.system_config(), factory);
        let zoo = ModelZoo::new();
        match spec.model_set {
            ModelSet::ZooCycle => {
                let varieties = zoo.all();
                for i in 0..spec.models {
                    system.register_model(&varieties[i % varieties.len()]);
                }
            }
            ModelSet::Resnet50Copies => {
                for _ in 0..spec.models {
                    system.register_model(zoo.resnet50());
                }
            }
        }
        system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::registry::ClockworkFactory;

    #[test]
    fn fleet_preset_matches_the_published_scenario() {
        let spec = ScenarioSpec::fleet_scale();
        assert_eq!(spec.workers, 20);
        assert_eq!(spec.gpus_per_worker, 4);
        assert_eq!(spec.models, 200);
        assert_eq!(spec.slo_ms, 100);
        assert_eq!(spec.seed, 2020);
        assert!(spec.faults.is_empty());
        assert_eq!(spec.horizon(), Timestamp::from_secs(122));
    }

    #[test]
    fn chaos_preset_is_fleet_plus_scripted_churn_only() {
        let chaos = ScenarioSpec::chaos_fleet();
        let fleet = ScenarioSpec::fleet_scale()
            .named("chaos_fleet")
            .with_faults(chaos.scripted_churn());
        assert_eq!(chaos, fleet, "chaos differs from fleet only by faults");
        assert_eq!(chaos.faults.worker_crashes(), 2);
        assert_eq!(chaos.faults.gpu_failures(), 4);
        assert_eq!(chaos.faults.partitions(), 1);
        assert_eq!(chaos.faults.link_degradations(), 1);
    }

    #[test]
    fn churn_scales_with_duration() {
        let short = ScenarioSpec::fleet_scale().with_duration_secs(10);
        let plan = short.scripted_churn();
        assert_eq!(plan.first_at(), Some(Timestamp::from_secs(2)));
        assert!(plan.last_at().unwrap() <= Timestamp::from_secs(10));
    }

    #[test]
    fn azure_traces_are_deterministic_functions_of_the_spec() {
        let spec = ScenarioSpec::smoke(7);
        let a = spec.azure_trace().expect("azure workload");
        let b = spec.azure_trace().expect("azure workload");
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn tracing_knobs_flow_into_the_system_config() {
        let off = ScenarioSpec::smoke(3);
        assert!(!off.trace, "presets ship untraced");
        assert_eq!(off.system_config().trace_capacity, None);
        let on = ScenarioSpec::smoke(3)
            .with_trace(true)
            .with_trace_capacity(512);
        assert_eq!(on.system_config().trace_capacity, Some(512));
    }

    #[test]
    fn from_spec_builds_the_described_cluster() {
        let spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            ..ScenarioSpec::smoke(3)
        };
        let system = ServingSystem::from_spec(&spec, &ClockworkFactory::default());
        assert_eq!(system.config().workers, 2);
        assert_eq!(system.config().gpus_per_worker, 1);
        assert_eq!(system.scheduler_name(), "clockwork");
    }
}
