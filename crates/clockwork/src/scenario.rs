//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] is pure data: cluster shape, model population, workload
//! source (including the Azure-derived MAF-like load), SLO, fault plan,
//! seeds and horizon. It says *what* to run; it deliberately does not say
//! *which discipline* runs it — the discipline arrives separately as a
//! [`SchedulerFactory`], which is what lets one spec drive the paper's
//! headline comparison (the same chaos scenario across Clockwork, FIFO,
//! Clipper and INFaaS).
//!
//! Specs are serde-serializable plain-old data, so they can be stored
//! alongside results: a `BENCH_*.json` document that embeds its spec is a
//! complete, replayable description of the experiment that produced it.
//!
//! [`ServingSystem::from_spec`] builds the cluster (discipline injected);
//! [`Experiment`](crate::experiment::Experiment) owns the full
//! submit/run/drain loop on top.

use serde::{Deserialize, Serialize};

use clockwork_controller::registry::SchedulerFactory;
use clockwork_faults::FaultPlan;
use clockwork_model::zoo::ModelZoo;
use clockwork_model::ModelId;
use clockwork_sim::rng::SimRng;
use clockwork_sim::time::{Nanos, Timestamp};
use clockwork_sim::variance::VarianceConfig;
use clockwork_workload::{
    AzureTraceConfig, AzureTraceGenerator, PopularityModel, RateProfile, ShapedWorkload, TierMix,
    Trace,
};

use crate::config::SystemConfig;
use crate::system::ServingSystem;

/// Which model population a scenario registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSet {
    /// `models` instances cycling through the full Appendix A zoo — the
    /// heterogeneous population of the fleet-scale and Azure experiments.
    ZooCycle,
    /// `models` copies of ResNet50 — the homogeneous population of the
    /// Fig. 5 comparison.
    Resnet50Copies,
}

/// Where a scenario's requests come from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// An Azure-Functions-like open-loop trace (`AzureTraceGenerator`):
    /// `functions` workloads with realistic popularity skew and burstiness
    /// mapped onto the scenario's models, at an aggregate `target_rate`
    /// requests/second.
    Azure {
        /// Number of function workloads mapped onto the models.
        functions: usize,
        /// Aggregate request rate in requests/second.
        target_rate: f64,
    },
    /// Independent open-loop Poisson clients, one per model.
    OpenLoop {
        /// Per-model request rate in requests/second.
        rate_per_model: f64,
    },
    /// Closed-loop clients, one per model, each keeping `concurrency`
    /// requests in flight (the §6.1 setup).
    ClosedLoop {
        /// Requests kept in flight per model.
        concurrency: u32,
    },
    /// A shaped open-loop workload ([`ShapedWorkload`]): Poisson arrivals at
    /// an aggregate `base_rate`, shaped over time by a [`RateProfile`]
    /// (diurnal cycles, flash crowds), spread over models by a
    /// [`PopularityModel`] (Zipf skew with drift) and split into SLO tiers
    /// by a [`TierMix`]. The workload zoo presets are all of this kind.
    Shaped {
        /// Baseline aggregate request rate in requests/second.
        base_rate: f64,
        /// How the rate evolves over the duration.
        profile: RateProfile,
        /// How requests spread across the model set.
        popularity: PopularityModel,
        /// Strict/best-effort client split.
        tiers: TierMix,
    },
}

/// A declarative, serializable experiment scenario.
///
/// Build one with a preset ([`ScenarioSpec::fleet_scale`],
/// [`ScenarioSpec::chaos_fleet`], [`ScenarioSpec::smoke`]) or field by
/// field, then hand it to [`Experiment`](crate::experiment::Experiment)
/// together with any registered discipline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, used in experiment output and result files.
    pub name: String,
    /// Number of worker machines.
    pub workers: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// Model instances registered (see [`ScenarioSpec::model_set`]).
    pub models: usize,
    /// Which model population to register.
    pub model_set: ModelSet,
    /// Where requests come from.
    pub workload: WorkloadSpec,
    /// Per-request latency SLO in milliseconds.
    pub slo_ms: u64,
    /// Virtual duration of the workload in seconds.
    pub duration_secs: u64,
    /// Extra virtual time after the workload ends for in-flight tails to
    /// resolve.
    pub drain_secs: u64,
    /// System seed (workers, network, variance).
    pub seed: u64,
    /// Workload-generation seed (kept separate so a workload can be replayed
    /// against differently-seeded clusters; presets set both equal).
    pub workload_seed: u64,
    /// External interference profile applied to every worker
    /// (`VarianceConfig::none()` for the deterministic-baseline scenarios).
    pub variance: VarianceConfig,
    /// Keep every individual response in memory (disable for large traces).
    pub keep_responses: bool,
    /// Scheduled fleet faults (empty for fault-free runs).
    pub faults: FaultPlan,
    /// Record request-lifecycle trace spans (admission, batch formation,
    /// LOAD/INFER issue and completion, terminal outcomes). Off by default:
    /// the no-op tracer compiles away and the run is byte-identical to an
    /// untraced one — presets all ship with `trace: false` so goldens never
    /// move. Enable with [`ScenarioSpec::with_trace`].
    pub trace: bool,
    /// Span retention when `trace` is on: the wired
    /// [`RingTracer`](clockwork_metrics::RingTracer) keeps at most this many
    /// spans, dropping oldest first and counting every drop. Ignored while
    /// `trace` is off.
    pub trace_capacity: usize,
}

/// Default span retention of a traced scenario (~2 M spans; a traced
/// 10-second smoke emits well under half that, so smokes never wrap).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 21;

impl ScenarioSpec {
    /// The fleet-scale scenario shared by the `fleet_scale` perf harness,
    /// the `chaos_fleet` chaos harness and the `chaos_compare` comparison:
    /// 20 workers × 4 GPUs, 200 model instances cycling through the
    /// Appendix A zoo, and an open-loop Azure-derived trace at 1 500 r/s for
    /// 120 virtual seconds.
    pub fn fleet_scale() -> Self {
        ScenarioSpec {
            name: "fleet_scale".to_string(),
            workers: 20,
            gpus_per_worker: 4,
            models: 200,
            model_set: ModelSet::ZooCycle,
            workload: WorkloadSpec::Azure {
                functions: 800,
                target_rate: 1_500.0,
            },
            slo_ms: 100,
            duration_secs: 120,
            drain_secs: 2,
            seed: 2020,
            workload_seed: 2020,
            variance: VarianceConfig::none(),
            keep_responses: false,
            faults: FaultPlan::new(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The fleet-scale scenario overlaid with the scripted churn schedule
    /// (see [`ScenarioSpec::scripted_churn`]); the chaos run differs from
    /// the perf run *only* by its fault plan.
    pub fn chaos_fleet() -> Self {
        let mut spec = ScenarioSpec::fleet_scale();
        spec.name = "chaos_fleet".to_string();
        spec.faults = spec.scripted_churn();
        spec
    }

    /// A small fleet for fast smoke and determinism tests: 4 workers ×
    /// 2 GPUs, 20 zoo models, a 10 s Azure-like trace at 400 r/s.
    pub fn smoke(seed: u64) -> Self {
        ScenarioSpec {
            name: "smoke".to_string(),
            workers: 4,
            gpus_per_worker: 2,
            models: 20,
            model_set: ModelSet::ZooCycle,
            workload: WorkloadSpec::Azure {
                functions: 80,
                target_rate: 400.0,
            },
            slo_ms: 100,
            duration_secs: 10,
            drain_secs: 2,
            seed,
            workload_seed: seed,
            variance: VarianceConfig::none(),
            keep_responses: false,
            faults: FaultPlan::new(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The shared shell of the workload-zoo presets: a mid-sized fleet of
    /// 8 workers × 2 GPUs serving 40 zoo models for 60 virtual seconds at a
    /// 100 ms strict SLO, seed 2020. Each preset swaps in its own workload
    /// (and, for the churn preset, fault plan).
    fn zoo_base(name: &str, workload: WorkloadSpec) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            workers: 8,
            gpus_per_worker: 2,
            models: 40,
            model_set: ModelSet::ZooCycle,
            workload,
            slo_ms: 100,
            duration_secs: 60,
            drain_secs: 2,
            seed: 2020,
            workload_seed: 2020,
            variance: VarianceConfig::none(),
            keep_responses: false,
            faults: FaultPlan::new(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Workload-zoo preset: a smooth day/night load cycle — the rate swings
    /// sinusoidally between 0.2× and 1.8× of 600 r/s over two full periods,
    /// so the run sees two troughs and two peaks.
    pub fn diurnal() -> Self {
        ScenarioSpec::zoo_base(
            "diurnal",
            WorkloadSpec::Shaped {
                base_rate: 600.0,
                profile: RateProfile::Diurnal {
                    amplitude: 0.8,
                    cycles: 2.0,
                },
                popularity: PopularityModel::Uniform,
                tiers: TierMix::ALL_STRICT,
            },
        )
    }

    /// Workload-zoo preset: a flash crowd — baseline 300 r/s with a 10×
    /// spike over `[40 %, 50 %)` of the run, on a tiered client population
    /// (60 % strict at the scenario SLO, 40 % best-effort at 250 ms). This
    /// is the graceful-degradation scenario: inside the spike the fleet is
    /// far over capacity and tier-aware admission must shed best-effort
    /// traffic first, keeping strict-tier retention at or above best-effort
    /// retention.
    pub fn flash_crowd() -> Self {
        ScenarioSpec::zoo_base(
            "flash_crowd",
            WorkloadSpec::Shaped {
                base_rate: 300.0,
                profile: RateProfile::FlashCrowd {
                    start_frac: 0.4,
                    len_frac: 0.1,
                    multiplier: 10.0,
                },
                popularity: PopularityModel::Uniform,
                tiers: TierMix {
                    strict_share_milli: 600,
                    best_effort_slo_ms: 250,
                },
            },
        )
    }

    /// Workload-zoo preset: heavy-tailed model popularity — Zipf with
    /// exponent 1.1 over the 40 models, with the ranking rotating one step
    /// every 10 seconds so the hot set drifts across the zoo over the run.
    pub fn zipf_drift() -> Self {
        ScenarioSpec::zoo_base(
            "zipf_drift",
            WorkloadSpec::Shaped {
                base_rate: 600.0,
                profile: RateProfile::Constant,
                popularity: PopularityModel::Zipf {
                    exponent_milli: 1100,
                    drift_segments: 10,
                },
                tiers: TierMix::ALL_STRICT,
            },
        )
    }

    /// Workload-zoo preset: multi-tenant SLO tiers — a flat uniform load
    /// split evenly between strict clients at the scenario's 100 ms SLO and
    /// best-effort clients at 250 ms, with no overload. Under nominal load
    /// both tiers should retain essentially everything; the preset exists to
    /// pin that tier-aware admission is inert without pressure.
    pub fn multi_tenant() -> Self {
        ScenarioSpec::zoo_base(
            "multi_tenant",
            WorkloadSpec::Shaped {
                base_rate: 600.0,
                profile: RateProfile::Constant,
                popularity: PopularityModel::Uniform,
                tiers: TierMix {
                    strict_share_milli: 500,
                    best_effort_slo_ms: 250,
                },
            },
        )
    }

    /// Workload-zoo preset: autoscale under churn — the Azure-derived trace
    /// at 700 r/s while the fleet both grows and breaks: two brand-new cold
    /// workers join at indices beyond the initial fleet, interleaved with
    /// two worker crashes and a GPU failure, all recovered by 70 % of the
    /// run.
    pub fn autoscale_churn() -> Self {
        let mut spec = ScenarioSpec::zoo_base(
            "autoscale_churn",
            WorkloadSpec::Azure {
                functions: 160,
                target_rate: 700.0,
            },
        );
        spec.faults = spec.elastic_churn();
        spec
    }

    /// The autoscale-under-churn schedule, scaled to the scenario duration
    /// (see [`ScenarioSpec::autoscale_churn`]): two cold workers join at
    /// indices beyond the current fleet size, interleaved with two worker
    /// crashes and a GPU failure, everything recovered by 70 % of the run.
    /// Like [`ScenarioSpec::scripted_churn`], call this *after* any duration
    /// change so the plan scales with it.
    pub fn elastic_churn(&self) -> FaultPlan {
        let span = self.duration_secs as f64 * 1e9;
        let at = |f: f64| Timestamp::from_nanos((f * span) as u64);
        let lasting = |f: f64| Nanos::from_nanos((f * span) as u64);
        let worker = |i: u32| i % self.workers.max(1);
        FaultPlan::new()
            .join_worker(at(0.15), self.workers)
            .crash_worker_for(at(0.25), worker(2), lasting(0.20))
            .fail_gpu_for(
                at(0.35),
                worker(1),
                1 % self.gpus_per_worker.max(1),
                lasting(0.20),
            )
            .join_worker(at(0.40), self.workers + 1)
            .crash_worker_for(at(0.50), worker(5), lasting(0.20))
    }

    /// Workload-zoo preset: a correlated rack outage — the Azure-derived
    /// trace at 700 r/s while a three-machine rack (workers 2–4 of the
    /// 8-worker zoo fleet) loses power as one at 30 % of the run, restarts
    /// cold 20 % later, and resyncs over a 4× degraded shared uplink. The
    /// correlated-failure counterpart of `autoscale_churn`'s independent
    /// faults: three simultaneous crashes remove 3/8 of capacity in one
    /// instant instead of spreading the damage out.
    pub fn rack_outage() -> Self {
        let mut spec = ScenarioSpec::zoo_base(
            "rack_outage",
            WorkloadSpec::Azure {
                functions: 160,
                target_rate: 700.0,
            },
        );
        spec.faults = spec.rack_churn();
        spec
    }

    /// The rack-outage schedule, scaled to the scenario duration (see
    /// [`ScenarioSpec::rack_outage`]): workers 2–4 (mod fleet size) crash
    /// simultaneously at 30 % of the run for 20 % of it, then resync over a
    /// 4× degraded link for another 10 %. Like
    /// [`ScenarioSpec::scripted_churn`], call this *after* any duration
    /// change so the plan scales with it.
    pub fn rack_churn(&self) -> FaultPlan {
        let span = self.duration_secs as f64 * 1e9;
        let at = |f: f64| Timestamp::from_nanos((f * span) as u64);
        let lasting = |f: f64| Nanos::from_nanos((f * span) as u64);
        let n = self.workers.max(1);
        let rack: Vec<u32> = (2..5).map(|i| i % n).collect();
        FaultPlan::new().rack_failure(at(0.30), &rack, 4.0, lasting(0.20))
    }

    /// The duration-scaled fault plan belonging to a zoo preset, dispatched
    /// by preset name — the regeneration hook harnesses use after shortening
    /// a preset (`scenario_matrix --duration-secs`, the zoo-matrix tests):
    /// `autoscale_churn` regenerates its elastic churn, `rack_outage` its
    /// rack failure, every other preset is fault-free.
    pub fn zoo_faults(&self) -> FaultPlan {
        match self.name.as_str() {
            "autoscale_churn" => self.elastic_churn(),
            "rack_outage" => self.rack_churn(),
            _ => FaultPlan::new(),
        }
    }

    /// Every workload-zoo preset, in a stable order — the scenario matrix
    /// iterates this against every registered discipline.
    pub fn zoo() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::diurnal(),
            ScenarioSpec::flash_crowd(),
            ScenarioSpec::zipf_drift(),
            ScenarioSpec::multi_tenant(),
            ScenarioSpec::autoscale_churn(),
            ScenarioSpec::rack_outage(),
        ]
    }

    /// Renames the scenario (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets both the system and workload seed (builder style) — the usual
    /// meaning of an experiment's `--seed` flag.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.workload_seed = seed;
        self
    }

    /// Scales the scenario duration (builder style). Call *before*
    /// generating a churn plan so the plan scales with it.
    pub fn with_duration_secs(mut self, duration_secs: u64) -> Self {
        self.duration_secs = duration_secs;
        self
    }

    /// Installs a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Turns request-lifecycle tracing on or off (builder style). A traced
    /// run wires a bounded ring tracer (capacity
    /// [`ScenarioSpec::trace_capacity`]) whose JSONL export and digest are
    /// reachable through
    /// [`RunReport::trace`](crate::experiment::RunReport::trace).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the traced-run span retention (builder style); implies nothing
    /// about [`ScenarioSpec::trace`] itself.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Scales the offered load by `multiplier` (builder style): the Azure
    /// aggregate target rate, the open-loop per-model rate, or the
    /// closed-loop client count (rounded, floored at 1). This is the knob
    /// behind load sweeps — the workload *shape* (trace mixture, model
    /// popularity, seeds) is untouched, only its intensity moves.
    pub fn with_rate_multiplier(mut self, multiplier: f64) -> Self {
        match &mut self.workload {
            WorkloadSpec::Azure { target_rate, .. } => *target_rate *= multiplier,
            WorkloadSpec::OpenLoop { rate_per_model } => *rate_per_model *= multiplier,
            WorkloadSpec::ClosedLoop { concurrency } => {
                *concurrency = (((*concurrency as f64) * multiplier).round() as u32).max(1);
            }
            WorkloadSpec::Shaped { base_rate, .. } => *base_rate *= multiplier,
        }
        self
    }

    /// The scripted churn schedule, scaled to the scenario duration: two
    /// worker crashes, four extra GPU failures, one partition window and one
    /// degraded link, all recovered by 60 % of the run so the tail measures
    /// recovery.
    pub fn scripted_churn(&self) -> FaultPlan {
        let span = self.duration_secs as f64 * 1e9;
        let at = |f: f64| Timestamp::from_nanos((f * span) as u64);
        let lasting = |f: f64| Nanos::from_nanos((f * span) as u64);
        let worker = |i: u32| i % self.workers.max(1);
        let gpu = |g: u32| g % self.gpus_per_worker.max(1);
        FaultPlan::new()
            .crash_worker_for(at(0.20), worker(3), lasting(0.30))
            .crash_worker_for(at(0.25), worker(11), lasting(0.30))
            .fail_gpu_for(at(0.30), worker(0), gpu(1), lasting(0.30))
            .fail_gpu_for(at(0.32), worker(5), gpu(2), lasting(0.26))
            .fail_gpu_for(at(0.34), worker(8), gpu(0), lasting(0.24))
            .fail_gpu_for(at(0.36), worker(14), gpu(3), lasting(0.22))
            .partition(at(0.35), worker(7), lasting(0.10))
            .degrade_link_for(at(0.40), worker(16), 4.0, lasting(0.15))
    }

    /// The workload duration in virtual time.
    pub fn duration(&self) -> Nanos {
        Nanos::from_secs(self.duration_secs)
    }

    /// The virtual horizon a run is driven to: the workload duration plus
    /// the drain slack.
    pub fn horizon(&self) -> Timestamp {
        Timestamp::ZERO + self.duration() + Nanos::from_secs(self.drain_secs)
    }

    /// The SLO in virtual time.
    pub fn slo(&self) -> Nanos {
        Nanos::from_millis(self.slo_ms)
    }

    /// Generates the Azure-derived trace of an
    /// [`WorkloadSpec::Azure`] scenario (`None` for other workloads, whose
    /// requests are generated per model by the experiment runner).
    pub fn azure_trace(&self) -> Option<Trace> {
        match self.workload {
            WorkloadSpec::Azure {
                functions,
                target_rate,
            } => Some(
                AzureTraceGenerator::new(AzureTraceConfig {
                    functions,
                    models: self.models,
                    duration: self.duration(),
                    target_rate,
                    slo: self.slo(),
                    seed: self.workload_seed,
                })
                .generate(),
            ),
            WorkloadSpec::OpenLoop { .. }
            | WorkloadSpec::ClosedLoop { .. }
            | WorkloadSpec::Shaped { .. } => None,
        }
    }

    /// Generates the full up-front trace of any pre-generated workload:
    /// [`WorkloadSpec::Azure`] and [`WorkloadSpec::Shaped`] scenarios
    /// produce their whole trace here (a pure function of the spec);
    /// open-loop and closed-loop scenarios return `None` — their requests
    /// are generated per model by the experiment runner.
    pub fn generated_trace(&self) -> Option<Trace> {
        match self.workload {
            WorkloadSpec::Azure { .. } => self.azure_trace(),
            WorkloadSpec::Shaped {
                base_rate,
                profile,
                popularity,
                tiers,
            } => {
                let models: Vec<ModelId> = (0..self.models as u32).map(ModelId).collect();
                let shape = ShapedWorkload {
                    base_rate,
                    profile,
                    popularity,
                    tiers,
                };
                Some(shape.generate(
                    &models,
                    self.slo(),
                    self.duration(),
                    &SimRng::seeded(self.workload_seed),
                ))
            }
            WorkloadSpec::OpenLoop { .. } | WorkloadSpec::ClosedLoop { .. } => None,
        }
    }

    /// Serializes the spec to a self-contained JSON document —
    /// [`ScenarioSpec::from_json`] inverts it exactly. Stored alongside
    /// results, the document is a complete, replayable description of the
    /// experiment that produced them; on invariant violations the fuzz
    /// harness writes the offending spec through this so failures arrive
    /// with their minimized repro attached.
    pub fn to_json(&self) -> String {
        json::spec_to_json(self)
    }

    /// Parses a spec previously written by [`ScenarioSpec::to_json`].
    pub fn from_json(text: &str) -> Result<ScenarioSpec, String> {
        json::spec_from_json(text)
    }

    /// The cluster configuration this spec describes.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            workers: self.workers,
            gpus_per_worker: self.gpus_per_worker,
            variance: self.variance,
            keep_responses: self.keep_responses,
            faults: self.faults.clone(),
            trace_capacity: self.trace.then_some(self.trace_capacity),
            seed: self.seed,
            ..SystemConfig::default()
        }
    }
}

impl ServingSystem {
    /// Builds the cluster a [`ScenarioSpec`] describes, driven by the given
    /// discipline, with the scenario's model population registered and its
    /// fault plan installed. The caller (usually
    /// [`Experiment`](crate::experiment::Experiment)) submits the workload.
    pub fn from_spec(spec: &ScenarioSpec, factory: &dyn SchedulerFactory) -> ServingSystem {
        let mut system = ServingSystem::with_factory(spec.system_config(), factory);
        let zoo = ModelZoo::new();
        match spec.model_set {
            ModelSet::ZooCycle => {
                let varieties = zoo.all();
                for i in 0..spec.models {
                    system.register_model(&varieties[i % varieties.len()]);
                }
            }
            ModelSet::Resnet50Copies => {
                for _ in 0..spec.models {
                    system.register_model(zoo.resnet50());
                }
            }
        }
        system
    }
}

/// Hand-written JSON round-trip for [`ScenarioSpec`].
///
/// The writer emits a stable field order; the reader is a small
/// recursive-descent JSON parser that accepts any field order and rejects
/// malformed documents with a path-qualified error. Numbers are kept as raw
/// tokens until a field asks for `u64` or `f64`, so 64-bit timestamps and
/// seeds round-trip without passing through `f64`.
mod json {
    use super::*;
    use clockwork_faults::FaultKind;

    // ---------------------------------------------------------------- value

    enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        fn get<'a>(&'a self, key: &str) -> Result<&'a Value, String> {
            match self {
                Value::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("missing field `{key}`")),
                _ => Err(format!("expected object around `{key}`")),
            }
        }

        fn as_u64(&self, key: &str) -> Result<u64, String> {
            match self {
                Value::Num(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("`{key}`: not a u64: {raw}")),
                _ => Err(format!("`{key}`: expected a number")),
            }
        }

        fn as_f64(&self, key: &str) -> Result<f64, String> {
            match self {
                Value::Num(raw) => raw
                    .parse::<f64>()
                    .map_err(|_| format!("`{key}`: not a number: {raw}")),
                _ => Err(format!("`{key}`: expected a number")),
            }
        }

        fn as_bool(&self, key: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("`{key}`: expected a bool")),
            }
        }

        fn as_str(&self, key: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("`{key}`: expected a string")),
            }
        }

        fn as_arr(&self, key: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("`{key}`: expected an array")),
            }
        }
    }

    fn u64_of(v: &Value, key: &str) -> Result<u64, String> {
        v.get(key)?.as_u64(key)
    }

    fn f64_of(v: &Value, key: &str) -> Result<f64, String> {
        v.get(key)?.as_f64(key)
    }

    // --------------------------------------------------------------- parser

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(format!("expected a value at byte {start}"));
            }
            let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "invalid utf-8 in number".to_string())?;
            raw.parse::<f64>()
                .map_err(|_| format!("malformed number: {raw}"))?;
            Ok(Value::Num(raw.to_string()))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape: {hex}"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| format!("bad codepoint {code}"))?,
                                );
                            }
                            _ => return Err(format!("unknown escape \\{}", esc as char)),
                        }
                    }
                    _ => {
                        // Re-assemble multi-byte UTF-8 sequences verbatim.
                        let len = match b {
                            _ if b < 0x80 => 1,
                            _ if b >> 5 == 0b110 => 2,
                            _ if b >> 4 == 0b1110 => 3,
                            _ => 4,
                        };
                        let start = self.pos - 1;
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| "invalid utf-8 in string".to_string())?;
                        out.push_str(chunk);
                        self.pos = start + len;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
                }
            }
        }
    }

    fn parse(text: &str) -> Result<Value, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    // --------------------------------------------------------------- writer

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn workload_to_json(workload: &WorkloadSpec) -> String {
        match *workload {
            WorkloadSpec::Azure {
                functions,
                target_rate,
            } => {
                format!(r#"{{"kind":"azure","functions":{functions},"target_rate":{target_rate}}}"#)
            }
            WorkloadSpec::OpenLoop { rate_per_model } => {
                format!(r#"{{"kind":"open_loop","rate_per_model":{rate_per_model}}}"#)
            }
            WorkloadSpec::ClosedLoop { concurrency } => {
                format!(r#"{{"kind":"closed_loop","concurrency":{concurrency}}}"#)
            }
            WorkloadSpec::Shaped {
                base_rate,
                profile,
                popularity,
                tiers,
            } => {
                let profile = match profile {
                    RateProfile::Constant => r#"{"kind":"constant"}"#.to_string(),
                    RateProfile::Diurnal { amplitude, cycles } => {
                        format!(r#"{{"kind":"diurnal","amplitude":{amplitude},"cycles":{cycles}}}"#)
                    }
                    RateProfile::FlashCrowd {
                        start_frac,
                        len_frac,
                        multiplier,
                    } => format!(
                        r#"{{"kind":"flash_crowd","start_frac":{start_frac},"len_frac":{len_frac},"multiplier":{multiplier}}}"#
                    ),
                };
                let popularity = match popularity {
                    PopularityModel::Uniform => r#"{"kind":"uniform"}"#.to_string(),
                    PopularityModel::Zipf {
                        exponent_milli,
                        drift_segments,
                    } => format!(
                        r#"{{"kind":"zipf","exponent_milli":{exponent_milli},"drift_segments":{drift_segments}}}"#
                    ),
                };
                format!(
                    r#"{{"kind":"shaped","base_rate":{base_rate},"profile":{profile},"popularity":{popularity},"tiers":{{"strict_share_milli":{},"best_effort_slo_ms":{}}}}}"#,
                    tiers.strict_share_milli, tiers.best_effort_slo_ms
                )
            }
        }
    }

    fn fault_to_json(at: Timestamp, kind: &FaultKind) -> String {
        let at = at.as_nanos();
        match *kind {
            FaultKind::GpuFail { worker, gpu } => {
                format!(r#"{{"at_ns":{at},"kind":"gpu_fail","worker":{worker},"gpu":{gpu}}}"#)
            }
            FaultKind::GpuRecover { worker, gpu } => {
                format!(r#"{{"at_ns":{at},"kind":"gpu_recover","worker":{worker},"gpu":{gpu}}}"#)
            }
            FaultKind::WorkerCrash { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"worker_crash","worker":{worker}}}"#)
            }
            FaultKind::WorkerRestart { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"worker_restart","worker":{worker}}}"#)
            }
            FaultKind::LinkDegrade {
                worker,
                factor_milli,
            } => format!(
                r#"{{"at_ns":{at},"kind":"link_degrade","worker":{worker},"factor_milli":{factor_milli}}}"#
            ),
            FaultKind::LinkRestore { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"link_restore","worker":{worker}}}"#)
            }
            FaultKind::PartitionStart { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"partition_start","worker":{worker}}}"#)
            }
            FaultKind::PartitionEnd { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"partition_end","worker":{worker}}}"#)
            }
            FaultKind::WorkerJoin { worker } => {
                format!(r#"{{"at_ns":{at},"kind":"worker_join","worker":{worker}}}"#)
            }
        }
    }

    pub(super) fn spec_to_json(spec: &ScenarioSpec) -> String {
        let model_set = match spec.model_set {
            ModelSet::ZooCycle => "zoo_cycle",
            ModelSet::Resnet50Copies => "resnet50_copies",
        };
        let throttle = match spec.variance.throttle_mean_interval {
            Some(interval) => interval.as_nanos().to_string(),
            None => "null".to_string(),
        };
        let variance = format!(
            r#"{{"spike_probability":{},"max_spike_ns":{},"throttle_mean_interval_ns":{},"throttle_duration_ns":{},"throttle_factor":{}}}"#,
            spec.variance.spike_probability,
            spec.variance.max_spike.as_nanos(),
            throttle,
            spec.variance.throttle_duration.as_nanos(),
            spec.variance.throttle_factor,
        );
        let faults: Vec<String> = spec
            .faults
            .events()
            .iter()
            .map(|e| fault_to_json(e.at, &e.kind))
            .collect();
        format!(
            concat!(
                r#"{{"name":"{name}","workers":{workers},"gpus_per_worker":{gpus},"#,
                r#""models":{models},"model_set":"{model_set}","workload":{workload},"#,
                r#""slo_ms":{slo_ms},"duration_secs":{duration},"drain_secs":{drain},"#,
                r#""seed":{seed},"workload_seed":{workload_seed},"variance":{variance},"#,
                r#""keep_responses":{keep},"faults":[{faults}],"trace":{trace},"#,
                r#""trace_capacity":{trace_capacity}}}"#
            ),
            name = escape(&spec.name),
            workers = spec.workers,
            gpus = spec.gpus_per_worker,
            models = spec.models,
            model_set = model_set,
            workload = workload_to_json(&spec.workload),
            slo_ms = spec.slo_ms,
            duration = spec.duration_secs,
            drain = spec.drain_secs,
            seed = spec.seed,
            workload_seed = spec.workload_seed,
            variance = variance,
            keep = spec.keep_responses,
            faults = faults.join(","),
            trace = spec.trace,
            trace_capacity = spec.trace_capacity,
        )
    }

    // --------------------------------------------------------------- reader

    fn workload_from_value(v: &Value) -> Result<WorkloadSpec, String> {
        match v.get("kind")?.as_str("workload.kind")? {
            "azure" => Ok(WorkloadSpec::Azure {
                functions: u64_of(v, "functions")? as usize,
                target_rate: f64_of(v, "target_rate")?,
            }),
            "open_loop" => Ok(WorkloadSpec::OpenLoop {
                rate_per_model: f64_of(v, "rate_per_model")?,
            }),
            "closed_loop" => Ok(WorkloadSpec::ClosedLoop {
                concurrency: u64_of(v, "concurrency")? as u32,
            }),
            "shaped" => {
                let profile = v.get("profile")?;
                let profile = match profile.get("kind")?.as_str("profile.kind")? {
                    "constant" => RateProfile::Constant,
                    "diurnal" => RateProfile::Diurnal {
                        amplitude: f64_of(profile, "amplitude")?,
                        cycles: f64_of(profile, "cycles")?,
                    },
                    "flash_crowd" => RateProfile::FlashCrowd {
                        start_frac: f64_of(profile, "start_frac")?,
                        len_frac: f64_of(profile, "len_frac")?,
                        multiplier: f64_of(profile, "multiplier")?,
                    },
                    other => return Err(format!("unknown rate profile `{other}`")),
                };
                let popularity = v.get("popularity")?;
                let popularity = match popularity.get("kind")?.as_str("popularity.kind")? {
                    "uniform" => PopularityModel::Uniform,
                    "zipf" => PopularityModel::Zipf {
                        exponent_milli: u64_of(popularity, "exponent_milli")? as u32,
                        drift_segments: u64_of(popularity, "drift_segments")? as u32,
                    },
                    other => return Err(format!("unknown popularity model `{other}`")),
                };
                let tiers = v.get("tiers")?;
                Ok(WorkloadSpec::Shaped {
                    base_rate: f64_of(v, "base_rate")?,
                    profile,
                    popularity,
                    tiers: TierMix {
                        strict_share_milli: u64_of(tiers, "strict_share_milli")? as u32,
                        best_effort_slo_ms: u64_of(tiers, "best_effort_slo_ms")?,
                    },
                })
            }
            other => Err(format!("unknown workload kind `{other}`")),
        }
    }

    fn fault_from_value(v: &Value) -> Result<(Timestamp, FaultKind), String> {
        let at = Timestamp::from_nanos(u64_of(v, "at_ns")?);
        let worker = u64_of(v, "worker")? as u32;
        let kind = match v.get("kind")?.as_str("fault.kind")? {
            "gpu_fail" => FaultKind::GpuFail {
                worker,
                gpu: u64_of(v, "gpu")? as u32,
            },
            "gpu_recover" => FaultKind::GpuRecover {
                worker,
                gpu: u64_of(v, "gpu")? as u32,
            },
            "worker_crash" => FaultKind::WorkerCrash { worker },
            "worker_restart" => FaultKind::WorkerRestart { worker },
            "link_degrade" => FaultKind::LinkDegrade {
                worker,
                factor_milli: u64_of(v, "factor_milli")? as u32,
            },
            "link_restore" => FaultKind::LinkRestore { worker },
            "partition_start" => FaultKind::PartitionStart { worker },
            "partition_end" => FaultKind::PartitionEnd { worker },
            "worker_join" => FaultKind::WorkerJoin { worker },
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        Ok((at, kind))
    }

    pub(super) fn spec_from_json(text: &str) -> Result<ScenarioSpec, String> {
        let root = parse(text)?;
        let variance = root.get("variance")?;
        let throttle = match variance.get("throttle_mean_interval_ns")? {
            Value::Null => None,
            v => Some(Nanos::from_nanos(v.as_u64("throttle_mean_interval_ns")?)),
        };
        let mut faults = FaultPlan::new();
        for item in root.get("faults")?.as_arr("faults")? {
            let (at, kind) = fault_from_value(item)?;
            faults.push(at, kind);
        }
        Ok(ScenarioSpec {
            name: root.get("name")?.as_str("name")?.to_string(),
            workers: u64_of(&root, "workers")? as u32,
            gpus_per_worker: u64_of(&root, "gpus_per_worker")? as u32,
            models: u64_of(&root, "models")? as usize,
            model_set: match root.get("model_set")?.as_str("model_set")? {
                "zoo_cycle" => ModelSet::ZooCycle,
                "resnet50_copies" => ModelSet::Resnet50Copies,
                other => return Err(format!("unknown model set `{other}`")),
            },
            workload: workload_from_value(root.get("workload")?)?,
            slo_ms: u64_of(&root, "slo_ms")?,
            duration_secs: u64_of(&root, "duration_secs")?,
            drain_secs: u64_of(&root, "drain_secs")?,
            seed: u64_of(&root, "seed")?,
            workload_seed: u64_of(&root, "workload_seed")?,
            variance: VarianceConfig {
                spike_probability: f64_of(variance, "spike_probability")?,
                max_spike: Nanos::from_nanos(u64_of(variance, "max_spike_ns")?),
                throttle_mean_interval: throttle,
                throttle_duration: Nanos::from_nanos(u64_of(variance, "throttle_duration_ns")?),
                throttle_factor: f64_of(variance, "throttle_factor")?,
            },
            keep_responses: root.get("keep_responses")?.as_bool("keep_responses")?,
            faults,
            trace: root.get("trace")?.as_bool("trace")?,
            trace_capacity: u64_of(&root, "trace_capacity")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockwork_controller::registry::ClockworkFactory;

    #[test]
    fn fleet_preset_matches_the_published_scenario() {
        let spec = ScenarioSpec::fleet_scale();
        assert_eq!(spec.workers, 20);
        assert_eq!(spec.gpus_per_worker, 4);
        assert_eq!(spec.models, 200);
        assert_eq!(spec.slo_ms, 100);
        assert_eq!(spec.seed, 2020);
        assert!(spec.faults.is_empty());
        assert_eq!(spec.horizon(), Timestamp::from_secs(122));
    }

    #[test]
    fn chaos_preset_is_fleet_plus_scripted_churn_only() {
        let chaos = ScenarioSpec::chaos_fleet();
        let fleet = ScenarioSpec::fleet_scale()
            .named("chaos_fleet")
            .with_faults(chaos.scripted_churn());
        assert_eq!(chaos, fleet, "chaos differs from fleet only by faults");
        assert_eq!(chaos.faults.worker_crashes(), 2);
        assert_eq!(chaos.faults.gpu_failures(), 4);
        assert_eq!(chaos.faults.partitions(), 1);
        assert_eq!(chaos.faults.link_degradations(), 1);
    }

    #[test]
    fn churn_scales_with_duration() {
        let short = ScenarioSpec::fleet_scale().with_duration_secs(10);
        let plan = short.scripted_churn();
        assert_eq!(plan.first_at(), Some(Timestamp::from_secs(2)));
        assert!(plan.last_at().unwrap() <= Timestamp::from_secs(10));
    }

    #[test]
    fn azure_traces_are_deterministic_functions_of_the_spec() {
        let spec = ScenarioSpec::smoke(7);
        let a = spec.azure_trace().expect("azure workload");
        let b = spec.azure_trace().expect("azure workload");
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn tracing_knobs_flow_into_the_system_config() {
        let off = ScenarioSpec::smoke(3);
        assert!(!off.trace, "presets ship untraced");
        assert_eq!(off.system_config().trace_capacity, None);
        let on = ScenarioSpec::smoke(3)
            .with_trace(true)
            .with_trace_capacity(512);
        assert_eq!(on.system_config().trace_capacity, Some(512));
    }

    #[test]
    fn zoo_presets_cover_the_advertised_diversity() {
        let zoo = ScenarioSpec::zoo();
        assert_eq!(zoo.len(), 6);
        let names: Vec<&str> = zoo.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "diurnal",
                "flash_crowd",
                "zipf_drift",
                "multi_tenant",
                "autoscale_churn",
                "rack_outage"
            ]
        );
        for spec in &zoo {
            assert_eq!(spec.seed, 2020, "{}: presets share the seed", spec.name);
            assert!(!spec.trace, "{}: presets ship untraced", spec.name);
        }
        // The flash crowd is the tiered overload scenario.
        let flash = &zoo[1];
        match flash.workload {
            WorkloadSpec::Shaped { profile, tiers, .. } => {
                assert!(matches!(
                    profile,
                    RateProfile::FlashCrowd { multiplier, .. } if multiplier == 10.0
                ));
                assert!(tiers.is_tiered());
            }
            ref other => panic!("flash_crowd should be shaped, got {other:?}"),
        }
        // The churn preset joins workers beyond the initial fleet while
        // crashing existing ones.
        let churn = &zoo[4];
        assert_eq!(churn.faults.worker_joins(), 2);
        assert_eq!(churn.faults.worker_crashes(), 2);
        assert_eq!(churn.faults.gpu_failures(), 1);
        // The rack preset is the correlated-failure scenario: three workers
        // crash at the same instant and resync over degraded links.
        let rack = &zoo[5];
        assert_eq!(rack.faults.worker_crashes(), 3);
        assert_eq!(rack.faults.link_degradations(), 3);
        let crash_times: Vec<Timestamp> = rack
            .faults
            .events()
            .iter()
            .filter_map(|e| {
                matches!(e.kind, clockwork_faults::FaultKind::WorkerCrash { .. }).then_some(e.at)
            })
            .collect();
        assert_eq!(crash_times.len(), 3);
        assert!(
            crash_times.windows(2).all(|w| w[0] == w[1]),
            "the rack dies as one"
        );
        // zoo_faults re-derives each preset's plan, scaled to duration.
        for spec in &zoo {
            assert_eq!(
                spec.zoo_faults(),
                spec.faults,
                "{}: plan mismatch",
                spec.name
            );
            let short = spec.clone().with_duration_secs(6);
            if let Some(last) = short.zoo_faults().last_at() {
                assert!(last <= short.horizon(), "{}: scaled plan fits", spec.name);
            }
        }
    }

    #[test]
    fn shaped_scenarios_generate_their_traces() {
        for spec in ScenarioSpec::zoo() {
            let spec = spec.with_duration_secs(5);
            let trace = spec.generated_trace().expect("zoo workloads pre-generate");
            assert!(!trace.is_empty(), "{}", spec.name);
            let again = spec.generated_trace().unwrap();
            assert_eq!(trace, again, "{}: trace is a pure function", spec.name);
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let mut all = ScenarioSpec::zoo();
        all.push(ScenarioSpec::fleet_scale());
        all.push(ScenarioSpec::chaos_fleet());
        all.push(ScenarioSpec::smoke(7));
        all.push(
            ScenarioSpec::smoke(9)
                .named("hostile \"quoted\"\nname")
                .with_trace(true),
        );
        let mut hostile = ScenarioSpec::smoke(11);
        hostile.variance = VarianceConfig::hostile();
        hostile.workload = WorkloadSpec::OpenLoop {
            rate_per_model: 12.5,
        };
        all.push(hostile);
        let mut closed = ScenarioSpec::smoke(13);
        closed.workload = WorkloadSpec::ClosedLoop { concurrency: 4 };
        all.push(closed);
        for spec in all {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: {e}\n{json}", spec.name));
            assert_eq!(spec, back, "{} round-trips", spec.name);
        }
    }

    #[test]
    fn malformed_spec_json_is_rejected_not_defaulted() {
        assert!(ScenarioSpec::from_json("").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
        assert!(ScenarioSpec::from_json("not json").is_err());
        let good = ScenarioSpec::flash_crowd().to_json();
        assert!(ScenarioSpec::from_json(&good[..good.len() - 1]).is_err());
        let tampered = good.replace("\"flash_crowd\"", "\"no_such_profile\"");
        assert!(ScenarioSpec::from_json(&tampered).is_err());
        let trailing = format!("{good} extra");
        assert!(ScenarioSpec::from_json(&trailing).is_err());
    }

    #[test]
    fn rate_multiplier_scales_shaped_workloads() {
        let spec = ScenarioSpec::flash_crowd().with_rate_multiplier(2.0);
        match spec.workload {
            WorkloadSpec::Shaped { base_rate, .. } => assert_eq!(base_rate, 600.0),
            ref other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn from_spec_builds_the_described_cluster() {
        let spec = ScenarioSpec {
            workers: 2,
            gpus_per_worker: 1,
            models: 4,
            ..ScenarioSpec::smoke(3)
        };
        let system = ServingSystem::from_spec(&spec, &ClockworkFactory::default());
        assert_eq!(system.config().workers, 2);
        assert_eq!(system.config().gpus_per_worker, 1);
        assert_eq!(system.scheduler_name(), "clockwork");
    }
}
