//! SLO-focused end-to-end tests: the properties the paper's evaluation
//! highlights, checked as invariants on small scenarios.

use clockwork::prelude::*;

/// Warm, underloaded ResNet50 must meet a 10 ms SLO essentially always
/// (the §6.3 "how low can Clockwork go" property at low rates).
#[test]
fn warm_models_meet_10ms_slos_at_moderate_rate() {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(200).build();
    let ids = system.register_copies(zoo.resnet50(), 2);
    // Warm-up requests with a loose SLO.
    for &id in &ids {
        system.submit_request(Timestamp::ZERO, id, Nanos::from_millis(500));
    }
    let trace = OpenLoopClient::generate_many(
        &ids,
        100.0,
        Nanos::from_millis(10),
        Nanos::from_secs(5),
        &mut SimRng::seeded(1),
    )
    .rate_scaled(1.0);
    // Shift the open-loop trace to start after warm-up.
    let shifted = Trace::new(
        trace
            .events()
            .iter()
            .map(|e| TraceEvent {
                at: e.at + Nanos::from_millis(100),
                ..*e
            })
            .collect(),
    );
    let total = shifted.len() as u64;
    system.submit_trace(&shifted);
    system.run_to_completion();
    let m = system.telemetry().metrics();
    let slo_fraction = m.goodput as f64 / (total + 2) as f64;
    // 200 r/s against one GPU at a 3.8x SLO multiplier sits near the paper's
    // Fig. 7 crossover for this multiplier, so a small number of unlucky
    // arrival bursts are rejected by admission control (~2 % with this seed).
    // The invariant is "almost everything meets 10 ms", not "everything".
    assert!(
        slo_fraction > 0.97,
        "10 ms SLO satisfaction {slo_fraction} over {total} requests"
    );
}

/// Admitted requests never blow through their SLO by more than the network
/// allowance — the "no request exceeded 100 ms" property of Fig. 6/8.
#[test]
fn completed_requests_stay_close_to_their_slo() {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(201).build();
    let ids = system.register_copies(zoo.resnet50(), 8);
    let trace = OpenLoopClient::generate_many(
        &ids,
        40.0,
        Nanos::from_millis(100),
        Nanos::from_secs(5),
        &mut SimRng::seeded(2),
    );
    system.submit_trace(&trace);
    system.run_to_completion();
    for response in system.telemetry().responses() {
        if let Some(latency) = response.latency() {
            let slack = Nanos::from_millis(5); // network + output delivery
            assert!(
                response.arrival + latency <= response.deadline + slack,
                "request {} exceeded its SLO: latency {}",
                response.request,
                latency
            );
        }
    }
}

/// Under overload the system sheds load by rejecting requests early instead
/// of serving everything late: goodput stays close to the executed
/// throughput.
#[test]
fn overload_sheds_load_instead_of_missing_slos() {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(202).drop_raw_responses().build();
    let ids = system.register_copies(zoo.resnet50(), 4);
    // ~1500 r/s of batch-1-ish demand on a single GPU is far beyond capacity.
    let trace = OpenLoopClient::generate_many(
        &ids,
        375.0,
        Nanos::from_millis(25),
        Nanos::from_secs(4),
        &mut SimRng::seeded(3),
    );
    system.submit_trace(&trace);
    system.run_until(Timestamp::from_secs(6));
    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    assert!(rejected > 0, "overload must trigger rejections");
    // Of the requests that were executed, the vast majority met the SLO.
    let executed_ok = m.goodput as f64 / m.successes.max(1) as f64;
    assert!(
        executed_ok > 0.9,
        "executed requests should meet SLOs: {executed_ok}"
    );
}

/// Tight SLOs are refused up-front when impossible (1x multiplier in Fig. 7),
/// and accepted once the multiplier leaves room for queueing.
#[test]
fn slo_multiplier_sweep_matches_fig7_shape() {
    let zoo = ModelZoo::new();
    let base_ms = 2.61;
    let satisfaction_at = |mult: f64| {
        let mut system = SystemBuilder::new().seed(203).drop_raw_responses().build();
        let ids = system.register_copies(zoo.resnet50(), 4);
        let trace = OpenLoopClient::generate_many(
            &ids,
            50.0,
            Nanos::from_millis_f64(base_ms * mult),
            Nanos::from_secs(3),
            &mut SimRng::seeded(4),
        );
        system.submit_trace(&trace);
        system.run_until(Timestamp::from_secs(5));
        system.telemetry().metrics().satisfaction()
    };
    let tight = satisfaction_at(1.0);
    let medium = satisfaction_at(5.1);
    let loose = satisfaction_at(25.6);
    assert!(
        tight < 0.6,
        "1x the exec latency leaves no headroom: {tight}"
    );
    assert!(medium > tight, "satisfaction should improve with the SLO");
    assert!(
        loose > 0.95,
        "a 25x SLO should be nearly always met: {loose}"
    );
}
