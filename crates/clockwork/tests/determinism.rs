//! Fixed-seed determinism of the full serving system.
//!
//! The fleet-scale perf work rearchitected the scheduler's hot path around
//! persistent indices and cached strategies; these tests pin down that the
//! simulation stayed a pure function of its seed. The completion-event
//! digest (an order-sensitive FNV-1a over every response) must be identical
//! across two runs of the same configuration, and the fixed-work smoke mode
//! must deliver exactly the requested number of events.

use clockwork::prelude::*;

/// The smoke-fleet scenario is declarative now: `ScenarioSpec::smoke` holds
/// the exact cluster/workload knobs this suite always pinned (4 workers ×
/// 2 GPUs, 20 zoo models, a 10 s Azure-like trace at 400 r/s), and
/// `Experiment` owns the submit/run loop.
fn run_fleet_smoke(seed: u64, max_events: u64) -> (u64, u64) {
    let report = Experiment::new(ScenarioSpec::smoke(seed))
        .run_capped(&ClockworkFactory::default(), max_events);
    (report.digest(), report.events_processed())
}

#[test]
fn same_seed_same_digest() {
    let (digest_a, events_a) = run_fleet_smoke(7, u64::MAX);
    let (digest_b, events_b) = run_fleet_smoke(7, u64::MAX);
    assert_eq!(
        digest_a, digest_b,
        "two runs with the same seed diverged: {digest_a:016x} vs {digest_b:016x}"
    );
    assert_eq!(events_a, events_b, "event counts diverged");
    assert!(events_a > 10_000, "scenario too small to be meaningful");
}

// The fixed-work cap must stay below the scenario's total event count for
// smoke mode to be exercised. PR 4's wake-chain fix cut that total ~7×
// (~300 k events → ~45 k: redundant WorkerWakes are now cancelled instead of
// delivered), so the cap was refreshed from 50 000 alongside the golden
// digests in the BENCH baselines. If an event-loop change shrinks the stream
// again, re-measure `run_fleet_smoke(7, u64::MAX)` and lower this with it.
const SMOKE_CAP: u64 = 20_000;

#[test]
fn smoke_mode_is_fixed_work_and_deterministic() {
    let (digest_a, events_a) = run_fleet_smoke(7, SMOKE_CAP);
    let (digest_b, events_b) = run_fleet_smoke(7, SMOKE_CAP);
    assert_eq!(
        events_a, SMOKE_CAP,
        "smoke mode must deliver exactly the cap"
    );
    assert_eq!(events_b, SMOKE_CAP);
    assert_eq!(digest_a, digest_b, "smoke runs with the same seed diverged");
}

#[test]
fn different_seeds_explore_different_executions() {
    let (digest_a, _) = run_fleet_smoke(7, SMOKE_CAP);
    let (digest_c, _) = run_fleet_smoke(8, SMOKE_CAP);
    // Not a hard guarantee of the digest, but a collision here almost
    // certainly means the seed is being ignored somewhere.
    assert_ne!(digest_a, digest_c, "different seeds produced equal digests");
}
