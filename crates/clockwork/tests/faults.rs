//! Fleet-churn fault injection against the assembled serving system.
//!
//! `failure_injection.rs` covers *soft* interference (variance, cache
//! pressure, overload); these tests exercise *hard* faults — GPU failures,
//! worker crashes with cold restarts, link degradation and partitions — and
//! pin down the guarantees the controller must keep while the fleet churns:
//!
//! * exactly-once accounting: every request gets exactly one response, even
//!   when the worker serving it dies with the action in flight;
//! * determinism: a fault plan is part of the configuration, so same seed +
//!   same plan ⇒ identical digest (and the fault events themselves are
//!   folded into the digest);
//! * cold re-admission: a recovered worker lost its page cache, so the first
//!   request after a restart pays the weights transfer again.

use clockwork::prelude::*;
use clockwork_controller::request::RequestOutcome;
use clockwork_sim::rng::SimRng;
use clockwork_workload::open_loop::OpenLoopClient;
use clockwork_workload::trace::Trace;

fn open_loop_trace(ids: &[ModelId], rate: f64, slo: Nanos, duration: Nanos, seed: u64) -> Trace {
    let mut rng = SimRng::seeded(seed);
    OpenLoopClient::generate_many(ids, rate, slo, duration, &mut rng)
}

fn counts(system: &ServingSystem) -> (u64, u64, u64, u64) {
    let m = system.telemetry().metrics();
    let rejected: u64 = m.rejections.values().sum();
    (m.total_requests, m.successes, m.goodput, rejected)
}

#[test]
fn worker_crash_preserves_exactly_once_accounting() {
    // 4 workers under steady load; one crashes mid-run with INFER and LOAD
    // actions in flight, and restarts later. Every request must still get
    // exactly one response: successes + rejections == total, no silent loss,
    // no duplicate.
    let zoo = ModelZoo::new();
    let plan =
        FaultPlan::new().crash_worker_for(Timestamp::from_millis(800), 1, Nanos::from_millis(700));
    let mut system = SystemBuilder::new()
        .workers(4)
        .seed(61)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 8);
    let trace = open_loop_trace(&ids, 60.0, Nanos::from_millis(100), Nanos::from_secs(3), 41);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(
        successes + rejected,
        total,
        "exactly-once accounting must survive a crash: {:?}",
        system.telemetry().metrics().rejections
    );
    assert!(goodput <= successes);
    // The crash was recorded, availability dipped, and the fleet healed.
    let faults = system.telemetry().fault_records();
    assert_eq!(faults.len(), 2, "crash + restart recorded");
    assert!(system.telemetry().min_availability() < 1.0);
    assert!((system.telemetry().final_availability() - 1.0).abs() < 1e-12);
    // Work kept flowing: the three surviving workers absorb most traffic.
    assert!(
        goodput as f64 > 0.9 * total as f64,
        "goodput {goodput}/{total} collapsed from one worker crash"
    );
    // Goodput really means on-time.
    let m = system.telemetry().metrics();
    assert!(m.goodput_latency.max() <= Nanos::from_millis(100));
}

#[test]
fn same_seed_and_plan_are_deterministic_and_plans_differ_in_digest() {
    let run = |plan: FaultPlan| {
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new()
            .workers(2)
            .seed(77)
            .faults(plan)
            .build();
        let ids = system.register_copies(zoo.resnet50(), 4);
        let trace = open_loop_trace(&ids, 80.0, Nanos::from_millis(100), Nanos::from_secs(2), 9);
        system.submit_trace(&trace);
        system.run_to_completion();
        system.telemetry().response_digest()
    };
    let plan = || {
        FaultPlan::new()
            .crash_worker_for(Timestamp::from_millis(400), 0, Nanos::from_millis(300))
            .fail_gpu_for(Timestamp::from_millis(500), 1, 0, Nanos::from_millis(200))
            .partition(Timestamp::from_millis(900), 1, Nanos::from_millis(150))
    };
    let a = run(plan());
    let b = run(plan());
    assert_eq!(
        a, b,
        "same seed + same fault plan must reproduce the same digest"
    );
    let quiet = run(FaultPlan::new());
    assert_ne!(
        a, quiet,
        "fault events are folded into the digest, so a faulted run differs"
    );
}

#[test]
fn recovered_worker_is_cold_and_first_request_pays_the_transfer() {
    // Single worker: warm a model, crash, restart, then serve again with a
    // generous SLO. The post-restart request must be a cold start whose
    // latency covers the ~8.3 ms ResNet50 weights transfer.
    let zoo = ModelZoo::new();
    let plan =
        FaultPlan::new().crash_worker_for(Timestamp::from_millis(200), 0, Nanos::from_millis(100));
    let mut system = SystemBuilder::new().workers(1).seed(5).faults(plan).build();
    let model = system.register_model(zoo.resnet50());
    // Warm-up request, finished well before the crash.
    system.submit_request(Timestamp::ZERO, model, Nanos::from_millis(100));
    // Post-restart request.
    system.submit_request(Timestamp::from_millis(400), model, Nanos::from_millis(100));
    system.run_to_completion();

    let responses = system.telemetry().responses();
    assert_eq!(responses.len(), 2);
    let warm = responses
        .iter()
        .find(|r| r.arrival < Timestamp::from_millis(200))
        .expect("warm-up response");
    let after = responses
        .iter()
        .find(|r| r.arrival > Timestamp::from_millis(300))
        .expect("post-restart response");
    match warm.outcome {
        RequestOutcome::Success { cold_start, .. } => {
            assert!(cold_start, "the very first request is cold")
        }
        other => panic!("warm-up failed: {other:?}"),
    }
    match after.outcome {
        RequestOutcome::Success { cold_start, .. } => assert!(
            cold_start,
            "a restarted worker lost its page cache; the next request must be cold"
        ),
        other => panic!("post-restart request failed: {other:?}"),
    }
    let latency = after.latency().expect("successful response has latency");
    assert!(
        latency > Nanos::from_millis(8),
        "post-restart latency {latency} must include the ~8.3 ms weights transfer"
    );
    let m = system.telemetry().metrics();
    assert_eq!(m.cold_starts, 2, "both requests paid a load");
}

#[test]
fn permanent_gpu_failure_reroutes_to_surviving_capacity() {
    // 2 workers x 2 GPUs; one GPU dies for good mid-run. The scheduler must
    // stop routing there and keep serving on the remaining 3 GPUs, with the
    // accounting identity intact.
    let zoo = ModelZoo::new();
    let plan = FaultPlan::new().fail_gpu(Timestamp::from_millis(600), 0, 1);
    let mut system = SystemBuilder::new()
        .workers(2)
        .gpus_per_worker(2)
        .seed(29)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 6);
    let trace = open_loop_trace(&ids, 60.0, Nanos::from_millis(100), Nanos::from_secs(3), 17);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(successes + rejected, total);
    assert!(
        goodput as f64 > 0.85 * total as f64,
        "3 surviving GPUs should absorb the load: {goodput}/{total}"
    );
    // The dead GPU never serves after the failure instant.
    for r in system.telemetry().responses() {
        if let RequestOutcome::Success {
            completed,
            worker,
            gpu,
            ..
        } = r.outcome
        {
            if completed > Timestamp::from_millis(650) {
                assert!(
                    !(worker == WorkerId(0) && gpu.0 == 1),
                    "response served on the dead GPU at {completed}"
                );
            }
        }
    }
    assert!(
        (system.telemetry().final_availability() - 0.75).abs() < 1e-12,
        "3 of 4 GPUs remain"
    );
}

#[test]
fn overlapping_gpu_and_worker_fault_windows_stay_consistent() {
    // Regression test: a GPU failure window overlapping a crash/restart of
    // its own worker, with the restart landing *before* the GPU's scheduled
    // recovery. The restart supersedes the GPU failure on both sides (a
    // machine replacement brings every GPU back cold), and the later
    // spurious GpuRecover is a no-op — so no action is ever routed to
    // capacity that would silently drop it, and every request is resolved.
    let zoo = ModelZoo::new();
    let plan = FaultPlan::new()
        .fail_gpu_for(Timestamp::from_millis(500), 1, 0, Nanos::from_millis(900)) // recovers at 1400
        .crash_worker_for(Timestamp::from_millis(700), 1, Nanos::from_millis(300)); // restarts at 1000
                                                                                    // Each GPU holds only ~2 of the 6 models, so while worker 1 is down the
                                                                                    // survivor cannot keep everything resident — once worker 1 restarts,
                                                                                    // the cold demand must be routed onto its empty caches.
    let spec = zoo.resnet50();
    let two_models = 2 * spec.weights_bytes() + 64 * 1024 * 1024;
    let mut system = SystemBuilder::new()
        .workers(2)
        .gpus_per_worker(2)
        .weights_cache_bytes(two_models)
        .seed(47)
        .faults(plan)
        .build();
    let ids = system.register_copies(spec, 6);
    let trace = open_loop_trace(
        &ids,
        150.0,
        Nanos::from_millis(100),
        Nanos::from_secs(3),
        53,
    );
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, goodput, rejected) = counts(&system);
    assert_eq!(total, submitted, "the run must drain to completion");
    assert_eq!(
        successes + rejected,
        total,
        "overlapping fault windows must not leak in-flight requests: {:?}",
        system.telemetry().metrics().rejections
    );
    assert!(goodput > 0);
    // After the restart the whole fleet is usable again even though the
    // GPU's own recovery event had not fired yet.
    assert!((system.telemetry().final_availability() - 1.0).abs() < 1e-12);
    // The controller never routed an action to capacity that would silently
    // drop it (the signature of a liveness mismatch between the controller's
    // view and the worker's per-GPU failed flags).
    for worker in system.workers() {
        assert_eq!(
            worker.telemetry().counters.dropped_actions,
            0,
            "actions were routed to dead capacity on {}",
            worker.id()
        );
    }
    // Worker 1 serves again after its restart.
    let served_post_restart = system.telemetry().responses().iter().any(|r| {
        matches!(
            r.outcome,
            RequestOutcome::Success { worker, completed, .. }
                if worker == WorkerId(1) && completed > Timestamp::from_millis(1_100)
        )
    });
    assert!(
        served_post_restart,
        "restarted worker must rejoin the fleet"
    );
}

#[test]
fn partition_holds_messages_without_losing_requests() {
    // 2 workers; worker 0 is partitioned from the controller for 400 ms
    // mid-run. Held messages are delivered when the partition heals, so the
    // run still drains completely and every request is answered exactly once.
    let zoo = ModelZoo::new();
    let plan = FaultPlan::new().partition(Timestamp::from_millis(700), 0, Nanos::from_millis(400));
    let mut system = SystemBuilder::new()
        .workers(2)
        .seed(83)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 4);
    let trace = open_loop_trace(&ids, 80.0, Nanos::from_millis(100), Nanos::from_secs(3), 19);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(
        successes + rejected,
        total,
        "a partition may delay or shed work but must not lose it: {:?}",
        system.telemetry().metrics().rejections
    );
    assert!(goodput > 0);
    assert_eq!(system.telemetry().fault_records().len(), 2);
}

#[test]
fn link_degradation_degrades_goodput_not_accounting() {
    // A 10x slower link to worker 0 for a window mid-run: actions arrive
    // late, windows elapse, the controller requeues or sheds — but the
    // accounting identity holds and the system keeps serving via worker 1.
    let zoo = ModelZoo::new();
    let plan = FaultPlan::new().degrade_link_for(
        Timestamp::from_millis(500),
        0,
        10.0,
        Nanos::from_millis(800),
    );
    let mut system = SystemBuilder::new()
        .workers(2)
        .seed(37)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 4);
    let trace = open_loop_trace(&ids, 80.0, Nanos::from_millis(100), Nanos::from_secs(3), 23);
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    let (total, successes, _goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(successes + rejected, total);
    let m = system.telemetry().metrics();
    assert!(m.goodput_latency.max() <= Nanos::from_millis(100));
}

#[test]
fn joined_worker_is_admitted_cold_and_serves_traffic() {
    // Elastic scale-up: a single overloaded worker gets a second machine
    // mid-run via `FaultPlan::join_worker`. The join must be reflected in
    // fleet availability (2 GPUs after, from 1), the newcomer must actually
    // execute work, and the accounting identity must hold throughout.
    let zoo = ModelZoo::new();
    let join_at = Timestamp::from_millis(800);
    let plan = FaultPlan::new().join_worker(join_at, 1);
    assert_eq!(plan.worker_joins(), 1);
    let mut system = SystemBuilder::new()
        .workers(1)
        .seed(73)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 6);
    // Heavily overloaded for a single GPU (~2400 r/s offered), so the
    // scheduler's demand-driven LOAD pass must replicate onto the joined
    // capacity rather than just batching harder on the incumbent.
    let trace = open_loop_trace(
        &ids,
        400.0,
        Nanos::from_millis(100),
        Nanos::from_secs(3),
        51,
    );
    let submitted = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();

    assert_eq!(
        system.workers().len(),
        2,
        "the joined worker is in the fleet"
    );
    assert_eq!(system.gpu_availability(), (2, 2), "joined capacity counts");
    let joined = &system.workers()[1];
    assert_eq!(joined.id(), WorkerId(1));
    let served = joined.telemetry().counters.requests_served;
    assert!(served > 0, "the joined worker must serve traffic");
    assert!(
        joined.gpu_utilization(clockwork_worker::GpuId(0), system.now()) > 0.0,
        "the joined worker's GPU must have executed"
    );

    let (total, successes, _goodput, rejected) = counts(&system);
    assert_eq!(total, submitted);
    assert_eq!(successes + rejected, total);

    // The join is part of the recorded fault history, with capacity *added*.
    let records = system.telemetry().fault_records();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].at, join_at);
    assert_eq!(records[0].total_gpus, 2);
    assert_eq!(records[0].alive_gpus, 2);
}

#[test]
fn joining_an_occupied_fleet_index_is_ignored() {
    // A WorkerJoin naming an existing worker must change nothing — no new
    // machine, no double-registered GPUs, no fault record.
    let zoo = ModelZoo::new();
    let plan = FaultPlan::new().join_worker(Timestamp::from_millis(100), 0);
    let mut system = SystemBuilder::new()
        .workers(1)
        .seed(74)
        .faults(plan)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 2);
    let trace = open_loop_trace(&ids, 40.0, Nanos::from_millis(100), Nanos::from_secs(1), 52);
    system.submit_trace(&trace);
    system.run_to_completion();
    assert_eq!(system.workers().len(), 1);
    assert_eq!(system.gpu_availability(), (1, 1));
    assert!(system.telemetry().fault_records().is_empty());
    let (total, successes, _goodput, rejected) = counts(&system);
    assert_eq!(successes + rejected, total);
}
