//! End-to-end integration tests across crates: model zoo → compiler/profiler
//! → worker → controller → system, exercised through the public API.

use clockwork::prelude::*;
use clockwork_model::compiler::Compiler;
use clockwork_model::source::ModelSource;

#[test]
fn user_uploaded_model_is_compiled_and_served() {
    // A user "uploads" an abstract model; we compile it and serve it like any
    // zoo model.
    let source = ModelSource::resnet_like("tenant_model", 4);
    let compiled = Compiler::new().compile(&source);
    let mut system = SystemBuilder::new().seed(100).build();
    let model = system.register_model(&compiled.spec);
    for i in 0..50u64 {
        system.submit_request(
            Timestamp::from_millis(i * 20),
            model,
            Nanos::from_millis(200),
        );
    }
    system.run_to_completion();
    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, 50);
    assert!(m.successes >= 49, "successes {}", m.successes);
}

#[test]
fn heterogeneous_zoo_models_share_one_gpu() {
    // Ten different model varieties on one GPU, all warm after first use.
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(101).build();
    let ids: Vec<ModelId> = zoo.all()[..10]
        .iter()
        .map(|s| system.register_model(s))
        .collect();
    let trace = OpenLoopClient::generate_many(
        &ids,
        20.0,
        Nanos::from_millis(250),
        Nanos::from_secs(3),
        &mut SimRng::seeded(7),
    );
    let total = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_to_completion();
    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, total);
    assert!(
        m.satisfaction() > 0.9,
        "satisfaction {} over {} requests",
        m.satisfaction(),
        total
    );
    // All ten models must actually have been served.
    assert_eq!(system.telemetry().per_model_successes().len(), 10);
}

#[test]
fn admission_control_rejects_impossible_slos_without_wasting_work() {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(102).build();
    let model = system.register_model(zoo.resnet50());
    // 1 ms SLO on a cold model is impossible (load alone takes ~8 ms).
    system.submit_request(Timestamp::ZERO, model, Nanos::from_millis(1));
    system.run_to_completion();
    let m = system.telemetry().metrics();
    assert_eq!(m.successes, 0);
    assert_eq!(m.rejections.get("cannot_meet_slo"), Some(&1));
}

#[test]
fn requests_for_unknown_models_are_answered_not_dropped() {
    let mut system = SystemBuilder::new().seed(103).build();
    system.submit_request(Timestamp::ZERO, ModelId(999), Nanos::from_millis(100));
    system.run_to_completion();
    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, 1);
    assert_eq!(m.rejections.get("unknown_model"), Some(&1));
}

#[test]
fn memory_pressure_forces_cold_starts_but_not_slo_violations() {
    // A weights cache that only fits ~2 ResNet50s serving 6 models: most
    // requests are cold starts, but a generous 150 ms SLO is still met.
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .weights_cache_bytes(16 * 16 * 1024 * 1024) // 16 pages = 2 ResNet50s
        .seed(104)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 6);
    let mut t = Timestamp::from_millis(0);
    for round in 0..30u64 {
        for &id in &ids {
            system.submit_request(t, id, Nanos::from_millis(150));
            t += Nanos::from_millis(3 + round % 3);
        }
    }
    system.run_to_completion();
    let m = system.telemetry().metrics();
    assert!(
        m.cold_starts > 10,
        "expected cold starts, got {}",
        m.cold_starts
    );
    assert!(
        m.satisfaction() > 0.8,
        "satisfaction {} cold {}",
        m.satisfaction(),
        m.cold_starts
    );
}

#[test]
fn deterministic_runs_for_identical_seeds() {
    let zoo = ModelZoo::new();
    let run = || {
        let mut system = SystemBuilder::new().seed(105).build();
        let ids = system.register_copies(zoo.resnet50(), 3);
        let trace = OpenLoopClient::generate_many(
            &ids,
            80.0,
            Nanos::from_millis(50),
            Nanos::from_secs(2),
            &mut SimRng::seeded(9),
        );
        system.submit_trace(&trace);
        system.run_to_completion();
        let m = system.telemetry().metrics();
        (m.goodput, m.successes, m.latency.percentile(99.0))
    };
    assert_eq!(run(), run());
}

#[test]
fn multi_gpu_workers_spread_load() {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new()
        .workers(1)
        .gpus_per_worker(2)
        .seed(106)
        .build();
    let ids = system.register_copies(zoo.resnet50(), 4);
    for (i, &m) in ids.iter().enumerate() {
        system.add_closed_loop_client(
            ClosedLoopClient::new(m, 8, Nanos::from_millis(200)),
            Timestamp::from_millis(i as u64),
        );
    }
    system.run_until(Timestamp::from_secs(2));
    let worker = &system.workers()[0];
    let horizon = Timestamp::from_secs(2);
    let g0 = worker.gpu_utilization(clockwork_worker::GpuId(0), horizon);
    let g1 = worker.gpu_utilization(clockwork_worker::GpuId(1), horizon);
    assert!(
        g0 > 0.2 && g1 > 0.2,
        "both GPUs must be used: {g0:.2} / {g1:.2}"
    );
}

#[test]
fn models_uploaded_at_runtime_become_servable_after_the_transfer() {
    // §5.1: Clockwork supports dynamic model loading over the network. A
    // model uploaded mid-run is unknown (and rejected) until its weights
    // reach the workers, and served normally afterwards.
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().seed(104).build();
    let resident = system.register_model(zoo.resnet50());
    let uploaded = system.upload_model(Timestamp::from_millis(500), zoo.resnet50());

    // Before the upload lands: the already-registered model serves, the
    // uploaded one is rejected as unknown.
    system.submit_request(
        Timestamp::from_millis(100),
        resident,
        Nanos::from_millis(100),
    );
    system.submit_request(
        Timestamp::from_millis(100),
        uploaded,
        Nanos::from_millis(100),
    );
    // Well after the upload: both serve.
    for i in 0..20u64 {
        system.submit_request(
            Timestamp::from_millis(600 + i * 20),
            uploaded,
            Nanos::from_millis(100),
        );
    }
    system.run_to_completion();

    let responses = system.telemetry().responses();
    assert_eq!(responses.len(), 22);
    let mut early_unknown = 0;
    let mut late_served = 0;
    for r in responses {
        if r.model == uploaded && r.arrival < Timestamp::from_millis(500) {
            assert!(
                !r.outcome.is_success(),
                "a request for a not-yet-uploaded model cannot be served"
            );
            early_unknown += 1;
        }
        if r.model == uploaded && r.arrival > Timestamp::from_millis(600) && r.outcome.is_success()
        {
            late_served += 1;
        }
    }
    assert_eq!(early_unknown, 1);
    assert_eq!(
        late_served, 20,
        "uploaded model must serve once the weights arrive"
    );
    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, 22);
}
