//! End-to-end property tests over the assembled serving system.
//!
//! These run the full stack — controller, scheduler, simulated workers, GPUs
//! and PCIe links — on small randomly generated workloads and check the
//! guarantees Clockwork makes regardless of workload: every request is
//! answered exactly once, no request is reported as meeting an SLO it missed,
//! admission control never lets an impossible SLO "succeed", runs are
//! deterministic given a seed, and accounting identities between telemetry
//! counters always hold.

use std::collections::HashSet;

use proptest::prelude::*;

use clockwork::prelude::*;
use clockwork_controller::request::RequestOutcome;
use clockwork_workload::trace::{Trace, TraceEvent};

/// A compact description of a randomly generated workload.
#[derive(Clone, Debug)]
struct WorkloadCase {
    /// Number of distinct registered model instances (all ResNet50 copies).
    models: u32,
    /// (model index, arrival ms, slo ms) triples.
    requests: Vec<(u32, u64, u64)>,
    /// RNG seed for the system.
    seed: u64,
}

fn workload_case() -> impl Strategy<Value = WorkloadCase> {
    (1u32..6, 1u64..1_000_000)
        .prop_flat_map(|(models, seed)| {
            let req = (0..models, 0u64..2_000, 5u64..500);
            (
                Just(models),
                proptest::collection::vec(req, 1..80),
                Just(seed),
            )
        })
        .prop_map(|(models, requests, seed)| WorkloadCase {
            models,
            requests,
            seed,
        })
}

/// Builds a single-worker system with `models` ResNet50 copies, replays the
/// case's requests, and returns the system after completion.
fn run_case(case: &WorkloadCase) -> (ServingSystem, Vec<ModelId>) {
    let zoo = ModelZoo::new();
    let mut system = SystemBuilder::new().workers(1).seed(case.seed).build();
    let ids = system.register_copies(zoo.resnet50(), case.models as usize);
    let events: Vec<TraceEvent> = case
        .requests
        .iter()
        .map(|&(model, at_ms, slo_ms)| TraceEvent {
            at: Timestamp::from_millis(at_ms),
            model: ids[model as usize],
            slo: Nanos::from_millis(slo_ms),
            tier: Tier::Strict,
        })
        .collect();
    system.submit_trace(&Trace::new(events));
    system.run_to_completion();
    (system, ids)
}

proptest! {
    // End-to-end cases each simulate seconds of virtual time; keep the case
    // count moderate so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_is_answered_exactly_once(case in workload_case()) {
        let (system, ids) = run_case(&case);
        let responses = system.telemetry().responses();
        prop_assert_eq!(responses.len(), case.requests.len());
        let mut seen = HashSet::new();
        for r in responses {
            prop_assert!(seen.insert(r.request), "request {} answered twice", r.request);
            prop_assert!(ids.contains(&r.model));
        }
        let metrics = system.telemetry().metrics();
        prop_assert_eq!(metrics.total_requests, case.requests.len() as u64);
    }

    #[test]
    fn no_successful_response_misses_its_deadline_silently(case in workload_case()) {
        let (system, _) = run_case(&case);
        let mut goodput = 0u64;
        for r in system.telemetry().responses() {
            match r.outcome {
                RequestOutcome::Success { completed, .. } => {
                    prop_assert!(completed >= r.arrival, "completed before arrival");
                    if completed <= r.deadline {
                        goodput += 1;
                    }
                    // The served latency matches the completion timestamps.
                    let lat = r.latency().expect("successful responses have a latency");
                    prop_assert_eq!(lat, completed - r.arrival);
                }
                RequestOutcome::Rejected { at, .. } => {
                    prop_assert!(at >= r.arrival, "rejected before arrival");
                    prop_assert_eq!(r.latency(), None);
                }
            }
        }
        // Telemetry's goodput counter agrees with recomputing it from the
        // raw responses.
        let metrics = system.telemetry().metrics();
        prop_assert_eq!(metrics.goodput, goodput);
    }

    #[test]
    fn telemetry_counters_satisfy_accounting_identities(case in workload_case()) {
        let (system, _) = run_case(&case);
        let metrics = system.telemetry().metrics();
        let rejected: u64 = metrics.rejections.values().sum();
        prop_assert_eq!(metrics.successes + rejected, metrics.total_requests,
            "successes + rejections must cover every request");
        prop_assert!(metrics.goodput <= metrics.successes);
        prop_assert!(metrics.cold_starts <= metrics.successes);
        prop_assert!((0.0..=1.0).contains(&metrics.satisfaction()));
        prop_assert!((0.0..=1.0).contains(&metrics.cold_start_fraction()));
        prop_assert!(metrics.goodput_rate() <= metrics.throughput_rate() + 1e-9);
        prop_assert_eq!(metrics.latency.count(), metrics.successes);
        prop_assert_eq!(metrics.goodput_latency.count(), metrics.goodput);
        if metrics.successes > 0 {
            prop_assert!(metrics.mean_batch >= 1.0);
        }
    }

    #[test]
    fn impossible_slos_are_rejected_not_served_late(case in workload_case()) {
        // Re-run the case with every SLO forced below the batch-1 execution
        // latency: nothing can be served within such an SLO, and Clockwork's
        // admission control must reject rather than serve late.
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().workers(1).seed(case.seed).build();
        let ids = system.register_copies(zoo.resnet50(), case.models as usize);
        let events: Vec<TraceEvent> = case
            .requests
            .iter()
            .map(|&(model, at_ms, _)| TraceEvent {
                at: Timestamp::from_millis(at_ms),
                model: ids[model as usize],
                slo: Nanos::from_micros(500),
                tier: Tier::Strict,
            })
            .collect();
        system.submit_trace(&Trace::new(events));
        system.run_to_completion();
        let metrics = system.telemetry().metrics();
        prop_assert_eq!(metrics.goodput, 0, "a sub-execution-time SLO cannot be met");
        for r in system.telemetry().responses() {
            if let RequestOutcome::Success { completed, .. } = r.outcome {
                prop_assert!(completed > r.deadline,
                    "response claims to have met an impossible SLO");
            }
        }
    }

    #[test]
    fn runs_are_deterministic_given_the_seed(case in workload_case()) {
        let (a, _) = run_case(&case);
        let (b, _) = run_case(&case);
        let ra = a.telemetry().responses();
        let rb = b.telemetry().responses();
        prop_assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb.iter()) {
            prop_assert_eq!(x, y);
        }
        let ma = a.telemetry().metrics();
        let mb = b.telemetry().metrics();
        prop_assert_eq!(ma.goodput, mb.goodput);
        prop_assert_eq!(ma.successes, mb.successes);
        prop_assert_eq!(ma.cold_starts, mb.cold_starts);
    }

    #[test]
    fn no_slo_batch_requests_are_never_rejected_for_slo_reasons(case in workload_case()) {
        // Requests without an SLO (batch clients, §6.4) may be delayed
        // arbitrarily but must never be rejected by admission control.
        let zoo = ModelZoo::new();
        let mut system = SystemBuilder::new().workers(1).seed(case.seed).build();
        let ids = system.register_copies(zoo.resnet50(), case.models as usize);
        let events: Vec<TraceEvent> = case
            .requests
            .iter()
            .map(|&(model, at_ms, _)| TraceEvent {
                at: Timestamp::from_millis(at_ms),
                model: ids[model as usize],
                slo: Nanos::MAX,
                tier: Tier::Strict,
            })
            .collect();
        system.submit_trace(&Trace::new(events));
        system.run_to_completion();
        let metrics = system.telemetry().metrics();
        prop_assert_eq!(metrics.successes, case.requests.len() as u64,
            "batch requests were dropped: {:?}", metrics.rejections);
    }
}
