//! Trace-replay integration tests: the Azure-like workload end to end.

use clockwork::prelude::*;

fn azure_system(models: usize, seed: u64) -> (ServingSystem, Trace) {
    let zoo = ModelZoo::new();
    let config = AzureTraceConfig {
        functions: 200,
        models,
        duration: Nanos::from_minutes(2),
        target_rate: 300.0,
        slo: Nanos::from_millis(100),
        seed,
    };
    let trace = AzureTraceGenerator::new(config).generate();
    let mut system = SystemBuilder::new()
        .workers(2)
        .seed(seed)
        .drop_raw_responses()
        .build();
    for i in 0..models {
        system.register_model(&zoo.all()[i % zoo.len()]);
    }
    (system, trace)
}

#[test]
fn azure_like_trace_is_served_with_high_satisfaction() {
    let (mut system, trace) = azure_system(60, 400);
    let total = trace.len() as u64;
    system.submit_trace(&trace);
    system.run_until(Timestamp::ZERO + Nanos::from_minutes(2) + Nanos::from_secs(2));
    let m = system.telemetry().metrics();
    assert_eq!(m.total_requests, total);
    assert!(
        m.satisfaction() > 0.9,
        "satisfaction {} over {} requests",
        m.satisfaction(),
        total
    );
    assert!(m.cold_starts > 0, "a skewed trace must produce cold starts");
}

#[test]
fn trace_csv_round_trip_preserves_replay_results() {
    let (_, trace) = azure_system(40, 401);
    let parsed = Trace::from_csv(&trace.to_csv()).expect("parse own csv");
    assert_eq!(parsed, trace);
}

#[test]
fn scaling_a_trace_up_increases_load_and_cold_starts() {
    let run = |factor: f64| {
        let (mut system, trace) = azure_system(60, 402);
        let scaled = trace.rate_scaled(factor);
        // Scaling compresses arrivals, so the offered rate itself scales.
        assert!(
            scaled.mean_rate() > trace.mean_rate() * (factor - 0.01),
            "rate_scaled({factor}) offered {} vs base {}",
            scaled.mean_rate(),
            trace.mean_rate()
        );
        // Scaling compresses timing only: the set of models touched by the
        // trace itself is unchanged.
        let models = |t: &Trace| {
            t.events()
                .iter()
                .map(|e| e.model)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(
            models(&scaled),
            models(&trace),
            "rate_scaled({factor}) must preserve the trace's model set"
        );
        system.submit_trace(&scaled);
        system.run_until(Timestamp::ZERO + Nanos::from_minutes(3));
        let m = system.telemetry().metrics();
        let rejected: u64 = m.rejections.values().sum();
        (
            m.total_requests,
            m.throughput_rate(),
            rejected,
            m.cold_starts,
        )
    };
    let (total_1x, rate_1x, rejected_1x, cold_1x) = run(1.0);
    let (total_2x, rate_2x, rejected_2x, cold_2x) = run(2.0);
    assert_eq!(total_1x, total_2x, "scaling changes timing, not count");
    // The doubled offered load pushes the two-GPU cluster towards its
    // capacity: served throughput rises, but sublinearly, because admission
    // control sheds the excess rather than serving it late.
    assert!(
        rate_2x > rate_1x,
        "2x trace should raise served throughput: {rate_2x} vs {rate_1x}"
    );
    assert!(
        rejected_2x >= rejected_1x,
        "2x trace cannot shed less load: {rejected_2x} vs {rejected_1x}"
    );
    // Cold-start *completions* are not monotone in offered load: compressing
    // arrivals leaves less idle time for evictions between touches, and
    // admission control sheds more cold-model requests outright. Both runs
    // must still pay cold starts for this skewed trace, though.
    assert!(
        cold_1x > 0 && cold_2x > 0,
        "skewed azure traces must produce cold starts at any rate: {cold_1x} / {cold_2x}"
    );
}

#[test]
fn truncated_traces_replay_the_prefix_only() {
    let (mut system, trace) = azure_system(40, 403);
    let cut = Timestamp::from_secs(30);
    let truncated = trace.truncated(cut);
    assert!(truncated.len() < trace.len());
    assert!(truncated.events().iter().all(|e| e.at < cut));
    system.submit_trace(&truncated);
    system.run_to_completion();
    assert_eq!(
        system.telemetry().metrics().total_requests,
        truncated.len() as u64
    );
}
