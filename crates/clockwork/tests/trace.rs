//! Facade guarantees of the request-lifecycle trace layer.
//!
//! Two properties make the tracer trustworthy enough to blame SLO misses
//! on. *Conservation*: the span stream accounts for every outcome the
//! telemetry recorded — each delivered response produced exactly one
//! terminal span (`Completed` or `DeadlineMissed`), each rejection exactly
//! one `Rejected` span, and the counts reconcile with `SystemTelemetry`.
//! *Zero perturbation*: turning tracing on is pure observation — the
//! response digest and every outcome count are byte-identical to the
//! untraced run of the same spec, and an untraced run carries no tracer
//! at all.
//!
//! Baseline disciplines are exercised in the bench crate (the facade does
//! not link `clockwork-baselines`); the registry's built-ins plus the
//! no-batch ablation cover all three code paths that emit spans here.

use std::collections::HashSet;

use clockwork::prelude::*;

/// The smoke fleet pushed past its knee so that all three outcome classes
/// (met SLO, missed SLO, rejected) actually occur.
fn overloaded_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::smoke(seed)
        .named("trace_overload")
        .with_rate_multiplier(3.0)
        .with_trace(true)
}

/// Counts of the span kinds the conservation identity is stated over.
#[derive(Default)]
struct SpanCounts {
    enqueued: HashSet<u64>,
    completed: u64,
    missed: u64,
    rejected: u64,
    terminal_requests: HashSet<u64>,
    rejected_requests: HashSet<u64>,
}

fn count_spans(tracer: &RingTracer) -> SpanCounts {
    let mut counts = SpanCounts::default();
    for record in tracer.records() {
        match &record.event {
            LifecycleEvent::Enqueued { request, .. } => {
                counts.enqueued.insert(*request);
            }
            LifecycleEvent::Completed { request, .. } => {
                counts.completed += 1;
                assert!(
                    counts.terminal_requests.insert(*request),
                    "request {request} got two terminal spans"
                );
            }
            LifecycleEvent::DeadlineMissed { request, .. } => {
                counts.missed += 1;
                assert!(
                    counts.terminal_requests.insert(*request),
                    "request {request} got two terminal spans"
                );
            }
            LifecycleEvent::Rejected { request, .. } => {
                counts.rejected += 1;
                assert!(
                    counts.rejected_requests.insert(*request),
                    "request {request} got two rejected spans"
                );
            }
            _ => {}
        }
    }
    counts
}

#[test]
fn every_outcome_has_exactly_one_terminal_span() {
    let experiment = Experiment::new(overloaded_spec(21));
    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    for factory in registry.iter() {
        let report = experiment.run(factory);
        let tracer = report.trace().expect("spec asked for tracing");
        assert_eq!(tracer.dropped_spans(), 0, "smoke run must fit the ring");
        let counts = count_spans(tracer);
        let m = report.metrics();

        // All three outcome classes occurred, so the identities below are
        // not vacuous.
        assert!(
            m.goodput > 0,
            "{}: some requests met SLO",
            report.discipline
        );
        assert!(
            counts.missed + counts.rejected > 0,
            "{}: overload produced misses or rejections",
            report.discipline
        );

        // Conservation against telemetry: delivered responses <-> terminal
        // spans, rejections <-> rejected spans, and nothing double-counted.
        assert_eq!(
            counts.completed + counts.missed,
            m.successes,
            "{}: one terminal span per delivered response",
            report.discipline
        );
        assert_eq!(
            counts.completed, m.goodput,
            "{}: completed spans are exactly the SLO-met responses",
            report.discipline
        );
        assert_eq!(
            counts.rejected,
            report.rejected(),
            "{}: one rejected span per rejection",
            report.discipline
        );
        assert_eq!(
            counts.completed + counts.missed + counts.rejected,
            m.total_requests,
            "{}: spans reconcile with the exactly-once identity",
            report.discipline
        );

        // Every terminal or rejected request was first enqueued.
        for request in counts
            .terminal_requests
            .iter()
            .chain(&counts.rejected_requests)
        {
            assert!(
                counts.enqueued.contains(request),
                "{}: request {request} reached an outcome without an Enqueued span",
                report.discipline
            );
        }
    }
}

#[test]
fn tracing_is_pure_observation() {
    let traced_spec = overloaded_spec(22);
    let untraced_spec = traced_spec.clone().with_trace(false);
    let mut registry = SchedulerRegistry::builtin();
    registry.register(Box::new(ClockworkNoBatchFactory::default()));
    for factory in registry.iter() {
        let traced = Experiment::new(traced_spec.clone()).run(factory);
        let untraced = Experiment::new(untraced_spec.clone()).run(factory);
        assert!(traced.trace().is_some());
        assert!(untraced.trace().is_none(), "tracing off carries no tracer");
        assert_eq!(
            traced.digest(),
            untraced.digest(),
            "{}: tracing must not perturb the response stream",
            factory.name()
        );
        let (a, b) = (traced.metrics(), untraced.metrics());
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(traced.rejected(), untraced.rejected());
        assert_eq!(traced.events_processed(), untraced.events_processed());
    }
}

#[test]
fn traced_runs_are_deterministic() {
    let experiment = Experiment::new(overloaded_spec(23));
    let a = experiment.run(&ClockworkFactory::default());
    let b = experiment.run(&ClockworkFactory::default());
    let (ta, tb) = (a.trace().unwrap(), b.trace().unwrap());
    assert_eq!(ta.digest(), tb.digest(), "same seed, same span stream");
    assert_eq!(ta.len(), tb.len());
    assert_eq!(a.digest(), b.digest());
}
